//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `bench_function` /
//! `bench_with_input` / `sample_size`, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Behaviour:
//!
//! * Under `cargo bench` (cargo passes `--bench` to `harness = false`
//!   targets) each benchmark is warmed up and timed over a fixed sample
//!   count, and a one-line median is printed.
//! * Under any other invocation (notably `cargo test`, which runs bench
//!   targets in test mode) each benchmark body executes **once** so the
//!   bench acts as a smoke test without burning minutes of CPU.
//! * Results are collected on the [`Criterion`] value; [`Criterion::results`]
//!   and [`Criterion::write_json`] let a custom `main` export a
//!   machine-readable summary (used for `BENCH_kernels.json`).

use std::time::{Duration, Instant};

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/param` identifier.
    pub id: String,
    /// Median wall-clock nanoseconds per iteration (0 in test mode).
    pub median_ns: f64,
    /// Number of timed samples (0 in test mode).
    pub samples: usize,
}

/// Identifies a benchmark within a group, like `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Drives iterations of one benchmark body.
pub struct Bencher<'a> {
    measure: bool,
    samples: usize,
    result_ns: &'a mut f64,
    taken: &'a mut usize,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly and records the median iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            let _ = routine();
            return;
        }
        // Warmup: until ~50ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1000)
        {
            let _ = routine();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch iterations so each sample is at least ~1ms of work.
        let batch = (1e-3 / per_iter.max(1e-9)).ceil().max(1.0) as usize;
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                let _ = routine();
            }
            times.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        *self.result_ns = times[times.len() / 2] * 1e9;
        *self.taken = self.samples;
    }
}

/// A named group of benchmarks, like `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        let measure = self.criterion.measure;
        let samples = self.sample_size;
        let mut ns = 0.0;
        let mut taken = 0;
        {
            let mut bencher = Bencher {
                measure,
                samples,
                result_ns: &mut ns,
                taken: &mut taken,
            };
            f(&mut bencher);
        }
        self.criterion.record(full, ns, taken);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, like `criterion::Criterion`.
pub struct Criterion {
    measure: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` when running `cargo bench` on a
        // `harness = false` target; anything else (e.g. `cargo test`) runs
        // the benches once as smoke tests.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Whether full measurement is active (`--bench` present).
    pub fn measuring(&self) -> bool {
        self.measure
    }

    /// Begins a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    fn record(&mut self, id: String, median_ns: f64, samples: usize) {
        if self.measure {
            println!("{id:<55} time: {}", format_ns(median_ns));
        }
        self.results.push(BenchResult {
            id,
            median_ns,
            samples,
        });
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes results as a JSON array of `{id, median_ns}` objects.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}}}",
                r.id, r.median_ns, r.samples
            ));
        }
        out.push_str("\n]\n");
        std::fs::write(path, out)
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            measure: false,
            results: Vec::new(),
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].samples, 0);
    }

    #[test]
    fn measure_mode_times_and_records() {
        let mut c = Criterion {
            measure: true,
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
        }
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
        assert_eq!(c.results()[0].id, "g/f/3");
    }
}
