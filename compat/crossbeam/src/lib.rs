//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Implements the subset the workspace uses:
//!
//! * [`channel`] — unbounded MPMC channels (`unbounded`, `Sender`,
//!   `Receiver`, blocking `recv`, non-blocking `try_recv`, timed
//!   `recv_timeout`), built on `Mutex<VecDeque>` + `Condvar`. Semantics
//!   match `crossbeam-channel` for the operations provided: cloneable
//!   senders *and* receivers, disconnection when all senders drop.
//! * [`thread`] — scoped spawning (`thread::scope`) forwarding to
//!   `std::thread::scope` with a crossbeam-flavoured `Result` return.

/// Multi-producer multi-consumer unbounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every [`Sender`] has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (Unbounded sends in this shim cannot otherwise fail.)
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // disconnection.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks (unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_unblocks_receiver() {
            let (tx, rx) = unbounded::<i32>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_consumes_every_item_once() {
            let (tx, rx) = unbounded();
            let n = 1000;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            let mut all: Vec<i32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_reports_empty_then_value() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
        }
    }
}

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// Spawns scoped threads through `std::thread::scope`, returning
    /// `Ok(result)` like crossbeam's API (std already propagates panics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}
