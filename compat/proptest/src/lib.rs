//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! [`ProptestConfig`], and the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed so it
//!   can be replayed, but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG stream from a
//!   fixed base seed, the test name, and the case index, so runs are fully
//!   reproducible without a persistence file.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of an associated type from a seeded RNG.
///
/// Object-safe (`Box<dyn Strategy<Value = T>>` works); the combinator
/// methods are `Self: Sized` and so excluded from the vtable.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased variants; built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `variants` (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for fixed-length `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of exactly `len` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A test-case failure raised by [`prop_assert!`]/[`prop_assert_eq!`].
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type of a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the cases of one property test; used by the [`proptest!`] macro.
pub mod test_runner {
    use super::{ProptestConfig, Strategy, TestCaseResult};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fixed base seed; combined with the test name and case index.
    const BASE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `body` against `config.cases` values drawn from `strategy`,
    /// panicking (with replay info) on the first failure.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strategy: &S,
        body: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let name_hash = fnv1a(name);
        for case in 0..config.cases as u64 {
            let seed = BASE_SEED ^ name_hash.wrapping_add(case.wrapping_mul(0xa076_1d64_78bd_642f));
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            if let Err(e) = body(value) {
                panic!("property '{name}' failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

/// Declares property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strategy,
                |($($pat,)+)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (with an
/// optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even_strategy() -> impl Strategy<Value = usize> {
        (1usize..50).prop_map(|x| 2 * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.5f64..2.0, z in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn mapped_values_are_even(x in even_strategy()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_len_matches((len, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0..1.0f64, n))
        })) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn oneof_picks_from_variants(x in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn tuple_pattern_destructures((a, b) in (0usize..5, 0usize..5)) {
            prop_assert!(a < 5 && b < 5);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = (0u64..1_000_000, 0.0..1.0f64);
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            crate::test_runner::run(
                &ProptestConfig::with_cases(16),
                "determinism_probe",
                &strat,
                |v| {
                    out.borrow_mut().push(v);
                    Ok(())
                },
            );
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_index() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            &(0usize..10,),
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
