//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dependencies are replaced by small, self-contained shims that
//! implement exactly the API surface the workspace uses (see the workspace
//! `Cargo.toml`). This one covers:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! and statistically solid for test workloads, but **not** the same stream
//! as upstream `rand`'s ChaCha-based `StdRng`: seeded results differ from
//! runs against the real crate while remaining fully reproducible within
//! this workspace.

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
}

/// 53-bit-precision uniform in `[0, 1)`.
#[inline]
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
        assert!(low < high, "gen_range: empty f64 range {low}..{high}");
        let v = low + (high - low) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low
        } else {
            v
        }
    }

    fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
        assert!(low <= high, "gen_range: empty f64 range {low}..={high}");
        low + (high - low) * unit_f64(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "gen_range: empty integer range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(bounded_u128(span, rng) as $t)
            }

            fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low <= high, "gen_range: empty integer range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(bounded_u128(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform integer in `[0, span)` via rejection sampling.
fn bounded_u128(span: u128, rng: &mut dyn RngCore) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every supported primitive range.
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from this range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a sample from the standard distribution of `Self`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` seed (SplitMix64-expanded).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }

    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but
    /// deterministic, `Clone`, and statistically sound for test workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// via [`StdRng::from_state`] resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds an RNG from state captured with [`StdRng::state`]. An
        /// all-zero state (a xoshiro fixed point, never produced by
        /// `from_seed`) is nudged the same way `from_seed` does.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }
}

/// Subset of `rand::distributions` (unused placeholder kept for parity).
pub mod distributions {
    pub use super::Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(0..=4u64);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_capture_resumes_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..50).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(saved);
        let resumed_tail: Vec<u64> = (0..50).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn from_state_nudges_zero_state() {
        let mut rng = StdRng::from_state([0; 4]);
        // Must not be stuck at the xoshiro fixed point.
        assert_ne!(rng.gen::<u64>(), rng.gen::<u64>());
    }
}
