//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as schema
//! annotation — nothing is serialized through serde's trait machinery (the
//! only JSON produced goes through the `serde_json` shim's `json!` macro).
//! These derives therefore expand to nothing, which keeps every annotated
//! type compiling without pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
