//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only uses serde as `#[derive(Serialize, Deserialize)]`
//! annotations on plain data types; no code path serializes through the
//! trait machinery (JSON output goes through the `serde_json` shim's
//! `json!` macro). The derives re-exported here expand to nothing, and the
//! marker traits exist so `T: Serialize` bounds would still compile.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods used offline).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods used offline).
pub trait DeserializeMarker {}
