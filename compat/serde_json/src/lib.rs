//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Implements the subset the workspace uses: the [`Value`] tree, the
//! [`json!`] construction macro, and [`to_string`]/[`to_string_pretty`].
//! Object key order is preserved (insertion order), numbers are `f64` or
//! `i64`, and string escaping covers the JSON control set.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (emitted without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Match serde_json: integral floats render with ".0".
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    // serde_json emits null for non-finite floats.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Int(*v as i64)
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Float(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Float(*v as f64)
            }
        }
    )*};
}

impl_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

/// Types serializable by [`to_string`]/[`to_string_pretty`] — the shim's
/// stand-in for `serde::Serialize` bounds.
pub trait ToJson {
    /// Converts to a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Error type kept for signature parity (serialization here can't fail).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write(&mut out, false, 0);
    Ok(out)
}

/// Serializes with two-space indentation, like `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write(&mut out, true, 0);
    Ok(out)
}

/// Constructs a [`Value`] from JSON-like syntax: objects with string-literal
/// keys, arrays, nesting, and arbitrary expressions convertible via
/// `Into<Value>`. Values are token-munched up to the next top-level comma,
/// so multi-token expressions (`m.t_pipe * 1e3`) work as they do with the
/// real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_internal_item!(items () $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut fields: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal_field!(fields $($tt)+);
        $crate::Value::Object(fields)
    }};
    ($($other:tt)+) => { $crate::Value::from($($other)+) };
}

/// Internal: munches one object field (`"key": <tts up to top-level comma>`).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_field {
    ($fields:ident) => {};
    ($fields:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal_field_value!($fields [$key] () $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_field_value {
    ($fields:ident [$key:literal] ($($val:tt)+) , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::json_internal_field!($fields $($rest)*)
    };
    ($fields:ident [$key:literal] ($($val:tt)+)) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
    };
    ($fields:ident [$key:literal] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_field_value!($fields [$key] ($($val)* $next) $($rest)*)
    };
}

/// Internal: munches one array item (tts up to the next top-level comma).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_item {
    ($items:ident ()) => {};
    ($items:ident ($($val:tt)+) , $($rest:tt)*) => {
        $items.push($crate::json!($($val)+));
        $crate::json_internal_item!($items () $($rest)*)
    };
    ($items:ident ($($val:tt)+)) => {
        $items.push($crate::json!($($val)+));
    };
    ($items:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_item!($items ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
// `json!` expands to a push-muncher; within this crate clippy sees through
// the macro and suggests `vec![..]`, which the muncher cannot produce.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        assert_eq!(to_string(&json!(1.5)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!("a\"b")).unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let name = String::from("gpipe");
        let v = json!({
            "scheme": name,
            "d": 4usize,
            "ratio": 1.25,
            "inner": { "flag": true },
            "arr": [1, 2, 3],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"scheme\":\"gpipe\",\"d\":4,\"ratio\":1.25,\
             \"inner\":{\"flag\":true},\"arr\":[1,2,3]}"
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = json!({ "a": 1, "b": [true] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn vec_of_values_serializes() {
        let rows = vec![json!({"x": 1}), json!({"x": 2})];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n  {"));
    }
}
