//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Implements the subset the workspace uses: the [`Value`] tree, the
//! [`json!`] construction macro, [`to_string`]/[`to_string_pretty`], the
//! [`from_str`] parser, and the `as_*`/[`Value::get`] accessors.
//! Object key order is preserved (insertion order), numbers are `f64` or
//! `i64`, and string escaping covers the JSON control set.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (emitted without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Match serde_json: integral floats render with ".0".
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    // serde_json emits null for non-finite floats.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value (floats only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Int(*v as i64)
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Float(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Float(*v as f64)
            }
        }
    )*};
}

impl_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

/// Types serializable by [`to_string`]/[`to_string_pretty`] — the shim's
/// stand-in for `serde::Serialize` bounds.
pub trait ToJson {
    /// Converts to a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Serialization/parse error (serialization itself can't fail; parsing
/// reports the byte offset and a short description).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Error {
        Error {
            message: format!("{} at byte {offset}", message.into()),
        }
    }
}

impl Default for Error {
    fn default() -> Self {
        Error {
            message: "serde_json shim error".to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] tree, like
/// `serde_json::from_str::<Value>`. Numbers without `.`/`e` parse as
/// [`Value::Int`], everything else numeric as [`Value::Float`]; trailing
/// non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::parse(
                self.pos,
                format!("unexpected '{}'", c as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::parse(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are out of scope for the shim's
                            // own output; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(start, "bad number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(start, "bad number"))
        }
    }
}

/// Serializes compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write(&mut out, false, 0);
    Ok(out)
}

/// Serializes with two-space indentation, like `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write(&mut out, true, 0);
    Ok(out)
}

/// Constructs a [`Value`] from JSON-like syntax: objects with string-literal
/// keys, arrays, nesting, and arbitrary expressions convertible via
/// `Into<Value>`. Values are token-munched up to the next top-level comma,
/// so multi-token expressions (`m.t_pipe * 1e3`) work as they do with the
/// real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_internal_item!(items () $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut fields: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal_field!(fields $($tt)+);
        $crate::Value::Object(fields)
    }};
    ($($other:tt)+) => { $crate::Value::from($($other)+) };
}

/// Internal: munches one object field (`"key": <tts up to top-level comma>`).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_field {
    ($fields:ident) => {};
    ($fields:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal_field_value!($fields [$key] () $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_field_value {
    ($fields:ident [$key:literal] ($($val:tt)+) , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::json_internal_field!($fields $($rest)*)
    };
    ($fields:ident [$key:literal] ($($val:tt)+)) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
    };
    ($fields:ident [$key:literal] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_field_value!($fields [$key] ($($val)* $next) $($rest)*)
    };
}

/// Internal: munches one array item (tts up to the next top-level comma).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_item {
    ($items:ident ()) => {};
    ($items:ident ($($val:tt)+) , $($rest:tt)*) => {
        $items.push($crate::json!($($val)+));
        $crate::json_internal_item!($items () $($rest)*)
    };
    ($items:ident ($($val:tt)+)) => {
        $items.push($crate::json!($($val)+));
    };
    ($items:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_item!($items ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
// `json!` expands to a push-muncher; within this crate clippy sees through
// the macro and suggests `vec![..]`, which the muncher cannot produce.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        assert_eq!(to_string(&json!(1.5)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!("a\"b")).unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let name = String::from("gpipe");
        let v = json!({
            "scheme": name,
            "d": 4usize,
            "ratio": 1.25,
            "inner": { "flag": true },
            "arr": [1, 2, 3],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"scheme\":\"gpipe\",\"d\":4,\"ratio\":1.25,\
             \"inner\":{\"flag\":true},\"arr\":[1,2,3]}"
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = json!({ "a": 1, "b": [true] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn vec_of_values_serializes() {
        let rows = vec![json!({"x": 1}), json!({"x": 2})];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n  {"));
    }

    #[test]
    fn parser_roundtrips_own_output() {
        let v = json!({
            "name": "fwd \"slice\"\n",
            "neg": -3,
            "pi": 3.25,
            "exp": 1.5e3,
            "flags": [true, false, null],
            "nested": { "empty_arr": [], "empty_obj": {} },
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nulle").is_err());
    }

    #[test]
    fn accessors_navigate_trees() {
        let v = from_str("{\"a\": [1, 2.5], \"b\": {\"c\": \"s\"}, \"t\": true}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 3);
        assert!(from_str("null").unwrap().is_null());
    }
}
