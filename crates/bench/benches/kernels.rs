//! Criterion micro-benchmarks for the math kernels underlying every K-FAC
//! work type: GEMM (forward/backward/precondition), symmetric Gram updates
//! (curvature), and Cholesky inversion (inversion work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipefisher_tensor::{cholesky_inverse, Matrix};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

fn rand_spd(n: usize, seed: u64) -> Matrix {
    let m = rand_matrix(n, n, seed);
    let mut spd = m.matmul_tn(&m);
    spd.add_diag(n as f64 * 0.05 + 1.0);
    spd
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let a = rand_matrix(n, n, 1);
        let b = rand_matrix(n, n, 2);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bencher, _| {
            bencher.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_curvature(c: &mut Criterion) {
    // The curvature kernel: Gram matrix of per-token activations, U ∈
    // (tokens × d) → UᵀU ∈ (d × d).
    let mut group = c.benchmark_group("curvature_gram");
    for &d in &[32usize, 64, 128] {
        let u = rand_matrix(256, d, 3);
        group.bench_with_input(BenchmarkId::new("gram_256tok", d), &d, |bencher, _| {
            bencher.iter(|| black_box(u.gram()));
        });
    }
    group.finish();
}

fn bench_inversion(c: &mut Criterion) {
    // The inversion kernel: damped Cholesky inverse of a Kronecker factor.
    let mut group = c.benchmark_group("inversion");
    for &n in &[32usize, 64, 128] {
        let a = rand_spd(n, 4);
        group.bench_with_input(BenchmarkId::new("cholesky_inverse", n), &n, |bencher, _| {
            bencher.iter(|| black_box(cholesky_inverse(&a).unwrap()));
        });
    }
    group.finish();
}

fn bench_precondition(c: &mut Criterion) {
    // The precondition kernel: B⁻¹·G·A⁻¹ (two GEMMs).
    let mut group = c.benchmark_group("precondition");
    for &(dout, din) in &[(32usize, 64usize), (64, 128)] {
        let inv_b = rand_spd(dout, 5);
        let inv_a = rand_spd(din, 6);
        let g = rand_matrix(dout, din, 7);
        let id = format!("{dout}x{din}");
        group.bench_function(BenchmarkId::new("b_g_a", id), |bencher| {
            bencher.iter(|| black_box(inv_b.matmul(&g).matmul(&inv_a)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_curvature, bench_inversion, bench_precondition);
criterion_main!(benches);
