//! Serial-vs-parallel micro-benchmarks for the math kernels underlying every
//! K-FAC work type: GEMM (forward/backward/precondition) at BERT-Base/Large
//! dimensions (768/1024/3072/4096), the symmetric Gram curvature kernel, and
//! a whole `Kfac::step` (curvature EMA + inversion + preconditioning across
//! layers).
//!
//! The custom `main` times every kernel twice — once pinned to one worker
//! lane, once at the pool's parallel thread count — and writes a
//! machine-readable summary (including the measured speedups and the host
//! core count, so a 1-core container's ≈1× results are self-explaining) to
//! `results/BENCH_kernels.json`.

use criterion::{BenchmarkId, Criterion};
use pipefisher_nn::{BertConfig, BertForPreTraining, ForwardCtx, PreTrainingBatch, IGNORE_INDEX};
use pipefisher_optim::{Kfac, KfacConfig, Lamb};
use pipefisher_tensor::{par, Matrix};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

/// Times `op` under `label/mode/param` with the pool pinned to `threads`
/// lanes (0 = the default parallel count).
fn bench_leg(
    c: &mut Criterion,
    group: &str,
    mode: &str,
    param: &str,
    threads: usize,
    mut op: impl FnMut(),
) {
    par::set_max_threads(threads);
    let mut g = c.benchmark_group(group);
    g.sample_size(3);
    g.bench_with_input(BenchmarkId::new(mode, param), &(), |b, _| b.iter(&mut op));
    g.finish();
    par::set_max_threads(0);
}

fn bench_gemm(c: &mut Criterion, par_threads: usize) {
    // Square GEMMs at the paper's hidden sizes plus the BERT FFN shapes
    // (tokens × d_ff)·(d_ff × d_model) touching 3072/4096.
    let square: &[usize] = if c.measuring() { &[768, 1024] } else { &[96] };
    for &n in square {
        let a = rand_matrix(n, n, 1);
        let b = rand_matrix(n, n, 2);
        let param = format!("{n}x{n}x{n}");
        bench_leg(c, "gemm", "serial", &param, 1, || {
            black_box(a.matmul(&b));
        });
        bench_leg(c, "gemm", "parallel", &param, par_threads, || {
            black_box(a.matmul(&b));
        });
    }
    let rect: &[(usize, usize, usize)] = if c.measuring() {
        &[(128, 3072, 768), (128, 4096, 1024)]
    } else {
        &[(16, 96, 48)]
    };
    for &(m, k, n) in rect {
        let a = rand_matrix(m, k, 3);
        let b = rand_matrix(k, n, 4);
        let param = format!("{m}x{k}x{n}");
        bench_leg(c, "gemm", "serial", &param, 1, || {
            black_box(a.matmul(&b));
        });
        bench_leg(c, "gemm", "parallel", &param, par_threads, || {
            black_box(a.matmul(&b));
        });
    }
}

fn bench_gram(c: &mut Criterion, par_threads: usize) {
    // The curvature kernel: Gram matrix of per-token activations,
    // U ∈ (tokens × d) → UᵀU ∈ (d × d), at BERT-Base/Large hidden sizes.
    let dims: &[usize] = if c.measuring() { &[768, 1024] } else { &[64] };
    for &d in dims {
        let u = rand_matrix(512, d, 5);
        let param = format!("512tok_{d}");
        bench_leg(c, "gram", "serial", &param, 1, || {
            black_box(u.gram());
        });
        bench_leg(c, "gram", "parallel", &param, par_threads, || {
            black_box(u.gram());
        });
    }
}

fn bench_kfac_step(c: &mut Criterion, par_threads: usize) {
    // A whole optimizer step over a multi-block encoder: per-layer curvature
    // EMA, Cholesky inversion, and preconditioning all run through the pool.
    let (d_model, d_ff, n_layers) = if c.measuring() {
        (128, 512, 4)
    } else {
        (32, 64, 2)
    };
    let vocab = 200;
    let seq = 16;
    let cfg = BertConfig {
        vocab_size: vocab,
        max_seq: seq + 2,
        d_model,
        d_ff,
        n_heads: 4,
        n_layers,
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    let mut model = BertForPreTraining::new(cfg, 0.0, &mut rng);
    let n = 4 * seq;
    let batch = PreTrainingBatch {
        token_ids: (0..n).map(|i| (i * 17 + 3) % vocab).collect(),
        segment_ids: (0..n).map(|i| usize::from(i % seq >= seq / 2)).collect(),
        mlm_targets: (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    ((i * 13) % vocab) as i64
                } else {
                    IGNORE_INDEX
                }
            })
            .collect(),
        nsp_targets: (0..4).map(|i| (i % 2) as i64).collect(),
        seq,
    };
    model.zero_grad();
    let _ = model.train_step(&batch, &ForwardCtx::train_with_capture());
    let kfac_cfg = KfacConfig {
        damping: 1e-2,
        curvature_interval: 1,
        inversion_interval: 1,
        ..Default::default()
    };
    let param = format!("{n_layers}L_d{d_model}");
    let mut run_step = |threads: usize, mode: &str| {
        let snapshot = model.clone();
        let cfg = kfac_cfg.clone();
        bench_leg(c, "kfac_step", mode, &param, threads, move || {
            let mut m = snapshot.clone();
            let mut opt = Kfac::new(cfg.clone(), Lamb::new(0.01));
            opt.step(&mut m, 1e-3);
            black_box(&m);
        });
    };
    run_step(1, "serial");
    run_step(par_threads, "parallel");
}

fn main() {
    let mut c = Criterion::default();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The acceptance target compares ≥4 threads against serial; on hosts
    // with fewer cores the extra threads just oversubscribe, and the JSON
    // records the core count so ≈1× speedups are interpretable.
    let par_threads = par::max_threads().max(4);

    bench_gemm(&mut c, par_threads);
    bench_gram(&mut c, par_threads);
    bench_kfac_step(&mut c, par_threads);

    if !c.measuring() {
        return;
    }

    // Pair serial/parallel legs into speedup records.
    let results = c.results();
    let mut entries = Vec::new();
    for r in results {
        // Ids look like "gemm/serial/768x768x768".
        let mut parts = r.id.splitn(3, '/');
        let (Some(group), Some(mode), Some(param)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if mode != "serial" {
            continue;
        }
        let partner = format!("{group}/parallel/{param}");
        let Some(p) = results.iter().find(|r| r.id == partner) else {
            continue;
        };
        entries.push(format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"dims\": \"{}\", \"serial_ns\": {:.1}, ",
                "\"parallel_ns\": {:.1}, \"speedup\": {:.3}}}"
            ),
            group,
            param,
            r.median_ns,
            p.median_ns,
            r.median_ns / p.median_ns.max(1.0)
        ));
    }

    // cargo runs bench executables from the package root; the JSON belongs
    // next to the other experiment outputs in the workspace results dir.
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).expect("create results/");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernels\",\n",
            "  \"host_cores\": {},\n",
            "  \"parallel_threads\": {},\n",
            "  \"note\": \"speedup = serial_ns / parallel_ns; on a host with ",
            "fewer cores than parallel_threads the parallel leg oversubscribes ",
            "and speedup ~1x is expected\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores,
        par_threads,
        entries.join(",\n")
    );
    let path = format!("{results_dir}/BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path} ({} kernel pairs)", entries.len());
}
