//! Serial-vs-parallel micro-benchmarks for the math kernels underlying every
//! K-FAC work type: GEMM (forward/backward/precondition) at BERT-Base/Large
//! dimensions (768/1024/3072/4096), the symmetric Gram curvature kernel, and
//! a whole `Kfac::step` (curvature EMA + inversion + preconditioning across
//! layers).
//!
//! The custom `main` times every kernel twice — once pinned to one worker
//! lane, once at the pool's parallel thread count — and writes a
//! machine-readable summary (including the measured speedups and the host
//! core count, so a 1-core container's ≈1× results are self-explaining) to
//! `results/BENCH_kernels.json`.

use criterion::{BenchmarkId, Criterion};
use pipefisher_nn::{
    cross_entropy_backward, BertConfig, BertForPreTraining, ForwardCtx, Layer, Linear,
    ParamVisitor, PreTrainingBatch, IGNORE_INDEX,
};
use pipefisher_optim::{Kfac, KfacConfig, KfacModel, Lamb, Sgd};
use pipefisher_tensor::{par, workspace, Matrix};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

/// Times `op` under `label/mode/param` with the pool pinned to `threads`
/// lanes (0 = the default parallel count).
fn bench_leg(
    c: &mut Criterion,
    group: &str,
    mode: &str,
    param: &str,
    threads: usize,
    mut op: impl FnMut(),
) {
    par::set_max_threads(threads);
    let mut g = c.benchmark_group(group);
    g.sample_size(3);
    g.bench_with_input(BenchmarkId::new(mode, param), &(), |b, _| b.iter(&mut op));
    g.finish();
    par::set_max_threads(0);
}

fn bench_gemm(c: &mut Criterion, par_threads: usize) {
    // Square GEMMs at the paper's hidden sizes plus the BERT FFN shapes
    // (tokens × d_ff)·(d_ff × d_model) touching 3072/4096.
    let square: &[usize] = if c.measuring() { &[768, 1024] } else { &[96] };
    for &n in square {
        let a = rand_matrix(n, n, 1);
        let b = rand_matrix(n, n, 2);
        let param = format!("{n}x{n}x{n}");
        bench_leg(c, "gemm", "serial", &param, 1, || {
            black_box(a.matmul(&b));
        });
        bench_leg(c, "gemm", "parallel", &param, par_threads, || {
            black_box(a.matmul(&b));
        });
    }
    let rect: &[(usize, usize, usize)] = if c.measuring() {
        &[(128, 3072, 768), (128, 4096, 1024)]
    } else {
        &[(16, 96, 48)]
    };
    for &(m, k, n) in rect {
        let a = rand_matrix(m, k, 3);
        let b = rand_matrix(k, n, 4);
        let param = format!("{m}x{k}x{n}");
        bench_leg(c, "gemm", "serial", &param, 1, || {
            black_box(a.matmul(&b));
        });
        bench_leg(c, "gemm", "parallel", &param, par_threads, || {
            black_box(a.matmul(&b));
        });
    }
}

fn bench_gram(c: &mut Criterion, par_threads: usize) {
    // The curvature kernel: Gram matrix of per-token activations,
    // U ∈ (tokens × d) → UᵀU ∈ (d × d), at BERT-Base/Large hidden sizes.
    let dims: &[usize] = if c.measuring() { &[768, 1024] } else { &[64] };
    for &d in dims {
        let u = rand_matrix(512, d, 5);
        let param = format!("512tok_{d}");
        bench_leg(c, "gram", "serial", &param, 1, || {
            black_box(u.gram());
        });
        bench_leg(c, "gram", "parallel", &param, par_threads, || {
            black_box(u.gram());
        });
    }
}

fn bench_kfac_step(c: &mut Criterion, par_threads: usize) {
    // A whole optimizer step over a multi-block encoder: per-layer curvature
    // EMA, Cholesky inversion, and preconditioning all run through the pool.
    let (d_model, d_ff, n_layers) = if c.measuring() {
        (128, 512, 4)
    } else {
        (32, 64, 2)
    };
    let vocab = 200;
    let seq = 16;
    let cfg = BertConfig {
        vocab_size: vocab,
        max_seq: seq + 2,
        d_model,
        d_ff,
        n_heads: 4,
        n_layers,
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    let mut model = BertForPreTraining::new(cfg, 0.0, &mut rng);
    let n = 4 * seq;
    let batch = PreTrainingBatch {
        token_ids: (0..n).map(|i| (i * 17 + 3) % vocab).collect(),
        segment_ids: (0..n).map(|i| usize::from(i % seq >= seq / 2)).collect(),
        mlm_targets: (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    ((i * 13) % vocab) as i64
                } else {
                    IGNORE_INDEX
                }
            })
            .collect(),
        nsp_targets: (0..4).map(|i| (i % 2) as i64).collect(),
        seq,
    };
    model.zero_grad();
    let _ = model.train_step(&batch, &ForwardCtx::train_with_capture());
    let kfac_cfg = KfacConfig {
        damping: 1e-2,
        curvature_interval: 1,
        inversion_interval: 1,
        ..Default::default()
    };
    let param = format!("{n_layers}L_d{d_model}");
    let mut run_step = |threads: usize, mode: &str| {
        let snapshot = model.clone();
        let cfg = kfac_cfg.clone();
        bench_leg(c, "kfac_step", mode, &param, threads, move || {
            let mut m = snapshot.clone();
            let mut opt = Kfac::new(cfg.clone(), Lamb::new(0.01));
            opt.step(&mut m, 1e-3);
            black_box(&m);
        });
    };
    run_step(1, "serial");
    run_step(par_threads, "parallel");
}

/// Pre-change steady-state allocation baseline for the workload in
/// [`measure_kfac_allocs`], measured at the commit preceding the workspace
/// arena (probe with an identical counting allocator and training loop;
/// see EXPERIMENTS.md "Allocation benchmark" for the measurement recipe).
const BASELINE_ALLOCS_PER_STEP: u64 = 111;
const BASELINE_BYTES_PER_STEP: u64 = 2_564_839;

/// A plain stack of linear layers driven as one K-FAC model.
struct Stack(Vec<Linear>);

impl KfacModel for Stack {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for l in self.0.iter_mut() {
            f(l);
        }
    }
    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        for l in self.0.iter_mut() {
            l.visit_params(&mut *f);
        }
    }
}

/// Steady-state heap traffic of a 4-stage K-FAC train: 4 linear layers
/// (64→64, batch 48), curvature + inversion refreshed every step, measured
/// over the 5 steps after a 5-step warm-up. Returns (allocs/step,
/// bytes/step); all-zeros unless built with `--features alloc-count`.
fn measure_kfac_allocs(workspace_on: bool) -> (u64, u64) {
    workspace::set_enabled(workspace_on);
    par::set_max_threads(1); // deterministic: no boxed task dispatch
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let mut model = Stack(
        (0..4)
            .map(|i| Linear::new(&format!("fc{i}"), 64, 64, &mut rng))
            .collect(),
    );
    let x = pipefisher_tensor::init::normal(48, 64, 1.0, &mut rng);
    let targets: Vec<i64> = (0..48).map(|i| (i % 64) as i64).collect();
    let mut kfac = Kfac::new(
        KfacConfig {
            curvature_interval: 1,
            inversion_interval: 1,
            ..Default::default()
        },
        Sgd::new(0.9, 0.0),
    );
    let (steps, warmup) = (10usize, 5usize);
    let (mut allocs, mut bytes) = (0u64, 0u64);
    for step in 0..steps {
        let before = pipefisher_trace::alloc_snapshot();
        let mut h = x.clone();
        for lin in model.0.iter_mut() {
            lin.zero_grad();
            h = lin.forward(&h, &ForwardCtx::train_with_capture());
        }
        let mut d = cross_entropy_backward(&h, &targets);
        for lin in model.0.iter_mut().rev() {
            d = lin.backward(&d);
        }
        kfac.step(&mut model, 0.01);
        if step >= warmup {
            let delta = pipefisher_trace::alloc_snapshot().since(&before);
            allocs += delta.allocs;
            bytes += delta.bytes;
        }
    }
    par::set_max_threads(0);
    workspace::reset_enabled();
    let n = (steps - warmup) as u64;
    (allocs / n, bytes / n)
}

/// Writes `BENCH_alloc.json` at the repo root: steady-state allocs/step and
/// bytes/step for the 4-stage K-FAC train, workspace on and off, against
/// the recorded pre-change baseline. Skipped (with a note) when the binary
/// was built without the counting allocator.
fn bench_alloc(host_cores: usize) {
    if !pipefisher_trace::alloc_counting_enabled() {
        println!("alloc bench skipped: rebuild with --features alloc-count");
        return;
    }
    let (on_allocs, on_bytes) = measure_kfac_allocs(true);
    let (off_allocs, off_bytes) = measure_kfac_allocs(false);
    let ratio = BASELINE_ALLOCS_PER_STEP as f64 / on_allocs.max(1) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"alloc\",\n",
            "  \"workload\": \"4-stage K-FAC train: 4x Linear 64->64, batch 48, ",
            "curvature+inversion every step; steady state = steps 5..10, ",
            "1 worker thread\",\n",
            "  \"host_cores\": {},\n",
            "  \"baseline\": {{\"allocs_per_step\": {}, \"bytes_per_step\": {}, ",
            "\"note\": \"pre-change tree, identical probe\"}},\n",
            "  \"workspace_on\": {{\"allocs_per_step\": {}, \"bytes_per_step\": {}}},\n",
            "  \"workspace_off\": {{\"allocs_per_step\": {}, \"bytes_per_step\": {}}},\n",
            "  \"alloc_reduction_vs_baseline\": {:.1}\n",
            "}}\n"
        ),
        host_cores,
        BASELINE_ALLOCS_PER_STEP,
        BASELINE_BYTES_PER_STEP,
        on_allocs,
        on_bytes,
        off_allocs,
        off_bytes,
        ratio
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    std::fs::write(path, &json).expect("write BENCH_alloc.json");
    println!("wrote {path} (reduction vs baseline: {ratio:.1}x)");
}

fn main() {
    let mut c = Criterion::default();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The acceptance target compares ≥4 threads against serial; on hosts
    // with fewer cores the extra threads just oversubscribe, and the JSON
    // records the core count so ≈1× speedups are interpretable.
    let par_threads = par::max_threads().max(4);

    bench_gemm(&mut c, par_threads);
    bench_gram(&mut c, par_threads);
    bench_kfac_step(&mut c, par_threads);

    if !c.measuring() {
        return;
    }

    bench_alloc(host_cores);

    // Pair serial/parallel legs into speedup records.
    let results = c.results();
    let mut entries = Vec::new();
    for r in results {
        // Ids look like "gemm/serial/768x768x768".
        let mut parts = r.id.splitn(3, '/');
        let (Some(group), Some(mode), Some(param)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if mode != "serial" {
            continue;
        }
        let partner = format!("{group}/parallel/{param}");
        let Some(p) = results.iter().find(|r| r.id == partner) else {
            continue;
        };
        entries.push(format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"dims\": \"{}\", \"serial_ns\": {:.1}, ",
                "\"parallel_ns\": {:.1}, \"speedup\": {:.3}}}"
            ),
            group,
            param,
            r.median_ns,
            p.median_ns,
            r.median_ns / p.median_ns.max(1.0)
        ));
    }

    // cargo runs bench executables from the package root; the JSON belongs
    // next to the other experiment outputs in the workspace results dir.
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).expect("create results/");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernels\",\n",
            "  \"host_cores\": {},\n",
            "  \"parallel_threads\": {},\n",
            "  \"note\": \"speedup = serial_ns / parallel_ns; on a host with ",
            "fewer cores than parallel_threads the parallel leg oversubscribes ",
            "and speedup ~1x is expected\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores,
        par_threads,
        entries.join(",\n")
    );
    let path = format!("{results_dir}/BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path} ({} kernel pairs)", entries.len());
}
