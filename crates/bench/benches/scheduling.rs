//! Criterion benchmarks for schedule construction, simulation, and the
//! PipeFisher bubble-assignment pass — the "compile time" of the static
//! schedule, which the paper runs once per training configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipefisher_bench::Setting;
use pipefisher_core::assign;
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::{simulate, UniformCost};
use std::hint::black_box;

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    for scheme in PipelineScheme::all() {
        for &d in &[4usize, 8, 16] {
            group.bench_with_input(BenchmarkId::new(scheme.name(), d), &d, |bencher, &d| {
                bencher.iter(|| black_box(scheme.build(d, d)));
            });
        }
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let cost = UniformCost::new(1.0, 2.0);
    for scheme in PipelineScheme::all() {
        let graph = scheme.build(8, 8);
        group.bench_function(scheme.name(), |bencher| {
            bencher.iter(|| black_box(simulate(&graph, &cost).unwrap()));
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipefisher_assign");
    group.sample_size(20);
    for scheme in PipelineScheme::all() {
        let setting = Setting::fig3(scheme, 1);
        let config = setting.assign_config();
        group.bench_function(scheme.name(), |bencher| {
            bencher.iter(|| black_box(assign(&config).unwrap()));
        });
    }
    // The paper's largest assignment: BERT-Large Chimera D=8.
    let fig4 = Setting::fig4().assign_config();
    group.bench_function("fig4_bert_large", |bencher| {
        bencher.iter(|| black_box(assign(&fig4).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_builders, bench_simulate, bench_assignment);
criterion_main!(benches);
