//! Ablation (paper Appendix C.1): synchronous + PipeFisher vs asynchronous
//! pipelines.
//!
//! Two ways to fill bubbles:
//!
//! * **PipeFisher** keeps the synchronous flush and fills the bubbles with
//!   K-FAC work — fresh gradients, stale curvature
//!   (`θ_{t+1} = θ_t − η·F̂⁻¹_{t−n}·g_t`);
//! * **asynchronous pipelines** (PipeDream-style) remove the flush and fill
//!   the bubbles with *stale gradient* work
//!   (`θ_{t+1} = θ_t − η·g_{t−m}`, m up to D).
//!
//! This binary compares (a) the schedule side — utilization of sync vs
//! async 1F1B as the horizon grows — and (b) the optimization side —
//! convergence of fresh vs delayed gradients on the synthetic LM task.

use pipefisher_bench::{pct, Setting};
use pipefisher_core::assign;
use pipefisher_lm::{BatchSampler, OptimizerChoice, SyntheticLanguage, TrainOptions, Trainer};
use pipefisher_nn::{BertConfig, BertForPreTraining};
use pipefisher_optim::LrSchedule;
use pipefisher_pipeline::{async_staleness, build_async_1f1b, PipelineScheme};
use pipefisher_sim::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("=== Ablation: PipeFisher (sync + K-FAC bubbles) vs asynchronous pipelines ===\n");

    // (a) Schedule side.
    let setting = Setting::fig3(PipelineScheme::OneFOneB, 1);
    let costs = setting.costs();
    println!("schedule utilization (BERT-Base costs, D=4, N_micro=4/step):");
    let sync = simulate(&PipelineScheme::OneFOneB.build(4, 4), &costs).unwrap();
    println!(
        "  sync 1F1B (flush every step):        {}",
        pct(sync.utilization())
    );
    for horizon in [1usize, 4, 16] {
        let g = build_async_1f1b(4, 4, horizon);
        let tl = simulate(&g, &costs).unwrap();
        println!(
            "  async 1F1B over {horizon:>2} steps (no flush): {}",
            pct(tl.utilization())
        );
    }
    let pf = assign(&setting.assign_config()).unwrap();
    println!(
        "  sync 1F1B + PipeFisher:              {} (and curvature refreshed every {:.1} steps)",
        pct(pf.steady_utilization),
        pf.steady_refresh_steps
    );
    println!(
        "\nasync gradient staleness by stage (D=4): {:?} steps",
        (0..4).map(|s| async_staleness(4, s)).collect::<Vec<_>>()
    );

    // (b) Optimization side: fresh vs stale gradients.
    println!("\nconvergence on the synthetic LM (tiny BERT, NVLAMB, 80 steps):");
    let run = |delay: usize| {
        let lang = SyntheticLanguage::new(52, 2, 4, 5);
        let sampler = BatchSampler::new(lang, 16);
        let schedule = LrSchedule::PolyWithWarmup {
            base_lr: 1e-2,
            warmup_steps: 20,
            total_steps: 80,
            power: 0.5,
        };
        let mut trainer = Trainer::new(sampler, 16, schedule, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = BertForPreTraining::new(BertConfig::tiny(52, 16), 0.0, &mut rng);
        trainer.run_with_options(
            &mut model,
            &OptimizerChoice::Lamb { weight_decay: 0.01 },
            80,
            &TrainOptions {
                accumulation_steps: 1,
                grad_delay: delay,
            },
        )
    };
    println!("{:>18} {:>12}", "gradient delay", "final loss");
    for delay in [0usize, 2, 4, 8] {
        let r = run(delay);
        println!("{:>18} {:>12.4}", delay, r.final_loss(11));
    }
    println!("\ntakeaway (App. C.1): async buys utilization with gradient staleness that can");
    println!("slow convergence; PipeFisher buys utilization with curvature staleness, which");
    println!("K-FAC tolerates (see `stale_curvature_still_converges` in tests).");
}
