//! Ablation (paper §5, "Extra work for other types of algorithms"):
//! what else fits into pipeline bubbles besides K-FAC?
//!
//! * **Shampoo** — Kronecker-factored AdaGrad statistics of the same shapes
//!   as K-FAC's factors, but with eigendecomposition roots (≈ 25·n³) in
//!   place of Cholesky inversion (≈ n³). The paper predicts "a method that
//!   divides the work for a single matrix into multiple pieces would be
//!   necessary" — this ablation measures exactly that: at whole-stage
//!   granularity the root work does not fit any bubble; per-layer (and
//!   finer) splitting makes it schedulable at the cost of a longer refresh.
//! * **SAM** — one extra forward+backward per micro-batch per step
//!   ("twice the work of regular SGD"): we report how many steps of bubbles
//!   a full SAM pass needs, i.e. whether bubbles could hide it.

use pipefisher_bench::{pct, Setting};
use pipefisher_core::{assign, AssignError};
use pipefisher_perfmodel::shampoo_stage_costs;
use pipefisher_pipeline::PipelineScheme;

fn main() {
    println!("=== Ablation: filling bubbles with Shampoo and SAM work (paper §5) ===\n");

    // --- K-FAC reference (Figure 3 setting). ---
    let kfac_setting = Setting::fig3(PipelineScheme::GPipe, 1);
    let kfac = assign(&kfac_setting.assign_config()).expect("kfac fits");
    println!(
        "K-FAC   (BERT-Base, GPipe D=4): refresh {:.1} steps steady, utilization {}",
        kfac.steady_refresh_steps,
        pct(kfac.steady_utilization)
    );

    // --- Shampoo with the same pipeline. ---
    let mut shampoo_cfg = kfac_setting.assign_config();
    shampoo_cfg.costs = {
        let mut c = shampoo_stage_costs(
            &kfac_setting.arch,
            &kfac_setting.hw,
            kfac_setting.blocks_per_stage,
            kfac_setting.b_micro,
            false,
        );
        c.t_sync_grad = kfac_setting.costs().t_sync_grad;
        c.t_sync_curv = kfac_setting.costs().t_sync_curv;
        c
    };
    shampoo_cfg.max_steps = 512;

    println!("\nShampoo root work (eigendecompositions) vs granularity:");
    println!(
        "{:>24} | {:>12} | {:>22}",
        "granularity", "fits?", "steady refresh (steps)"
    );
    for (label, granularity) in [
        ("whole stage (1)", 1usize),
        ("per block (3)", 3),
        ("per layer (18)", 18),
        ("per layer split 4x (72)", 72),
    ] {
        let mut cfg = shampoo_cfg.clone();
        cfg.granularity = granularity;
        match assign(&cfg) {
            Ok(s) => println!(
                "{:>24} | {:>12} | {:>22.1}",
                label, "yes", s.steady_refresh_steps
            ),
            Err(AssignError::DoesNotFit {
                duration,
                largest_bubble,
                ..
            }) => println!(
                "{:>24} | {:>12} | chunk {:.0} ms > bubble {:.0} ms",
                label,
                "NO",
                duration * 1e3,
                largest_bubble * 1e3
            ),
            Err(e) => println!("{:>24} | {:>12} | {e}", label, "NO"),
        }
    }

    // --- SAM: extra forward+backward per micro-batch per step. ---
    println!("\nSAM extra work (one more F+B per micro-batch per step):");
    for scheme in PipelineScheme::all() {
        let setting = Setting::fig3(scheme, 1);
        let costs = setting.costs();
        let graph = scheme.build(setting.d, setting.n_micro);
        let base = pipefisher_sim::simulate(&graph, &costs).expect("simulates");
        let t_step = base.makespan();
        let bubble_per_device = t_step - base.device_busy(0);
        let sam_work = setting.n_micro as f64 * (costs.t_f + costs.t_b);
        println!(
            "  {:<8} bubble/device {:>6.0} ms, SAM work {:>6.0} ms -> needs {:.1} steps of bubbles",
            scheme.name(),
            bubble_per_device * 1e3,
            sam_work * 1e3,
            sam_work / bubble_per_device
        );
    }
    println!("\npaper §5: SAM 'contains twice the work of regular SGD and has the potential to");
    println!("double the accelerator utilization' — i.e. bubbles alone cannot hide a full SAM");
    println!("pass each step (ratios above are ≫ 1), but they absorb a sizeable fraction.");
}
