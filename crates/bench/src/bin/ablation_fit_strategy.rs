//! Design-choice ablation: first-fit vs best-fit bubble placement.
//!
//! The paper's queue-draining rule places each work chunk into the earliest
//! bubble that holds it (first-fit). Best-fit instead picks the bubble with
//! the least leftover space, potentially packing fragmented bubble patterns
//! tighter at the cost of starting some work later. This ablation compares
//! the two on the paper's settings and on the interleaved schedule (whose
//! bubbles are the most fragmented).

use pipefisher_bench::Setting;
use pipefisher_core::{assign_graph, FitStrategy, GraphAssignOptions};
use pipefisher_pipeline::{build_interleaved_1f1b, PipelineScheme};

fn main() {
    println!("=== Ablation: bubble fit strategy (first-fit vs best-fit) ===\n");
    println!(
        "{:<28} | {:>18} | {:>18}",
        "schedule", "first-fit refresh", "best-fit refresh"
    );

    let mut rows: Vec<(
        String,
        pipefisher_pipeline::TaskGraph,
        pipefisher_sim::KindCost,
        usize,
    )> = Vec::new();
    for scheme in PipelineScheme::all() {
        let setting = Setting::fig3(scheme, 1);
        rows.push((
            format!("{} (BERT-Base, D=4)", scheme.name()),
            scheme.build(4, 4),
            setting.costs(),
            setting.blocks_per_stage * 6,
        ));
    }
    for v in [2usize, 4] {
        let setting = Setting::fig3(PipelineScheme::OneFOneB, 1);
        rows.push((
            format!("interleaved-1f1b v={v}"),
            build_interleaved_1f1b(4, 4, v),
            setting.costs(),
            setting.blocks_per_stage * 6,
        ));
    }

    for (label, graph, costs, granularity) in rows {
        let run = |fit: FitStrategy| {
            assign_graph(
                &graph,
                &costs,
                &GraphAssignOptions {
                    fit,
                    w: 1,
                    max_steps: 128,
                    granularity,
                    recompute_releases_a: false,
                    device_pairing: None,
                    always_sync_grad: false,
                },
            )
        };
        let first = run(FitStrategy::FirstFit);
        let best = run(FitStrategy::BestFit);
        let describe = |r: &Result<pipefisher_core::PipeFisherSchedule, _>| match r {
            Ok(s) => format!(
                "{} cold / {:.1}% util",
                s.refresh_steps,
                s.utilization * 100.0
            ),
            Err(_) => "does not fit".to_string(),
        };
        println!(
            "{:<28} | {:>18} | {:>18}",
            label,
            describe(&first),
            describe(&best)
        );
    }

    println!("\ntakeaway: the steady-state refresh interval is capacity-bound (identical for");
    println!("both strategies); the strategies differ only in cold-start packing, where");
    println!("first-fit's earlier starts usually finish the first refresh no later — which is");
    println!("why the paper's simple queue-draining rule is the right default.");
}
