//! Appendix A.2: PipeFisher for larger Transformers via block-diagonal
//! Kronecker factors.
//!
//! Scaling `d_model`/`d_ff` by `K` makes the full factors (`d_ff²` entries,
//! `d_ff³` inversion) impossible to fit in memory or bubbles. The paper's
//! strategy: approximate each factor by a `K`-block-diagonal matrix, so the
//! inversion splits into `K` pieces of the original size. This binary
//! quantifies the effect with the cost model: the refresh ratio of the
//! scaled model with `K`-block-diagonal factors stays in the same band as
//! the unscaled model, while full factors blow up both memory and ratio.

use pipefisher_perfmodel::{
    flops, model_step, stage_costs, stage_memory, HardwareProfile, StepModelInput,
    TransformerConfig,
};
use pipefisher_pipeline::PipelineScheme;

fn scaled(base: &TransformerConfig, k: usize) -> TransformerConfig {
    TransformerConfig {
        name: format!("{}×{k}", base.name),
        d_model: base.d_model * k,
        d_ff: base.d_ff * k,
        n_heads: base.n_heads * k,
        ..base.clone()
    }
}

fn main() {
    let base = TransformerConfig::bert_base();
    let hw = HardwareProfile::p100();
    println!("=== Appendix A.2: block-diagonal factors for scaled Transformers ===");
    println!("(BERT-Base dims × K, Chimera D=8, one block/stage, B_micro=8, P100)\n");
    println!(
        "{:>4} {:>10} | {:>14} {:>14} | {:>12} {:>12} | {:>9} {:>9}",
        "K",
        "d_ff",
        "inv GFLOP full",
        "inv GFLOP bd",
        "curv GF full",
        "curv GF bd",
        "ratio full",
        "ratio bd"
    );
    for k in [1usize, 2, 4, 8] {
        let arch = scaled(&base, k);
        let mk = |blockdiag: bool| {
            let mut costs = stage_costs(&arch, &hw, 1, 8, false);
            if blockdiag {
                costs.t_curv_a = hw.gemm_time(flops::curvature_flops_per_token_blockdiag(&arch, k))
                    * (8 * arch.seq_len) as f64
                    / 2.0;
                costs.t_curv_b = costs.t_curv_a;
                let inv = hw.factorization_time(flops::inversion_flops_blockdiag(&arch, k));
                costs.t_inv_a = inv / 2.0;
                costs.t_inv_b = inv / 2.0;
            }
            model_step(&StepModelInput {
                scheme: PipelineScheme::Chimera,
                d: 8,
                n_micro: 8,
                b_micro: 8,
                w: 1,
                costs,
                memory: stage_memory(&arch, 1, 8, false),
                hw: hw.clone(),
            })
        };
        let full = mk(false);
        let bd = mk(true);
        println!(
            "{:>4} {:>10} | {:>14.1} {:>14.1} | {:>12.1} {:>12.1} | {:>9.2} {:>9.2}",
            k,
            arch.d_ff,
            flops::inversion_flops(&arch) / 1e9,
            flops::inversion_flops_blockdiag(&arch, k) / 1e9,
            flops::curvature_flops_per_token(&arch) * (8 * arch.seq_len) as f64 / 1e9,
            flops::curvature_flops_per_token_blockdiag(&arch, k) * (8 * arch.seq_len) as f64 / 1e9,
            full.ratio,
            bd.ratio,
        );
    }
    println!("\npaper claim: with K-block-diagonal factors the (curvature+inversion)/bubble");
    println!("ratio stays near the unscaled value, so 'a similar work assignment can be used';");
    println!("with full factors the inversion work grows cubically and stops fitting.");
}
