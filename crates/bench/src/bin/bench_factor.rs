//! Single-core factorization benchmark: naive (scalar reference loops) vs
//! blocked (panel Cholesky + multi-RHS TRSM + identity-RHS fast path)
//! `cholesky_inverse` GFLOP/s at K-FAC factor sizes, including the
//! BERT-Base pair 769 (`d_model + 1`) and 3073 (`d_ff + 1`). Writes
//! `BENCH_factor.json` at the repo root.
//!
//! The pool is pinned to one lane (`set_max_threads(1)`) so the speedup
//! column isolates the blocking/SIMD win from thread scaling; both paths
//! produce bitwise-identical inverses (enforced by
//! `crates/tensor/tests/factor_equivalence.rs`).
//!
//! The nominal FLOP count is `2n³` for the full inversion (factorization
//! `n³/3` + triangular solves; the identity fast path does less real work,
//! which shows up as extra throughput — we keep the naive count for both
//! columns so the ratio is a wall-clock speedup).

use pipefisher_tensor::{cholesky_inverse_into, cholesky_inverse_naive_into, kernel, par, Matrix};
use std::time::Instant;

const REPS: usize = 3;

/// Factor sizes: one inside-a-panel, the BERT-Base K-FAC pair, and a
/// power-of-two multi-panel size.
const SIZES: [usize; 4] = [256, 769, 1024, 3073];

fn rand_spd(n: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let mut m = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    // Symmetrize, shrink off-diagonals, and dominate the diagonal — SPD
    // without an O(n³) Gram product at n = 3073.
    let shrink = 1.0 / n as f64;
    for i in 0..n {
        for j in 0..i {
            let v = 0.5 * (m[(i, j)] + m[(j, i)]) * shrink;
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    for i in 0..n {
        m[(i, i)] = 2.0 + m[(i, i)].abs();
    }
    m
}

/// Best-of-`reps` seconds for one inversion path on `a`.
fn measure(
    a: &Matrix,
    out: &mut Matrix,
    reps: usize,
    warmup: bool,
    f: impl Fn(&Matrix, &mut Matrix),
) -> f64 {
    if warmup {
        f(a, out); // primes the workspace arena
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f(a, out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    par::set_max_threads(1);
    let simd = kernel::simd_name();
    let mut rows = Vec::new();
    for &n in &SIZES {
        let a = rand_spd(n, n as u64);
        let mut out = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);
        // The naive path at n ≥ 1024 is minutes-slow; a single unwarmed rep
        // is representative (it is pure scalar loops with no arena warmup
        // sensitivity) and keeps the benchmark runnable in CI.
        let (naive_reps, naive_warm) = if n >= 1024 { (1, false) } else { (REPS, true) };
        let t_naive = measure(&a, &mut out, naive_reps, naive_warm, |a, o| {
            cholesky_inverse_naive_into(a, o).expect("spd")
        });
        let t_blocked = measure(&a, &mut out, REPS, true, |a, o| {
            cholesky_inverse_into(a, o).expect("spd")
        });
        let naive_gflops = flops / t_naive / 1e9;
        let blocked_gflops = flops / t_blocked / 1e9;
        let speedup = t_naive / t_blocked.max(1e-12);
        println!(
            "invert n={n:5}: naive {naive_gflops:6.2} GFLOP/s ({t_naive:8.3}s), \
             blocked {blocked_gflops:6.2} GFLOP/s ({t_blocked:8.3}s) — {speedup:.2}x"
        );
        rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"naive_gflops\": {:.3}, ",
                "\"blocked_gflops\": {:.3}, \"speedup\": {:.3}}}"
            ),
            n, naive_gflops, blocked_gflops, speedup
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"factor\",\n",
            "  \"host_cores\": {},\n",
            "  \"simd\": \"{}\",\n",
            "  \"reps\": {},\n",
            "  \"note\": \"single-core (pool pinned to 1 lane) cholesky_inverse GFLOP/s at a ",
            "nominal 2n^3 FLOPs for both columns; naive is the scalar reference ",
            "(cholesky_inverse_naive_into), blocked the panel-Cholesky + TRSM engine under the ",
            "runtime-dispatched kernel, bitwise-identical by construction; naive at n>=1024 is ",
            "timed with a single rep; 769/3073 are the BERT-Base K-FAC factor sizes ",
            "(d_model+1, d_ff+1).\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores,
        simd,
        REPS,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_factor.json");
    std::fs::write(path, &json).expect("write BENCH_factor.json");
    println!("wrote {path}");
}
