//! Single-core GEMM micro-kernel benchmark: GFLOP/s for every GEMM
//! flavour, scalar fallback vs the dispatched SIMD kernel, on square and
//! BERT-shaped sizes. Writes `BENCH_gemm.json` at the repo root.
//!
//! The pool is pinned to one lane (`set_max_threads(1)`) so the numbers
//! isolate micro-kernel throughput from thread scaling — on multi-core
//! hosts the kernels additionally scale through the worker pool, and both
//! paths produce bitwise-identical outputs (the SIMD default vectorizes
//! across output columns with separate mul+add; see
//! `crates/tensor/src/kernel/`).

use pipefisher_tensor::kernel::{self, KernelKind};
use pipefisher_tensor::{par, Matrix};
use std::time::Instant;

const REPS: usize = 3;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

/// One benchmark case: a flavour at a shape, with its FLOP count.
struct Case {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    flops: f64,
    run: Box<dyn Fn(&mut Matrix)>,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    // C = A·B on square sizes plus the BERT-base MLP shapes
    // (seq 128 x d_model 768 x d_ff 3072 and its reverse).
    for (m, k, n) in [
        (256, 256, 256),
        (512, 512, 512),
        (1024, 1024, 1024),
        (128, 768, 3072),
        (128, 3072, 768),
    ] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        out.push(Case {
            name: "matmul",
            m,
            k,
            n,
            flops: 2.0 * (m * k * n) as f64,
            run: Box::new(move |o| a.matmul_into(&b, o)),
        });
    }
    // C = Aᵀ·B: the weight-gradient shape (tokens 128 contracting).
    for (m, k, n) in [(512, 512, 512), (768, 128, 3072)] {
        let a = rand_matrix(k, m, 3);
        let b = rand_matrix(k, n, 4);
        out.push(Case {
            name: "matmul_tn",
            m,
            k,
            n,
            flops: 2.0 * (m * k * n) as f64,
            run: Box::new(move |o| a.matmul_tn_into(&b, o)),
        });
    }
    // C = A·Bᵀ: the input-gradient backprop shape.
    for (m, k, n) in [(512, 512, 512), (128, 3072, 768)] {
        let a = rand_matrix(m, k, 5);
        let b = rand_matrix(n, k, 6);
        out.push(Case {
            name: "matmul_nt",
            m,
            k,
            n,
            flops: 2.0 * (m * k * n) as f64,
            run: Box::new(move |o| a.matmul_nt_into(&b, o)),
        });
    }
    // C = UᵀU: the K-FAC Kronecker-factor shape (upper triangle computed,
    // mirror copied — FLOPs count the triangle only).
    for (k, m) in [(512, 768), (128, 3072)] {
        let u = rand_matrix(k, m, 7);
        out.push(Case {
            name: "gram",
            m,
            k,
            n: m,
            flops: (k * m * (m + 1)) as f64,
            run: Box::new(move |o| u.gram_into(o)),
        });
    }
    // y = A·v (memory-bound; included for dispatch coverage).
    {
        let (m, k) = (2048, 2048);
        let a = rand_matrix(m, k, 8);
        let v: Vec<f64> = (0..k).map(|i| (i as f64).sin()).collect();
        out.push(Case {
            name: "matvec",
            m,
            k,
            n: 1,
            flops: 2.0 * (m * k) as f64,
            run: Box::new(move |o| {
                o.reset_shape(m, 1);
                a.matvec_into(&v, o.as_mut_slice());
            }),
        });
    }
    out
}

/// Best-of-`REPS` GFLOP/s for one case under the current kernel setting.
fn measure(case: &Case) -> f64 {
    let mut out = Matrix::zeros(case.m, case.n);
    (case.run)(&mut out); // warmup (also primes the workspace arena)
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        (case.run)(&mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    case.flops / best / 1e9
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    par::set_max_threads(1);
    let simd = kernel::simd_name();
    let mut rows = Vec::new();
    for case in cases() {
        kernel::set_kernel(Some(KernelKind::Scalar));
        let scalar = measure(&case);
        kernel::set_kernel(Some(KernelKind::Simd));
        let dispatched = measure(&case);
        kernel::set_kernel(None);
        let speedup = dispatched / scalar.max(1e-12);
        println!(
            "{:10} {:4}x{:4}x{:4}: scalar {scalar:6.2} GFLOP/s, {simd} {dispatched:6.2} GFLOP/s ({speedup:.2}x)",
            case.name, case.m, case.k, case.n
        );
        rows.push(format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, ",
                "\"scalar_gflops\": {:.3}, \"simd_gflops\": {:.3}, \"speedup\": {:.3}}}"
            ),
            case.name, case.m, case.k, case.n, scalar, dispatched, speedup
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gemm\",\n",
            "  \"host_cores\": {},\n",
            "  \"simd\": \"{}\",\n",
            "  \"reps\": {},\n",
            "  \"note\": \"single-core (pool pinned to 1 lane) best-of-{} GFLOP/s per kernel; ",
            "scalar is the portable micro-kernel (PIPEFISHER_KERNEL=scalar), simd the ",
            "runtime-dispatched default, bitwise-identical by construction; on hosts without ",
            "AVX2/AVX-512/NEON both columns run the scalar kernel and speedup ~1x is expected; ",
            "gram FLOPs count the computed upper triangle only.\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores,
        simd,
        REPS,
        REPS,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(path, &json).expect("write BENCH_gemm.json");
    println!("wrote {path}");
}
