//! Wall-clock pipeline-executor benchmark: time/step and bubble occupancy
//! with and without PipeFisher bubble filling, for D ∈ {1, 2, 4} stages.
//!
//! The comparison the paper's Figure 9 makes on GPUs, at reproduction
//! scale on CPU threads: the same K-FAC refresh work either runs *inside*
//! the pipeline's bubbles (`fill_bubbles = true`) or serialized after each
//! device's pipeline work (`fill_bubbles = false`, the "K-FAC on pipeline"
//! baseline). Writes `BENCH_pipeline.json` at the repo root.
//!
//! On a host with fewer cores than stages the worker threads time-share a
//! core, so bubble filling cannot shorten the wall clock (all compute is
//! serialized anyway) — expect ≈1× there; the JSON records `host_cores` so
//! that reading is self-explaining. The bubble-occupancy numbers are
//! meaningful regardless: they measure how much otherwise-idle wait time
//! the scheduler's placements actually absorbed.

use pipefisher_lm::{BatchSampler, OptimizerChoice, PipelineOptions, SyntheticLanguage, Trainer};
use pipefisher_nn::{BertConfig, BertForPreTraining};
use pipefisher_optim::{KfacConfig, LrSchedule};
use pipefisher_pipeline::PipelineScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const STEPS: usize = 6;
const N_MICRO: usize = 4;
const REPS: usize = 5;

fn choice() -> OptimizerChoice {
    OptimizerChoice::Kfac {
        weight_decay: 0.01,
        kfac: KfacConfig {
            damping: 3e-2,
            ema_decay: 0.5,
            // Refresh every step so every step has bubble work to place —
            // the regime PipeFisher targets (§1: "refresh... every step").
            curvature_interval: 1,
            inversion_interval: 1,
            kl_clip: Some(1e-2),
            factor_block_size: None,
        },
    }
}

struct Leg {
    ms_per_step: f64,
    occupancy: f64,
    tail_aux_ms: f64,
}

/// Best-of-`REPS` wall clock for one configuration; occupancy from the
/// fastest rep (aux ms / (aux + idle) ms across all workers and steps).
fn run_leg(d: usize, scheme: PipelineScheme, fill: bool) -> Leg {
    let mut best: Option<Leg> = None;
    for rep in 0..REPS {
        let lang = SyntheticLanguage::new(52, 2, 4, 11);
        let sampler = BatchSampler::new(lang, 16);
        let mut trainer = Trainer::new(sampler, 8, LrSchedule::Constant(5e-3), 7 + rep as u64);
        let mut rng = StdRng::seed_from_u64(7);
        let model = BertForPreTraining::new(BertConfig::mini(52, 16), 0.0, &mut rng);
        let mut opts = PipelineOptions::new(scheme, d, N_MICRO);
        opts.fill_bubbles = fill;
        let t = Instant::now();
        let outcome = trainer
            .run_pipelined(model, &choice(), STEPS, &opts)
            .expect("pipelined run");
        let ms_per_step = t.elapsed().as_secs_f64() * 1e3 / STEPS as f64;
        let busy = outcome.bubble_aux_ms + outcome.bubble_idle_ms;
        let leg = Leg {
            ms_per_step,
            occupancy: if busy > 0.0 {
                outcome.bubble_aux_ms / busy
            } else {
                0.0
            },
            tail_aux_ms: outcome.tail_aux_ms / STEPS as f64,
        };
        if best
            .as_ref()
            .is_none_or(|b| leg.ms_per_step < b.ms_per_step)
        {
            best = Some(leg);
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scheme = PipelineScheme::OneFOneB;
    let mut rows = Vec::new();
    for d in [1usize, 2, 4] {
        let unfilled = run_leg(d, scheme, false);
        let filled = run_leg(d, scheme, true);
        println!(
            "D={d}: unfilled {:.1} ms/step, filled {:.1} ms/step ({:.2}x), \
             bubble occupancy {:.0}%, tail {:.1} ms/step",
            unfilled.ms_per_step,
            filled.ms_per_step,
            unfilled.ms_per_step / filled.ms_per_step.max(1e-9),
            filled.occupancy * 100.0,
            filled.tail_aux_ms,
        );
        rows.push(format!(
            concat!(
                "    {{\"stages\": {}, \"scheme\": \"{}\", ",
                "\"unfilled_ms_per_step\": {:.2}, \"filled_ms_per_step\": {:.2}, ",
                "\"speedup\": {:.3}, \"bubble_occupancy_filled\": {:.3}, ",
                "\"tail_kfac_ms_per_step_filled\": {:.2}}}"
            ),
            d,
            scheme.name(),
            unfilled.ms_per_step,
            filled.ms_per_step,
            unfilled.ms_per_step / filled.ms_per_step.max(1e-9),
            filled.occupancy,
            filled.tail_aux_ms,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline\",\n",
            "  \"workload\": \"mini BERT (4 blocks, d_model 64), K-FAC refresh every step, ",
            "{} steps x {} micro-batches, best of {} reps\",\n",
            "  \"host_cores\": {},\n",
            "  \"note\": \"filled runs K-FAC folds/inversions inside pipeline bubbles; ",
            "unfilled serializes them after each device's pipeline work. With ",
            "host_cores < stages the workers time-share cores, a bubble is not an ",
            "idle core, and speedup ~1x (either side of 1.0) is expected; ",
            "bubble_occupancy still measures how much idle wait the PipeFisher ",
            "placements absorbed.\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        STEPS,
        N_MICRO,
        REPS,
        host_cores,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
