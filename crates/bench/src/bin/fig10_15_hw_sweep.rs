//! Figures 10–15: Chimera throughput and refresh ratio across hardware.
//!
//! For each Table-3 architecture (BERT-Base/Large, T5-Base/Large,
//! OPT-125M/350M), `D ∈ {4, 8, 16, 32}` blocks (one per stage,
//! `N_micro ∈ {D, 2D, 4D}`), and each GPU (P100, V100, RTX3090): modeled
//! throughput (sequences/s) and the (curvature+inversion)-bubble ratio.
//!
//! Paper observations to reproduce: the ratio falls with `B_micro`, falls
//! with `D`, rises with `N_micro`, and is smaller for longer sequence
//! lengths; in most settings it lands in the 2–10 range.

use pipefisher_bench::Setting;
use pipefisher_perfmodel::{model_step, HardwareProfile, TransformerConfig};
use pipefisher_pipeline::PipelineScheme;

fn main() {
    for (idx, arch) in TransformerConfig::all().into_iter().enumerate() {
        println!(
            "=== Figure {}: {} (S={}), Chimera, one block/stage ===",
            10 + idx,
            arch.name,
            arch.seq_len
        );
        println!(
            "{:>8} {:>7} {:>3} {:>7} | {:>10} {:>6} | {:>10} {:>6} | {:>10} {:>6}",
            "hw:",
            "B_micro",
            "D",
            "N_micro",
            "P100 thru",
            "ratio",
            "V100 thru",
            "ratio",
            "3090 thru",
            "ratio"
        );
        for b_micro in [1usize, 4, 16] {
            for d in [4usize, 8, 16, 32] {
                for n_mult in [1usize, 2, 4] {
                    let n_micro = d * n_mult;
                    let mut row = format!("{:>8} {:>7} {:>3} {:>7} |", "", b_micro, d, n_micro);
                    for hw in HardwareProfile::all() {
                        let s = Setting {
                            arch: arch.clone(),
                            hw,
                            scheme: PipelineScheme::Chimera,
                            d,
                            n_micro,
                            b_micro,
                            blocks_per_stage: 1,
                            w: 1,
                            recompute: false,
                        };
                        let m = model_step(&s.step_model_input());
                        row.push_str(&format!(" {:>10.1} {:>6.2} |", m.throughput, m.ratio));
                    }
                    println!("{row}");
                }
            }
        }
        println!();
    }
    println!("paper shapes: ratio falls with B_micro, D, S; rises with N_micro; mostly 2-10");
    println!("except tiny B_micro with N_micro = 4D.");
}
