//! Figure 1: schematic GPipe schedule with and without PipeFisher.
//!
//! Renders two pipeline steps of GPipe (4 stages, 4 micro-batches, 4
//! devices) as ASCII timelines: the baseline (top, bubbles as `·`) and the
//! PipeFisher-augmented static schedule (bottom, bubbles filled with
//! curvature `C` and inversion `I` work, precondition `P` at step ends).

use pipefisher_bench::{pct, Setting};
use pipefisher_core::assign;
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::{simulate, Timeline};

fn main() {
    let setting = Setting {
        blocks_per_stage: 1,
        ..Setting::fig3(PipelineScheme::GPipe, 1)
    };
    let costs = setting.costs();
    println!("=== Figure 1: GPipe w/ 4 stages, 4 micro-batches, 4 devices ===\n");

    // (a) Baseline GPipe, two steps back to back.
    let graph = PipelineScheme::GPipe.build(4, 4);
    let one_step = simulate(&graph, &costs).expect("gpipe simulates");
    let t_step = one_step.makespan();
    let mut two_steps = Timeline::new(4);
    for step in 0..2 {
        for iv in one_step.intervals() {
            let mut iv = iv.clone();
            iv.start += step as f64 * t_step;
            iv.end += step as f64 * t_step;
            two_steps.push(iv);
        }
    }
    println!("(a) GPipe (two steps, F=forward, B=backward, ·=bubble):");
    print!("{}", two_steps.render_ascii(112));
    println!("    GPU utilization: {}\n", pct(two_steps.utilization()));

    // (b) PipeFisher on the same pipeline.
    let schedule = assign(&setting.assign_config()).expect("assignment fits");
    println!(
        "(b) PipeFisher (C=curvature, I=inversion, P=precondition), refresh every {} step(s):",
        schedule.refresh_steps
    );
    print!("{}", schedule.augmented_timeline.render_ascii(112));
    println!(
        "    GPU utilization: {} (baseline {})",
        pct(schedule.utilization),
        pct(schedule.utilization_baseline)
    );
    println!(
        "    step time: {:.1} ms baseline -> {:.1} ms with precondition (+{:.1}%)",
        schedule.t_step_baseline * 1e3,
        schedule.t_step * 1e3,
        (schedule.t_step / schedule.t_step_baseline - 1.0) * 100.0
    );
}
