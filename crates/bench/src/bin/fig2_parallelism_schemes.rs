//! Figure 2 (background schematic): a gradient step of SGD vs K-FAC under
//! no parallelism, data parallelism, and pipeline parallelism.
//!
//! Rendered as mini ASCII timelines with unit costs for a two-layer model,
//! mirroring the paper's schematic: K-FAC adds curvature (C), inversion (I),
//! and precondition (P) around the forward/backward work; data-parallel
//! K-FAC adds factor synchronization (S); pipeline-parallel K-FAC —
//! PipeFisher — moves C and I into the bubbles.

use pipefisher_core::{assign, PipeFisherConfig};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_pipeline::WorkKind;
use pipefisher_sim::{simulate, Interval, KindCost, Timeline, UniformCost};

fn costs() -> KindCost {
    KindCost {
        t_f: 1.0,
        t_b: 2.0,
        t_recompute: 0.0,
        t_curv_a: 0.5,
        t_curv_b: 0.5,
        t_inv_a: 1.0,
        t_inv_b: 1.0,
        t_prec: 0.5,
        t_sync_grad: 0.5,
        t_sync_curv: 0.5,
    }
}

fn seq_timeline(ops: &[(WorkKind, f64)]) -> Timeline {
    let mut tl = Timeline::new(1);
    let mut t = 0.0;
    for &(kind, dur) in ops {
        tl.push(Interval {
            device: 0,
            start: t,
            end: t + dur,
            kind,
            stage: 0,
            micro_batch: None,
        });
        t += dur;
    }
    tl
}

fn main() {
    use WorkKind::*;
    println!("=== Figure 2 (schematic): one optimization step per scheme ===");
    println!("F=forward B=backward C=curvature I=inversion P=precondition S=sync\n");

    println!("(i,a) no parallelism, SGD:");
    print!(
        "{}",
        seq_timeline(&[(Forward, 2.0), (Backward, 4.0)]).render_ascii(80)
    );
    println!("(i,b) no parallelism, K-FAC (curvature+inversion amortized over many steps):");
    print!(
        "{}",
        seq_timeline(&[
            (Forward, 2.0),
            (Curvature(pipefisher_pipeline::Factor::A), 1.0),
            (Backward, 4.0),
            (Curvature(pipefisher_pipeline::Factor::B), 1.0),
            (Inversion(pipefisher_pipeline::Factor::A), 2.0),
            (Precondition, 1.0),
        ])
        .render_ascii(80)
    );

    println!("\n(ii) data parallelism (2 devices, each a micro-batch; allreduce at the end):");
    let mut tl = Timeline::new(2);
    for dev in 0..2 {
        for (kind, s, e) in [
            (Forward, 0.0, 2.0),
            (Curvature(pipefisher_pipeline::Factor::A), 2.0, 3.0),
            (Backward, 3.0, 7.0),
            (SyncGrad, 7.0, 8.0),
            (SyncCurvature, 8.0, 9.0),
            // Inversion parallelism: each device inverts *different layers*.
            (Inversion(pipefisher_pipeline::Factor::A), 9.0, 11.0),
            (Precondition, 11.0, 12.0),
        ] {
            tl.push(Interval {
                device: dev,
                start: s,
                end: e,
                kind,
                stage: 0,
                micro_batch: None,
            });
        }
    }
    print!("{}", tl.render_ascii(80));

    println!("\n(iii,a) pipeline parallelism (2 stages, 2 micro-batches), SGD:");
    let g = PipelineScheme::GPipe.build(2, 2);
    let base = simulate(&g, &UniformCost::new(1.0, 2.0)).unwrap();
    print!("{}", base.render_ascii(80));
    println!(
        "    bubbles: {:.0}% of the step",
        (1.0 - base.utilization()) * 100.0
    );

    println!("\n(iii,b) pipeline-parallel K-FAC — PipeFisher fills the bubbles:");
    let s = assign(&PipeFisherConfig {
        scheme: PipelineScheme::GPipe,
        d: 2,
        n_micro: 2,
        w: 1,
        costs: costs(),
        max_steps: 16,
        chimera_pair_parallelism: false,
        recompute: false,
        granularity: 1,
    })
    .unwrap();
    print!("{}", s.augmented_timeline.render_ascii(80));
    println!(
        "    utilization {:.0}% -> {:.0}%, curvature+inversion in bubbles, P at step end",
        s.utilization_baseline * 100.0,
        s.steady_utilization * 100.0
    );
}
