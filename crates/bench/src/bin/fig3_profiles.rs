//! Figure 3: profiled GPipe and 1F1B steps, Adam vs PipeFisher, BERT-Base.
//!
//! Paper setting: BERT-Base (L=12), 4 stages (3 blocks/stage), N_micro=4,
//! B_micro=32, S=128, NVIDIA P100s. Three rows per scheme:
//!
//! * baseline first-order optimizer (Adam) — top row of the paper figure,
//! * PipeFisher without data/inversion parallelism (4 GPUs) — middle,
//! * PipeFisher with data+inversion parallelism (8 GPUs, W=2) — bottom.
//!
//! Paper shape targets: baseline utilization ≈ 42 % (measured with real
//! kernel gaps; the pure schedule model gives 57 %), PipeFisher ≈ 89 %, and
//! curvature+inverses refreshed within ~2 steps.
//!
//! Besides the console report, each W=1 filled timeline is exported as a
//! Chrome/Perfetto trace to `results/fig3_<scheme>.trace.json` — the
//! reproduction's stand-in for the paper's Nsight Systems screenshots.

use pipefisher_bench::{fmt_ms, pct, Setting};
use pipefisher_core::assign;
use pipefisher_pipeline::PipelineScheme;

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    println!("=== Figure 3: BERT-Base, D=4 (3 blocks/stage), N_micro=4, B_micro=32, P100 ===\n");
    for scheme in [PipelineScheme::GPipe, PipelineScheme::OneFOneB] {
        println!("--- {} ---", scheme.name());
        for (label, w) in [
            ("PipeFisher (4 GPUs, W=1)", 1),
            ("PipeFisher + data/inv parallel (8 GPUs, W=2)", 2),
        ] {
            let setting = Setting::fig3(scheme, w);
            let schedule = assign(&setting.assign_config()).expect("assignment fits");
            if w == 1 {
                println!(
                    "  baseline (Adam):    utilization {:>6}   step {:>9}",
                    pct(schedule.utilization_baseline),
                    fmt_ms(schedule.t_step_baseline),
                );
            }
            println!(
                "  {label}:\n    utilization {:>6} steady ({} cold-start)   step {:>9}   refresh {:.1} step(s) steady ({} cold)   overhead {:+.1}%",
                pct(schedule.steady_utilization),
                pct(schedule.utilization),
                fmt_ms(schedule.t_step),
                schedule.steady_refresh_steps,
                schedule.refresh_steps,
                (schedule.t_step / schedule.t_step_baseline - 1.0) * 100.0,
            );
            if w == 1 {
                println!("\n  timeline over the refresh window (W=1):");
                print!("{}", schedule.augmented_timeline.render_ascii(110));
                // Timelines here are in seconds; trace timestamps are µs.
                let trace = serde_json::to_string_pretty(
                    &schedule.augmented_timeline.chrome_trace_json(1e6),
                )
                .expect("json");
                let path = format!("results/fig3_{}.trace.json", scheme.name());
                std::fs::write(&path, trace).expect("write trace");
                println!("  wrote {path} (open in ui.perfetto.dev)");
            }
        }
        println!();
    }
    println!("paper targets: baseline ~42% (w/ kernel gaps; pure schedule shape 57%),");
    println!("               PipeFisher ~89%, refresh within 2 steps.");
}
