//! Figure 4: profiled Chimera steps, Adam vs PipeFisher, BERT-Large.
//!
//! Paper setting: BERT-Large (L=24), Chimera with 8 stages (3 blocks/
//! stage), 8 GPUs, N_micro=8, B_micro=32, S=128, P100s. Each GPU hosts two
//! stages (down + up pipelines); gradient sync runs between the paired
//! hosts of each stage, and PipeFisher splits the inversion work between
//! them (data + inversion parallelism).
//!
//! Paper shape targets: utilization 59.8 % → 97.6 %; refresh in 4 steps for
//! the outermost stages and 2 for the rest; per-step overhead ≈ 6.5 %.

use pipefisher_bench::{fmt_ms, pct, Setting};
use pipefisher_core::assign;
use pipefisher_pipeline::WorkKind;

fn main() {
    println!(
        "=== Figure 4: BERT-Large, Chimera D=8 (3 blocks/stage), 8 GPUs, B_micro=32, P100 ===\n"
    );
    let setting = Setting::fig4();
    let schedule = assign(&setting.assign_config()).expect("assignment fits");

    println!(
        "baseline (Adam):  utilization {:>6}   step {:>9}",
        pct(schedule.utilization_baseline),
        fmt_ms(schedule.t_step_baseline),
    );
    println!(
        "PipeFisher:       utilization {:>6} (steady state; {} over one cold-start window)",
        pct(schedule.steady_utilization),
        pct(schedule.utilization),
    );
    println!(
        "                  step {:>9}   overhead {:+.1}%",
        fmt_ms(schedule.t_step),
        (schedule.t_step / schedule.t_step_baseline - 1.0) * 100.0,
    );
    println!(
        "refresh interval: {:.1} step(s) steady state ({} from cold start)",
        schedule.steady_refresh_steps, schedule.refresh_steps
    );

    // Per-device refresh: last K-FAC placement end per device.
    println!("\nper-device refresh interval (steps to finish curvature+inversion):");
    for dev in 0..8 {
        let last = schedule
            .placements
            .iter()
            .filter(|p| p.device == dev && matches!(p.kind, WorkKind::Inversion(_)))
            .map(|p| p.end)
            .fold(0.0f64, f64::max);
        let steps = (last / schedule.t_step).ceil().max(1.0) as usize;
        println!("  GPU {dev}: {steps} step(s)");
    }

    println!("\ntimeline over the refresh window:");
    print!("{}", schedule.augmented_timeline.render_ascii(110));
    println!("\npaper targets: 59.8% -> 97.6% utilization; refresh 2-4 steps; overhead ~6.5%.");
}
