//! Figure 5: performance model for Chimera with BERT-Base blocks.
//!
//! One BERT-Base block per pipeline stage, `N_micro = D`, NVIDIA P100.
//! For every `(B_micro, D)` combination the paper plots:
//!
//! * (a) top: time per step breakdown — `T_pipe + T_prec` (with/without
//!   activation recomputation `R`), `T_bubble`, and
//!   `T_kfac⁺ − T_prec = N_micro·T_curv + T_inv`;
//! * (a) bottom: memory breakdown — `N·M_act + M_err^peak + M_θ + M_kfac⁺`;
//! * (b) top: throughput (sequences/s) of the vanilla pipeline vs
//!   PipeFisher (nearly identical — precondition is small);
//! * (b) bottom: the (curvature+inversion)-bubble ratio.

use pipefisher_bench::Setting;
use pipefisher_perfmodel::{model_step, HardwareProfile, TransformerConfig};
use pipefisher_pipeline::PipelineScheme;

fn main() {
    let arch = TransformerConfig::bert_base();
    let hw = HardwareProfile::p100();
    println!("=== Figure 5: Chimera perf model, one BERT-Base block/stage, N_micro=D, P100 ===\n");
    println!(
        "{:>7} {:>3} | {:>10} {:>10} {:>10} {:>12} | {:>9} {:>9} | {:>10} {:>10} | {:>6}",
        "B_micro",
        "D",
        "Tpipe+Tprec",
        "Tbubble",
        "+R bubble",
        "Ncurv+Tinv",
        "thru base",
        "thru PF",
        "mem (GB)",
        "mem+R(GB)",
        "ratio"
    );
    for b_micro in [1usize, 2, 4, 8, 16, 32] {
        for d in [4usize, 8, 16, 32] {
            let mk = |recompute: bool| {
                let s = Setting {
                    arch: arch.clone(),
                    hw: hw.clone(),
                    scheme: PipelineScheme::Chimera,
                    d,
                    n_micro: d,
                    b_micro,
                    blocks_per_stage: 1,
                    w: 1,
                    recompute,
                };
                model_step(&s.step_model_input())
            };
            let m = mk(false);
            let mr = mk(true);
            println!(
                "{:>7} {:>3} | {:>10.1} {:>10.1} {:>10.1} {:>12.1} | {:>9.1} {:>9.1} | {:>10.2} {:>10.2} | {:>6.2}",
                b_micro,
                d,
                (m.t_pipe + m.t_prec) * 1e3,
                m.t_bubble * 1e3,
                mr.t_bubble * 1e3,
                (m.t_curv_total + m.t_inv_total) * 1e3,
                m.throughput_baseline,
                m.throughput,
                (m.m_pipe + m.m_kfac_extra) / 1e9,
                (mr.m_pipe + mr.m_kfac_extra) / 1e9,
                m.ratio,
            );
        }
    }
    println!("\n(all times ms; ratio = (N_micro*T_curv + T_inv + T_sync_curv)/T_bubble,");
    println!(" i.e. pipeline steps per curvature refresh — the paper's Fig. 5(b) bottom row)");
    println!("paper shapes: throughput base ≈ PF; ratio falls with B_micro and D; memory grows with N*B.");
}
