//! Figure 6 (left): pretraining convergence, NVLAMB vs K-FAC.
//!
//! The paper pretrains BERT-Base on Wikipedia (mini-batch 8,192); K-FAC —
//! with a shorter warmup enabled by its better conditioning — reaches
//! NVLAMB's final loss in 42 % of the steps. That scale is far beyond CPU,
//! so this reproduction runs the same *comparison* scaled down: a tiny BERT
//! on the synthetic masked-LM + NSP language (see `pipefisher-lm`), with
//! both optimizers sharing the base learning rate and K-FAC using the
//! shorter warmup, exactly as in Appendix B.2.
//!
//! The shape target is the step *ratio*: K-FAC reaches the baseline's final
//! loss in well under 100 % of the baseline's steps. Wall-clock mapping to
//! the 256-GPU cluster is done by `fig6_time_mapping`.

use pipefisher_bench::{fmt_minutes, pct, Setting};
use pipefisher_core::assign;
use pipefisher_lm::{BatchSampler, OptimizerChoice, SyntheticLanguage, Trainer};
use pipefisher_nn::{BertConfig, BertForPreTraining};
use pipefisher_optim::{KfacConfig, LrSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

const STEPS: usize = 900;
const WARMUP_LAMB: usize = 250;
const WARMUP_KFAC: usize = 75; // same 600/2000 ratio as the paper
const BASE_LR: f64 = 1.2e-2;
const VOCAB: usize = 68;
const SEQ: usize = 32;
const BATCH: usize = 32;
const SMOOTH: usize = 21;

fn make(seed: u64) -> (Trainer, BertForPreTraining, LrSchedule, LrSchedule) {
    let lang = SyntheticLanguage::new(VOCAB, 2, 4, 2024);
    let sampler = BatchSampler::new(lang, SEQ);
    let lamb_sched = LrSchedule::PolyWithWarmup {
        base_lr: BASE_LR,
        warmup_steps: WARMUP_LAMB,
        total_steps: STEPS,
        power: 0.5,
    };
    let kfac_sched = LrSchedule::PolyWithWarmup {
        base_lr: BASE_LR,
        warmup_steps: WARMUP_KFAC,
        total_steps: STEPS,
        power: 0.5,
    };
    let trainer = Trainer::new(sampler, BATCH, lamb_sched.clone(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = BertForPreTraining::new(BertConfig::tiny(VOCAB, SEQ), 0.0, &mut rng);
    (trainer, model, lamb_sched, kfac_sched)
}

fn main() {
    println!("=== Figure 6 (left, scaled down): tiny-BERT pretraining on the synthetic LM ===");
    println!(
        "    ({STEPS} steps, batch {BATCH}, seq {SEQ}, vocab {VOCAB}; warmup {WARMUP_LAMB} vs {WARMUP_KFAC} steps)\n"
    );

    // NVLAMB baseline.
    let (mut trainer, mut model, _lamb_sched, kfac_sched) = make(42);
    let lamb_run = trainer.run(
        &mut model,
        &OptimizerChoice::Lamb { weight_decay: 0.01 },
        STEPS,
    );

    // K-FAC with the PipeFisher-achievable refresh interval.
    let fig6 = Setting::fig6();
    let schedule = assign(&fig6.assign_config()).expect("fig6 assignment fits");
    let refresh = schedule.steady_refresh_steps.ceil().max(1.0) as usize;
    let (mut trainer, mut model, _, _) = make(42);
    let mut trainer2 = Trainer::new(trainer_sampler_clone(&mut trainer), BATCH, kfac_sched, 42);
    let kfac_run = trainer2.run(
        &mut model,
        &OptimizerChoice::Kfac {
            weight_decay: 0.01,
            kfac: KfacConfig {
                damping: 3e-2,
                ema_decay: 0.5,
                curvature_interval: refresh,
                inversion_interval: refresh,
                kl_clip: Some(1e-2),
                factor_block_size: None,
            },
        },
        STEPS,
    );

    // Report curves every 20 steps.
    let ls = lamb_run.smoothed(SMOOTH);
    let ks = kfac_run.smoothed(SMOOTH);
    println!("{:>6} {:>10} {:>10}", "step", "NVLAMB", "K-FAC");
    for i in (0..STEPS).step_by(20) {
        println!("{:>6} {:>10.4} {:>10.4}", i, ls[i], ks[i]);
    }

    let target = lamb_run.final_loss(SMOOTH);
    let kfac_steps = kfac_run.steps_to_reach(target, SMOOTH);
    println!("\nNVLAMB final (smoothed) loss: {target:.4} at step {STEPS}");
    match kfac_steps {
        Some(s) => {
            let ratio = s as f64 / STEPS as f64;
            println!("K-FAC reaches it at step {s} ({})", pct(ratio));
            println!("paper: 2,961 / 7,038 steps (42.0%)");
            // Wall-clock mapping with the simulated 256-GPU step times.
            let t_lamb = schedule.t_step_baseline * STEPS as f64;
            let t_kfac = schedule.t_step * s as f64;
            println!(
                "\nwall-clock mapping (time/step from the 256-GPU Chimera simulation):\n  NVLAMB {} vs K-FAC {} -> {} (paper: 48.7%)",
                fmt_minutes(t_lamb),
                fmt_minutes(t_kfac),
                pct(t_kfac / t_lamb)
            );
        }
        None => println!("K-FAC did not reach the target within {STEPS} steps"),
    }
    println!("\n(K-FAC curvature refreshed every {refresh} steps — the interval the PipeFisher");
    println!(" bubble schedule achieves for this pipeline, vs ~100 in prior distributed K-FAC.)");
}

/// The `Trainer` owns its sampler; rebuild an identical one so both runs see
/// the same data distribution (deterministic construction).
fn trainer_sampler_clone(_t: &mut Trainer) -> BatchSampler {
    BatchSampler::new(SyntheticLanguage::new(VOCAB, 2, 4, 2024), SEQ)
}
