//! Figure 6 (right) time axis: BERT-Base Phase-1 wall-clock mapping.
//!
//! The paper runs NVLAMB with Chimera and K-FAC with Chimera+PipeFisher on
//! 256 P100 GPUs (D=4 stages × W=64 replicas, N_micro=4, B_micro=32 →
//! mini-batch 8,192), then maps the loss-vs-step curves onto wall-clock
//! using the measured time per step. NVLAMB needs 7,038 steps = 99.4 min;
//! K-FAC reaches NVLAMB's final loss (3.41) at 2,961 steps = 48.4 min
//! (48.7 %), while utilization improves from 75.9 % to 93.2 %.

use pipefisher_bench::{fmt_minutes, fmt_ms, pct, Setting};
use pipefisher_core::assign;

const NVLAMB_STEPS: usize = 7_038;
/// Steps for K-FAC to reach NVLAMB's final loss, from the paper's Fig. 6
/// extraction (42.0% of 7,038). The scaled-down training reproduction of
/// this ratio is `fig6_convergence`.
const KFAC_STEPS_TO_TARGET: usize = 2_961;

fn main() {
    println!("=== Figure 6 (right): BERT-Base Phase 1 on 256 P100s (Chimera, D=4, W=64) ===\n");
    let setting = Setting::fig6();
    let schedule = assign(&setting.assign_config()).expect("assignment fits");

    println!(
        "utilization: {} (NVLAMB/Chimera) -> {} (K-FAC/PipeFisher)   [paper: 75.9% -> 93.2%]",
        pct(schedule.utilization_baseline),
        pct(schedule.steady_utilization)
    );
    println!(
        "time/step:   {} -> {} ({:+.1}%)",
        fmt_ms(schedule.t_step_baseline),
        fmt_ms(schedule.t_step),
        (schedule.t_step / schedule.t_step_baseline - 1.0) * 100.0
    );
    println!(
        "curvature refresh: every {:.1} steps steady-state   [paper: every 5-10 steps]",
        schedule.steady_refresh_steps
    );

    let nvlamb_time = schedule.t_step_baseline * NVLAMB_STEPS as f64;
    let kfac_time = schedule.t_step * KFAC_STEPS_TO_TARGET as f64;
    println!(
        "\nNVLAMB to final loss:  {:>6} steps = {}",
        NVLAMB_STEPS,
        fmt_minutes(nvlamb_time)
    );
    println!(
        "K-FAC  to same loss:   {:>6} steps = {}",
        KFAC_STEPS_TO_TARGET,
        fmt_minutes(kfac_time)
    );
    println!(
        "time ratio: {}   [paper: 48.7% — 48.4 / 99.4 min]",
        pct(kfac_time / nvlamb_time)
    );
}
