//! Figure 7: learning-rate schedules for BERT-Base Phase 1 pretraining.
//!
//! NVLAMB: linear warmup over 2,000 steps to 6e-3, then polynomial decay
//! `(1 − t/7038)^0.5`. K-FAC: identical but warmup shortened to 600 steps,
//! giving higher learning rates in the early phase (the aggressiveness the
//! improved curvature conditioning allows, §4).

use pipefisher_optim::LrSchedule;

fn main() {
    let nvlamb = LrSchedule::nvlamb_bert_base();
    let kfac = LrSchedule::kfac_bert_base();
    println!("=== Figure 7: LR schedules (BERT-Base Phase 1) ===\n");
    println!("{:>6} {:>12} {:>12}", "step", "NVLAMB", "K-FAC");
    for step in (0..=7_038).step_by(250) {
        println!(
            "{:>6} {:>12.5} {:>12.5}",
            step,
            nvlamb.lr_at(step),
            kfac.lr_at(step)
        );
    }

    // ASCII plot.
    println!("\n  lr (x = 100 steps; N = NVLAMB, K = K-FAC, B = both)");
    let rows = 16;
    let cols = 71;
    let max_lr = 6e-3;
    let mut grid = vec![vec![' '; cols]; rows];
    // The row index varies per schedule, so the grid is addressed (row, col).
    #[allow(clippy::needless_range_loop)]
    for col in 0..cols {
        let step = col * 7_038 / (cols - 1);
        for (ch, sched) in [('N', &nvlamb), ('K', &kfac)] {
            let lr = sched.lr_at(step);
            let row = rows - 1 - ((lr / max_lr) * (rows - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(rows - 1)][col];
            *cell = if *cell == ' ' || *cell == ch { ch } else { 'B' };
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let lr_label = max_lr * (rows - 1 - i) as f64 / (rows - 1) as f64;
        println!(
            "{:>8.4} |{}",
            lr_label * 1e3,
            row.iter().collect::<String>()
        );
    }
    println!("{:>8} +{}", "", "-".repeat(cols));
    println!("{:>8}  0{:>35}{:>35}", "", "3519", "7038");
}
