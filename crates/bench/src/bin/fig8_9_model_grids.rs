//! Figures 8 & 9: performance-model grids for BERT-Base and BERT-Large.
//!
//! For each architecture, both scheme families — GPipe/1F1B (identical
//! critical path with flush) and Chimera — across `(B_micro, D)` with
//! `N_micro = D`, with and without activation recomputation `R`: modeled
//! time per step, memory, throughput, and the (curvature+inversion)/bubble
//! ratio, all on a P100.

use pipefisher_bench::Setting;
use pipefisher_perfmodel::{model_step, HardwareProfile, TransformerConfig};
use pipefisher_pipeline::PipelineScheme;

fn main() {
    let hw = HardwareProfile::p100();
    for arch in [
        TransformerConfig::bert_base(),
        TransformerConfig::bert_large(),
    ] {
        let fig = if arch.name == "BERT-Base" { 8 } else { 9 };
        println!(
            "=== Figure {fig}: performance model, {} (one block/stage, N_micro=D, P100) ===",
            arch.name
        );
        for scheme in [PipelineScheme::GPipe, PipelineScheme::Chimera] {
            let family = if scheme == PipelineScheme::GPipe {
                "GPipe/1F1B (w/ flush)"
            } else {
                "Chimera w/ 2 pipelines"
            };
            println!("\n--- {family} ---");
            println!(
                "{:>7} {:>3} {:>2} | {:>11} {:>10} {:>10} | {:>9} {:>6}",
                "B_micro", "D", "R", "step (ms)", "mem (GB)", "bubble(ms)", "thru", "ratio"
            );
            for b_micro in [1usize, 4, 16, 32] {
                for d in [4usize, 8, 16, 32] {
                    for recompute in [false, true] {
                        let s = Setting {
                            arch: arch.clone(),
                            hw: hw.clone(),
                            scheme,
                            d,
                            n_micro: d,
                            b_micro,
                            blocks_per_stage: 1,
                            w: 1,
                            recompute,
                        };
                        let m = model_step(&s.step_model_input());
                        println!(
                            "{:>7} {:>3} {:>2} | {:>11.1} {:>10.2} {:>10.1} | {:>9.1} {:>6.2}",
                            b_micro,
                            d,
                            if recompute { "R" } else { "-" },
                            m.t_step_pipefisher * 1e3,
                            (m.m_pipe + m.m_kfac_extra) / 1e9,
                            m.t_bubble * 1e3,
                            m.throughput,
                            m.ratio,
                        );
                    }
                }
            }
        }
        println!();
    }
    println!("paper shapes: Chimera throughput > GPipe/1F1B; Chimera ratio > GPipe/1F1B");
    println!(
        "(fewer bubbles -> less room for K-FAC work); R lowers memory + ratio, costs throughput."
    );
}
