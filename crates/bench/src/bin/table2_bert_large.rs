//! Table 2: BERT-Large Phase-1 pretraining time, NVLAMB vs K-FAC.
//!
//! The paper takes the step counts from Pauloski et al. (2022) — NVLAMB
//! needs 7,038 steps, K-FAC 5,000 — and *simulates* the wall-clock by
//! multiplying with the per-step times measured on 8 P100 GPUs with Chimera
//! (the Figure 4 setting): 2,345.6 ms baseline, 2,499.5 ms PipeFisher
//! (+6.5 %), giving 275.1 min vs 208.3 min (75.7 %).
//!
//! This binary reproduces the table with our simulated per-step times.

use pipefisher_bench::{fmt_minutes, fmt_ms, pct, Setting};
use pipefisher_core::assign;

/// Step counts from Pauloski et al. (2022), as used by the paper.
const NVLAMB_STEPS: usize = 7_038;
const KFAC_STEPS: usize = 5_000;
const PHASE2_STEPS: usize = 1_563;

fn main() {
    println!("=== Table 2: BERT-Large Phase 1 (mini-batch 64K), simulated wall-clock ===\n");
    let setting = Setting::fig4();
    let schedule = assign(&setting.assign_config()).expect("assignment fits");

    let t_nvlamb = schedule.t_step_baseline;
    let t_kfac = schedule.t_step;
    let total_nvlamb = t_nvlamb * NVLAMB_STEPS as f64;
    let total_kfac = t_kfac * KFAC_STEPS as f64;

    println!(
        "{:<10} {:<22} {:>7} {:>12} {:>11} {:>9} {:>7}",
        "Optimizer", "Pipeline scheme", "Steps", "Time/step", "Time", "Ph2 steps", "F1"
    );
    println!(
        "{:<10} {:<22} {:>7} {:>12} {:>11} {:>9} {:>7}",
        "NVLAMB",
        "Chimera",
        NVLAMB_STEPS,
        fmt_ms(t_nvlamb),
        fmt_minutes(total_nvlamb),
        PHASE2_STEPS,
        "90.1%",
    );
    println!(
        "{:<10} {:<22} {:>7} {:>12} {:>11} {:>9} {:>7}",
        "K-FAC",
        "Chimera w/ PipeFisher",
        KFAC_STEPS,
        fmt_ms(t_kfac),
        fmt_minutes(total_kfac),
        PHASE2_STEPS,
        "90.15%",
    );
    println!(
        "\ntime ratio K-FAC/NVLAMB: {} (paper: 75.7% — 208.3 / 275.1 min)",
        pct(total_kfac / total_nvlamb)
    );
    println!(
        "per-step overhead: {} (paper: ~6.5% — 2499.5 / 2345.6 ms)",
        pct(t_kfac / t_nvlamb - 1.0)
    );
    println!(
        "GPU utilization: {} -> {} (paper: 59.8% -> 97.6%)",
        pct(schedule.utilization_baseline),
        pct(schedule.steady_utilization)
    );
    println!("\n(F1 after fine-tuning and the step counts are quoted from Pauloski et al. 2022,");
    println!(" exactly as the paper does; only the per-step times are simulated here.)");
}
