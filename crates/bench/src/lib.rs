//! Shared helpers for the PipeFisher benchmark harness.
//!
//! The experiments live in `src/bin/` (one binary per paper table or
//! figure — see DESIGN.md §4 for the index) and `benches/` (Criterion
//! micro-benchmarks). This library hosts the code they share: construction
//! of paper-setting configurations and result formatting.

use pipefisher_core::PipeFisherConfig;
use pipefisher_perfmodel::{
    stage_costs, stage_memory, HardwareProfile, StageMemory, StepModelInput, TransformerConfig,
};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::{ring_allreduce_time, KindCost};

/// A fully specified experiment setting: architecture, hardware, pipeline.
#[derive(Debug, Clone)]
pub struct Setting {
    /// Transformer architecture (Table 3 presets).
    pub arch: TransformerConfig,
    /// GPU profile.
    pub hw: HardwareProfile,
    /// Pipeline scheme.
    pub scheme: PipelineScheme,
    /// Number of pipeline stages.
    pub d: usize,
    /// Micro-batches per device per step.
    pub n_micro: usize,
    /// Micro-batch size (sequences).
    pub b_micro: usize,
    /// Transformer blocks per pipeline stage.
    pub blocks_per_stage: usize,
    /// Data-parallel replicas per stage.
    pub w: usize,
    /// Activation recomputation.
    pub recompute: bool,
}

impl Setting {
    /// Per-stage durations including collective costs derived from the
    /// hardware profile.
    pub fn costs(&self) -> KindCost {
        let mut c = stage_costs(
            &self.arch,
            &self.hw,
            self.blocks_per_stage,
            self.b_micro,
            self.recompute,
        );
        let mem = self.memory();
        // Replica count for the collectives: explicit W, times Chimera's
        // built-in stage pairing.
        let replicas = self.w
            * if self.scheme == PipelineScheme::Chimera {
                2
            } else {
                1
            };
        c.t_sync_grad = ring_allreduce_time(
            mem.m_theta,
            replicas,
            self.hw.link_bandwidth,
            self.hw.link_latency,
        );
        c.t_sync_curv = ring_allreduce_time(
            2.0 * mem.m_curv,
            replicas,
            self.hw.link_bandwidth,
            self.hw.link_latency,
        );
        c
    }

    /// Per-stage memory terms.
    pub fn memory(&self) -> StageMemory {
        stage_memory(
            &self.arch,
            self.blocks_per_stage,
            self.b_micro,
            self.recompute,
        )
    }

    /// The PipeFisher assignment configuration for this setting.
    pub fn assign_config(&self) -> PipeFisherConfig {
        PipeFisherConfig {
            scheme: self.scheme,
            d: self.d,
            n_micro: self.n_micro,
            w: self.w,
            costs: self.costs(),
            max_steps: 64,
            chimera_pair_parallelism: self.scheme == PipelineScheme::Chimera,
            recompute: self.recompute,
            granularity: self.blocks_per_stage,
        }
    }

    /// The §3.3 closed-form model input for this setting.
    pub fn step_model_input(&self) -> StepModelInput {
        StepModelInput {
            scheme: self.scheme,
            d: self.d,
            n_micro: self.n_micro,
            b_micro: self.b_micro,
            w: self.w,
            costs: self.costs(),
            memory: self.memory(),
            hw: self.hw.clone(),
        }
    }

    /// The paper's Figure 3 setting: BERT-Base, D=4 (3 blocks/stage),
    /// N_micro=4, B_micro=32, P100.
    pub fn fig3(scheme: PipelineScheme, w: usize) -> Setting {
        Setting {
            arch: TransformerConfig::bert_base(),
            hw: HardwareProfile::p100(),
            scheme,
            d: 4,
            n_micro: 4,
            b_micro: 32,
            blocks_per_stage: 3,
            w,
            recompute: false,
        }
    }

    /// The paper's Figure 4 setting: BERT-Large, Chimera, D=8
    /// (3 blocks/stage), N_micro=8, B_micro=32, P100.
    pub fn fig4() -> Setting {
        Setting {
            arch: TransformerConfig::bert_large(),
            hw: HardwareProfile::p100(),
            scheme: PipelineScheme::Chimera,
            d: 8,
            n_micro: 8,
            b_micro: 32,
            blocks_per_stage: 3,
            w: 1,
            recompute: false,
        }
    }

    /// The paper's Figure 6 wall-clock setting: BERT-Base, Chimera, D=4,
    /// N_micro=4, B_micro=32, W=64 (256 GPUs), P100.
    pub fn fig6() -> Setting {
        Setting {
            w: 64,
            ..Setting::fig3(PipelineScheme::Chimera, 1)
        }
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.759 → "75.9%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats seconds as minutes with one decimal.
pub fn fmt_minutes(seconds: f64) -> String {
    format!("{:.1} min", seconds / 60.0)
}

/// Formats seconds as milliseconds with one decimal.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.1} ms", seconds * 1e3)
}

/// Formats bytes as GiB-style GB with one decimal.
pub fn fmt_gb(bytes: f64) -> String {
    format!("{:.1} GB", bytes / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.759), "75.9%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn minutes_formats() {
        assert_eq!(fmt_minutes(120.0), "2.0 min");
    }

    #[test]
    fn fig3_setting_is_assignable() {
        let s = Setting::fig3(PipelineScheme::GPipe, 1);
        let sched = pipefisher_core::assign(&s.assign_config()).unwrap();
        assert!(sched.utilization > sched.utilization_baseline);
    }

    #[test]
    fn fig4_setting_is_assignable() {
        let s = Setting::fig4();
        let sched = pipefisher_core::assign(&s.assign_config()).unwrap();
        assert!(
            sched.steady_utilization > 0.9,
            "util {}",
            sched.steady_utilization
        );
    }
}
