//! Primitive encoders/decoders for section payloads.
//!
//! Sections are flat byte streams written by [`SectionWriter`] and read back
//! by [`SectionReader`]. All integers are little-endian; `f64`s are written
//! as the little-endian bytes of their IEEE-754 bit pattern (`to_bits`), so
//! NaNs, signed zeros, and subnormals survive a round trip bit-for-bit.

use pipefisher_tensor::Matrix;

use crate::error::CkptError;

/// Appends primitives to a section payload.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty payload.
    pub fn new() -> SectionWriter {
        SectionWriter::default()
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte (enum tags, bool flags).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its little-endian bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a matrix: `rows u64 | cols u64 | rows*cols f64 bit patterns`.
    pub fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &v in m.as_slice() {
            self.f64_bits(v);
        }
    }

    /// Writes an optional matrix as a presence byte plus the matrix.
    pub fn opt_matrix(&mut self, m: Option<&Matrix>) {
        match m {
            Some(m) => {
                self.u8(1);
                self.matrix(m);
            }
            None => self.u8(0),
        }
    }
}

/// Reads primitives back out of a section payload, bounds-checked.
///
/// Call [`SectionReader::finish`] after the last field: leftover bytes mean
/// the payload and the reader disagree about the schema, which is reported
/// as [`CkptError::Malformed`] instead of being silently ignored.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Wraps a section payload. `section` names the section in errors.
    pub fn new(section: &'a str, bytes: &'a [u8]) -> SectionReader<'a> {
        SectionReader {
            section,
            bytes,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CkptError::Malformed {
                detail: format!("section '{}': length overflow", self.section),
            })?;
        if end > self.bytes.len() {
            return Err(CkptError::Truncated {
                context: format!("section '{}'", self.section),
                needed: end as u64,
                have: self.bytes.len() as u64,
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(CkptError::Malformed {
                detail: format!(
                    "section '{}': string length {len} exceeds the 1 MiB cap",
                    self.section
                ),
            });
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_string())
            .map_err(|_| CkptError::Malformed {
                detail: format!("section '{}': string is not UTF-8", self.section),
            })
    }

    /// Reads a matrix written by [`SectionWriter::matrix`].
    pub fn matrix(&mut self) -> Result<Matrix, CkptError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let len = rows.checked_mul(cols).ok_or_else(|| CkptError::Malformed {
            detail: format!(
                "section '{}': matrix dims {rows}x{cols} overflow",
                self.section
            ),
        })?;
        // Bounds-check against the remaining bytes before allocating, so a
        // corrupted dim field can't drive a huge allocation.
        let need = len.checked_mul(8).ok_or_else(|| CkptError::Malformed {
            detail: format!(
                "section '{}': matrix dims {rows}x{cols} overflow",
                self.section
            ),
        })?;
        if self.pos + need > self.bytes.len() {
            return Err(CkptError::Truncated {
                context: format!("section '{}' matrix payload", self.section),
                needed: (self.pos + need) as u64,
                have: self.bytes.len() as u64,
            });
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.f64_bits()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Reads an optional matrix written by [`SectionWriter::opt_matrix`].
    pub fn opt_matrix(&mut self) -> Result<Option<Matrix>, CkptError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.matrix()?)),
            tag => Err(CkptError::Malformed {
                detail: format!(
                    "section '{}': invalid option tag {tag} (want 0 or 1)",
                    self.section
                ),
            }),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos != self.bytes.len() {
            return Err(CkptError::Malformed {
                detail: format!(
                    "section '{}': {} unread trailing bytes",
                    self.section,
                    self.bytes.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SectionWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64_bits(-0.0);
        w.str("layer.0.attn");
        let bytes = w.into_bytes();

        let mut r = SectionReader::new("t", &bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "layer.0.attn");
        r.finish().unwrap();
    }

    #[test]
    fn special_floats_round_trip_bitwise() {
        let specials = [
            f64::NAN,
            f64::from_bits(0x7FF8_0000_0000_0001), // payloaded NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
        ];
        let mut w = SectionWriter::new();
        for &v in &specials {
            w.f64_bits(v);
        }
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("f", &bytes);
        for &v in &specials {
            assert_eq!(r.f64_bits().unwrap().to_bits(), v.to_bits());
        }
        r.finish().unwrap();
    }

    #[test]
    fn matrices_round_trip_including_empty() {
        for (rows, cols) in [(0, 0), (0, 5), (3, 0), (1, 1), (4, 3)] {
            let m = Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols).map(|i| i as f64 * 0.5 - 1.0).collect(),
            );
            let mut w = SectionWriter::new();
            w.matrix(&m);
            w.opt_matrix(None);
            w.opt_matrix(Some(&m));
            let bytes = w.into_bytes();
            let mut r = SectionReader::new("m", &bytes);
            let back = r.matrix().unwrap();
            assert_eq!(back.shape(), m.shape());
            assert_eq!(back.as_slice(), m.as_slice());
            assert!(r.opt_matrix().unwrap().is_none());
            let opt = r.opt_matrix().unwrap().unwrap();
            assert_eq!(opt.as_slice(), m.as_slice());
            r.finish().unwrap();
        }
    }

    #[test]
    fn truncated_reads_error_without_panic() {
        let mut w = SectionWriter::new();
        w.matrix(&Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SectionReader::new("m", &bytes[..cut]);
            assert!(r.matrix().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn oversized_matrix_dims_are_rejected_before_allocation() {
        let mut w = SectionWriter::new();
        w.u64(u64::MAX); // rows
        w.u64(u64::MAX); // cols
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("m", &bytes);
        assert!(r.matrix().is_err());

        let mut w = SectionWriter::new();
        w.u64(1 << 40); // plausible-looking but unsatisfiable
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("m", &bytes);
        assert!(matches!(r.matrix(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn leftover_bytes_fail_finish() {
        let mut w = SectionWriter::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("x", &bytes);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 4);
        assert!(matches!(r.finish(), Err(CkptError::Malformed { .. })));
    }

    #[test]
    fn invalid_option_tag_is_malformed() {
        let mut r = SectionReader::new("o", &[2]);
        assert!(matches!(r.opt_matrix(), Err(CkptError::Malformed { .. })));
    }
}
