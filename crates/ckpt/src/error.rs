//! Structured checkpoint failure modes.

use std::fmt;

/// Why a checkpoint could not be decoded, validated, or persisted.
///
/// Every variant names what was being read and what disagreed, so a refusal
/// to resume is always diagnosable; none of the decode paths panic on
/// untrusted bytes.
#[derive(Debug)]
pub enum CkptError {
    /// The file does not start with the `PFCK` magic.
    BadMagic {
        /// The first bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The byte stream ended before a declared structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// The section table's CRC32 does not match its bytes.
    BadTableChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the header + table bytes.
        computed: u32,
    },
    /// A section payload's CRC32 does not match its bytes.
    BadSectionChecksum {
        /// Section whose payload failed validation.
        section: String,
        /// CRC stored in the table.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A required section is absent from the snapshot.
    MissingSection {
        /// The absent section.
        section: String,
    },
    /// A structural invariant of the encoding was violated (duplicate
    /// section names, non-UTF-8 strings, trailing bytes, impossible
    /// lengths, unknown enum tags, …).
    Malformed {
        /// What was wrong, and where.
        detail: String,
    },
    /// A named tensor's stored shape disagrees with the live one.
    ShapeMismatch {
        /// Tensor (parameter / optimizer-state entry) name.
        name: String,
        /// `(rows, cols)` the live structure expects.
        expected: (usize, usize),
        /// `(rows, cols)` stored in the checkpoint.
        found: (usize, usize),
    },
    /// The checkpoint names state the live structure does not have (e.g. a
    /// parameter that does not exist in the model being restored).
    UnknownEntry {
        /// What kind of structure was being restored.
        context: String,
        /// The unmatched name.
        name: String,
    },
    /// The checkpoint was written by a different optimizer than the one
    /// being restored into.
    OptimizerMismatch {
        /// Optimizer label of the live run.
        expected: String,
        /// Optimizer label stored in the checkpoint.
        found: String,
    },
    /// Filesystem I/O failed.
    Io {
        /// What was being done (path included).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic { found } => {
                write!(
                    f,
                    "not a checkpoint: bad magic {found:02x?} (want \"PFCK\")"
                )
            }
            CkptError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CkptError::Truncated {
                context,
                needed,
                have,
            } => write!(
                f,
                "truncated checkpoint while reading {context}: need {needed} bytes, have {have}"
            ),
            CkptError::BadTableChecksum { stored, computed } => write!(
                f,
                "section table checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            CkptError::BadSectionChecksum {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section '{section}' checksum mismatch: stored {stored:08x}, \
                 computed {computed:08x}"
            ),
            CkptError::MissingSection { section } => {
                write!(f, "checkpoint is missing required section '{section}'")
            }
            CkptError::Malformed { detail } => write!(f, "malformed checkpoint: {detail}"),
            CkptError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for '{name}': live {}x{}, checkpoint {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            CkptError::UnknownEntry { context, name } => {
                write!(f, "checkpoint {context} names unknown entry '{name}'")
            }
            CkptError::OptimizerMismatch { expected, found } => write!(
                f,
                "checkpoint was written by optimizer '{found}', cannot restore into '{expected}'"
            ),
            CkptError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CkptError {
    /// Builds an [`CkptError::Io`] with a contextual message.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> CkptError {
        CkptError::Io {
            context: context.into(),
            source,
        }
    }
}
