//! The snapshot container: magic, version, CRC-validated section table.

use crate::error::CkptError;

/// File magic: the first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"PFCK";

/// Format version this build writes (and the only one it reads).
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on a single section's declared payload length (1 GiB). Real
/// snapshots in this repo are kilobytes to megabytes; the cap keeps a
/// corrupted-but-checksum-free length field from driving a huge allocation
/// before the bounds check fires.
const MAX_SECTION_LEN: u64 = 1 << 30;

/// Hard cap on the declared section count (decode-side sanity bound).
const MAX_SECTIONS: u32 = 4096;

const CRC_POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3 polynomial

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                CRC_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE, as used by zip/gzip/PNG) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One section's table entry, as reported by [`Snapshot::section_infos`]
/// (the `pipefisher ckpt inspect` view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Payload CRC32.
    pub crc32: u32,
}

/// An ordered set of named binary sections — the in-memory form of one
/// checkpoint file.
///
/// Section order is part of the byte format: encoding the same sections in
/// the same order always produces identical bytes, which is what lets the
/// golden-file test pin the format and the resume tests compare serial vs
/// pipelined checkpoints byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Appends a section.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already present (writer-side bug, not a decode
    /// condition).
    pub fn push_section(&mut self, name: impl Into<String>, payload: Vec<u8>) {
        let name = name.into();
        assert!(
            self.section(&name).is_none(),
            "duplicate checkpoint section '{name}'"
        );
        self.sections.push((name, payload));
    }

    /// The payload of `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// The payload of `name`, or [`CkptError::MissingSection`].
    pub fn require(&self, name: &str) -> Result<&[u8], CkptError> {
        self.section(name).ok_or_else(|| CkptError::MissingSection {
            section: name.to_string(),
        })
    }

    /// Iterates `(name, payload)` in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    /// The section table as `inspect`-friendly rows (name, size, CRC).
    pub fn section_infos(&self) -> Vec<SectionInfo> {
        self.sections
            .iter()
            .map(|(name, payload)| SectionInfo {
                name: name.clone(),
                bytes: payload.len() as u64,
                crc32: crc32(payload),
            })
            .collect()
    }

    /// Serializes the snapshot to the on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let table_crc = crc32(&out);
        out.extend_from_slice(&table_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and fully validates the on-disk byte format.
    ///
    /// # Errors
    ///
    /// Any deviation — short file, wrong magic, version skew, table or
    /// payload CRC mismatch, duplicate names, trailing bytes — returns the
    /// matching [`CkptError`]; no input can make this panic.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        let mut cur = Cursor {
            bytes,
            pos: 0,
            context: "header",
        };
        let magic = cur.take(4)?;
        if magic != MAGIC {
            let mut found = [0u8; 4];
            found[..magic.len()].copy_from_slice(magic);
            return Err(CkptError::BadMagic { found });
        }
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        cur.context = "section table";
        let count = cur.u32()?;
        if count > MAX_SECTIONS {
            return Err(CkptError::Malformed {
                detail: format!("section count {count} exceeds the {MAX_SECTIONS} cap"),
            });
        }
        let mut table: Vec<(String, u64, u32)> = Vec::with_capacity(count as usize);
        for i in 0..count {
            let name_len = cur.u32()? as usize;
            if name_len > 4096 {
                return Err(CkptError::Malformed {
                    detail: format!("section {i} name length {name_len} exceeds the 4096 cap"),
                });
            }
            let name_bytes = cur.take(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CkptError::Malformed {
                    detail: format!("section {i} name is not UTF-8"),
                })?
                .to_string();
            let payload_len = cur.u64()?;
            if payload_len > MAX_SECTION_LEN {
                return Err(CkptError::Malformed {
                    detail: format!(
                        "section '{name}' declares {payload_len} bytes, over the \
                         {MAX_SECTION_LEN}-byte cap"
                    ),
                });
            }
            let payload_crc = cur.u32()?;
            if table.iter().any(|(n, _, _)| *n == name) {
                return Err(CkptError::Malformed {
                    detail: format!("duplicate section name '{name}'"),
                });
            }
            table.push((name, payload_len, payload_crc));
        }
        let table_end = cur.pos;
        let stored_table_crc = cur.u32()?;
        let computed_table_crc = crc32(&bytes[..table_end]);
        if stored_table_crc != computed_table_crc {
            return Err(CkptError::BadTableChecksum {
                stored: stored_table_crc,
                computed: computed_table_crc,
            });
        }
        let mut sections = Vec::with_capacity(table.len());
        for (name, payload_len, payload_crc) in table {
            cur.context = "section payload";
            let payload = cur.take(payload_len as usize)?.to_vec();
            let computed = crc32(&payload);
            if computed != payload_crc {
                return Err(CkptError::BadSectionChecksum {
                    section: name,
                    stored: payload_crc,
                    computed,
                });
            }
            sections.push((name, payload));
        }
        if cur.pos != bytes.len() {
            return Err(CkptError::Malformed {
                detail: format!(
                    "{} trailing bytes after the last section payload",
                    bytes.len() - cur.pos
                ),
            });
        }
        Ok(Snapshot { sections })
    }
}

/// Bounds-checked reader over raw snapshot bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CkptError::Malformed {
                detail: format!("{}: length overflow", self.context),
            })?;
        if end > self.bytes.len() {
            return Err(CkptError::Truncated {
                context: self.context.to_string(),
                needed: end as u64,
                have: self.bytes.len() as u64,
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut s = Snapshot::new();
        s.push_section("meta", vec![1, 2, 3]);
        s.push_section("model", vec![]);
        s.push_section("rng", (0..255u8).collect());
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.require("meta").unwrap(), &[1, 2, 3]);
        assert!(back.section("absent").is_none());
        assert!(matches!(
            back.require("absent"),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot::new();
        let back = Snapshot::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = Snapshot::new().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = Snapshot::new().encode();
        bytes[4] = 99;
        match Snapshot::decode(&bytes) {
            Err(CkptError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let mut s = Snapshot::new();
        s.push_section("a", vec![7; 32]);
        let bytes = s.encode();
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CkptError::Truncated { .. }
                        | CkptError::BadMagic { .. }
                        | CkptError::BadTableChecksum { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_section_names_are_rejected() {
        // Hand-build a table with a duplicated name; table CRC is made
        // valid so the duplicate check itself is exercised.
        let mut s = Snapshot::new();
        s.push_section("dup", vec![1]);
        let mut bytes = s.encode();
        // Rewrite count to 2 and duplicate the entry.
        let entry: Vec<u8> = {
            let name = b"dup";
            let mut e = Vec::new();
            e.extend_from_slice(&(name.len() as u32).to_le_bytes());
            e.extend_from_slice(name);
            e.extend_from_slice(&1u64.to_le_bytes());
            e.extend_from_slice(&crc32(&[1]).to_le_bytes());
            e
        };
        bytes.truncate(12); // magic + version + count
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&entry);
        bytes.extend_from_slice(&entry);
        let table_crc = crc32(&bytes);
        bytes.extend_from_slice(&table_crc.to_le_bytes());
        bytes.extend_from_slice(&[1, 1]);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate checkpoint section")]
    fn push_duplicate_panics_writer_side() {
        let mut s = Snapshot::new();
        s.push_section("x", vec![]);
        s.push_section("x", vec![]);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut s = Snapshot::new();
        s.push_section("a", vec![5; 8]);
        let mut bytes = s.encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::Malformed { .. })
        ));
    }

    #[test]
    fn section_infos_report_sizes_and_crcs() {
        let mut s = Snapshot::new();
        s.push_section("meta", vec![9; 5]);
        let infos = s.section_infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "meta");
        assert_eq!(infos[0].bytes, 5);
        assert_eq!(infos[0].crc32, crc32(&[9; 5]));
    }
}
