//! Crash-safe training-state snapshots (DESIGN.md §3.15).
//!
//! A checkpoint is a single binary file:
//!
//! ```text
//! magic "PFCK" | format version u32 | section count u32
//! per section: name len u32 | name bytes | payload len u64 | payload CRC32
//! table CRC32 (over everything above)
//! section payloads, contiguous, in table order
//! ```
//!
//! Every integer is little-endian; every `f64` is stored as the
//! little-endian bytes of its IEEE-754 bit pattern, so NaN payloads, signed
//! zeros, and subnormals round-trip *bitwise* — the property the repo's
//! resume-equivalence tests (`run(N) == run(k) → save → load → run(N−k)`)
//! are built on.
//!
//! Corruption anywhere in the file surfaces as a structured [`CkptError`]:
//! a flipped byte lands either in the header (bad magic / version), the
//! section table (table CRC), or a payload (section CRC); truncation is
//! caught by explicit bounds checks before any slice is taken. Decoding
//! never panics on untrusted bytes.
//!
//! Persistence is atomic: [`write_atomic`] writes to a temporary file in
//! the destination directory, syncs it, then renames it over the final
//! path, so a crash mid-write leaves either the old checkpoint or the new
//! one — never a torn file. [`CheckpointDir`] layers step-numbered
//! generations and retained-count pruning on top.

mod codec;
mod error;
mod format;
mod store;

pub use codec::{SectionReader, SectionWriter};
pub use error::CkptError;
pub use format::{crc32, SectionInfo, Snapshot, FORMAT_VERSION, MAGIC};
pub use store::{read_snapshot, write_atomic, CheckpointDir};
