//! Atomic persistence and step-numbered checkpoint directories.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::CkptError;
use crate::format::Snapshot;

/// Writes `bytes` to `path` atomically: the bytes go to a temporary file in
/// the same directory, are synced to disk, and the temp file is renamed over
/// `path`. A crash at any point leaves either the previous file or the
/// complete new one — never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| CkptError::Malformed {
            detail: format!("checkpoint path '{}' has no file name", path.display()),
        })?
        .to_string_lossy()
        .into_owned();
    let tmp_path = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp")),
        None => PathBuf::from(format!(".{file_name}.tmp")),
    };
    let ctx = |what: &str, p: &Path| format!("{what} {}", p.display());
    let mut tmp = fs::File::create(&tmp_path)
        .map_err(|e| CkptError::io(ctx("creating temp checkpoint", &tmp_path), e))?;
    let result = (|| {
        tmp.write_all(bytes)
            .map_err(|e| CkptError::io(ctx("writing temp checkpoint", &tmp_path), e))?;
        tmp.sync_all()
            .map_err(|e| CkptError::io(ctx("syncing temp checkpoint", &tmp_path), e))?;
        drop(tmp);
        fs::rename(&tmp_path, path)
            .map_err(|e| CkptError::io(ctx("renaming checkpoint into place", path), e))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

/// Reads and fully validates a checkpoint file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, CkptError> {
    let bytes = fs::read(path)
        .map_err(|e| CkptError::io(format!("reading checkpoint {}", path.display()), e))?;
    Snapshot::decode(&bytes)
}

/// A directory of step-numbered checkpoint generations.
///
/// Files are named `ckpt_step{step:08}.pfck`, so lexicographic order is
/// step order. After each save, generations beyond the retained count are
/// pruned oldest-first.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
    retain: usize,
}

const CKPT_PREFIX: &str = "ckpt_step";
const CKPT_SUFFIX: &str = ".pfck";

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory, retaining the
    /// newest `retain` generations after each save. `retain` is clamped to
    /// at least 1 — a checkpoint directory that keeps nothing is useless.
    pub fn create(dir: impl Into<PathBuf>, retain: usize) -> Result<CheckpointDir, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| CkptError::io(format!("creating checkpoint dir {}", dir.display()), e))?;
        Ok(CheckpointDir {
            dir,
            retain: retain.max(1),
        })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The file path a given step's checkpoint saves to.
    pub fn path_for_step(&self, step: u64) -> PathBuf {
        self.dir
            .join(format!("{CKPT_PREFIX}{step:08}{CKPT_SUFFIX}"))
    }

    /// Atomically writes `snapshot` as the generation for `step`, then
    /// prunes old generations. Returns the written path.
    pub fn save(&self, step: u64, snapshot: &Snapshot) -> Result<PathBuf, CkptError> {
        let path = self.path_for_step(step);
        write_atomic(&path, &snapshot.encode())?;
        self.prune()?;
        Ok(path)
    }

    /// Step numbers of every generation present, ascending.
    pub fn generations(&self) -> Result<Vec<u64>, CkptError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| {
            CkptError::io(format!("listing checkpoint dir {}", self.dir.display()), e)
        })?;
        let mut steps = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| {
                CkptError::io(format!("listing checkpoint dir {}", self.dir.display()), e)
            })?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(step) = name
                .strip_prefix(CKPT_PREFIX)
                .and_then(|s| s.strip_suffix(CKPT_SUFFIX))
                .and_then(|s| s.parse::<u64>().ok())
            {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Path of the newest generation, if any exist.
    pub fn latest(&self) -> Result<Option<PathBuf>, CkptError> {
        Ok(self
            .generations()?
            .last()
            .map(|&step| self.path_for_step(step)))
    }

    /// Loads and validates the newest generation, if any.
    pub fn load_latest(&self) -> Result<Option<(PathBuf, Snapshot)>, CkptError> {
        match self.latest()? {
            Some(path) => {
                let snap = read_snapshot(&path)?;
                Ok(Some((path, snap)))
            }
            None => Ok(None),
        }
    }

    fn prune(&self) -> Result<(), CkptError> {
        let steps = self.generations()?;
        if steps.len() <= self.retain {
            return Ok(());
        }
        for &step in &steps[..steps.len() - self.retain] {
            let path = self.path_for_step(step);
            fs::remove_file(&path)
                .map_err(|e| CkptError::io(format!("pruning checkpoint {}", path.display()), e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pipefisher-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(marker: u8) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section("meta", vec![marker; 16]);
        s
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pfck");
        let snap = sample_snapshot(3);
        write_atomic(&path, &snap.encode()).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snap);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_existing_file() {
        let dir = temp_dir("replace");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pfck");
        write_atomic(&path, &sample_snapshot(1).encode()).unwrap();
        write_atomic(&path, &sample_snapshot(2).encode()).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), sample_snapshot(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_saves_latest_and_prunes() {
        let dir = temp_dir("prune");
        let store = CheckpointDir::create(&dir, 2).unwrap();
        assert!(store.latest().unwrap().is_none());
        assert!(store.load_latest().unwrap().is_none());
        for step in [1u64, 2, 3, 4, 10] {
            store.save(step, &sample_snapshot(step as u8)).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![4, 10]);
        let (path, snap) = store.load_latest().unwrap().unwrap();
        assert_eq!(path, store.path_for_step(10));
        assert_eq!(snap, sample_snapshot(10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retain_zero_is_clamped_to_one() {
        let dir = temp_dir("clamp");
        let store = CheckpointDir::create(&dir, 0).unwrap();
        store.save(1, &sample_snapshot(1)).unwrap();
        store.save(2, &sample_snapshot(2)).unwrap();
        assert_eq!(store.generations().unwrap(), vec![2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_are_ignored_and_preserved() {
        let dir = temp_dir("ignore");
        let store = CheckpointDir::create(&dir, 1).unwrap();
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        store.save(5, &sample_snapshot(5)).unwrap();
        store.save(6, &sample_snapshot(6)).unwrap();
        assert_eq!(store.generations().unwrap(), vec![6]);
        assert_eq!(fs::read(dir.join("notes.txt")).unwrap(), b"keep me");
        fs::remove_dir_all(&dir).unwrap();
    }
}
