//! Corruption rejection: a damaged checkpoint must always decode to a
//! structured [`CkptError`] — never a panic, and never a silently-wrong
//! snapshot.
//!
//! The exhaustive sweeps lean on CRC32's guarantee that every single-byte
//! error is detected: each section carries its own checksum and the
//! header+table region carries another, so there is no byte in the file a
//! flip can hide in.

use pipefisher_ckpt::{CkptError, Snapshot, FORMAT_VERSION, MAGIC};
use proptest::prelude::*;

/// A representative checkpoint: several sections with distinct sizes,
/// including an empty one.
fn sample_bytes() -> Vec<u8> {
    let mut snap = Snapshot::new();
    snap.push_section("meta", vec![7; 16]);
    snap.push_section("model", (0..=255).collect());
    snap.push_section("optim", vec![1, 2, 3, 4, 5]);
    snap.push_section("rng", Vec::new());
    snap.encode()
}

fn decodes(bytes: &[u8]) -> Result<Snapshot, CkptError> {
    Snapshot::decode(bytes)
}

#[test]
fn pristine_sample_decodes() {
    assert!(decodes(&sample_bytes()).is_ok());
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let good = sample_bytes();
    for pos in 0..good.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = good.clone();
            bad[pos] ^= flip;
            let err = decodes(&bad).expect_err(&format!(
                "flip 0x{flip:02x} at byte {pos}/{} went undetected",
                good.len()
            ));
            // Every rejection is a structured error with a Display message.
            assert!(!err.to_string().is_empty());
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let good = sample_bytes();
    for len in 0..good.len() {
        let err = decodes(&good[..len]).expect_err(&format!("truncation to {len} bytes decoded"));
        assert!(
            matches!(
                err,
                CkptError::Truncated { .. }
                    | CkptError::BadMagic { .. }
                    | CkptError::BadTableChecksum { .. }
                    | CkptError::BadSectionChecksum { .. }
                    | CkptError::Malformed { .. }
            ),
            "truncation to {len} produced unexpected error: {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_bytes();
    bytes.push(0);
    assert!(decodes(&bytes).is_err(), "one trailing byte accepted");
}

#[test]
fn zero_filled_payloads_are_rejected() {
    // Zeroing each section's payload in place (same length, so the table
    // still parses) must trip that section's checksum.
    let good = sample_bytes();
    let snap = Snapshot::decode(&good).unwrap();
    let mut payload_start = good.len();
    for (_, payload) in snap.sections() {
        payload_start -= payload.len();
    }
    let mut offset = payload_start;
    for (name, payload) in snap.sections() {
        if payload.is_empty() || payload.iter().all(|&b| b == 0) {
            offset += payload.len();
            continue;
        }
        let mut bad = good.clone();
        bad[offset..offset + payload.len()].fill(0);
        let err = decodes(&bad).expect_err(&format!("zero-filled section {name} decoded"));
        assert!(
            matches!(err, CkptError::BadSectionChecksum { .. }),
            "zero-filling {name} produced unexpected error: {err}"
        );
        offset += payload.len();
    }
}

#[test]
fn wrong_magic_and_version_are_distinct_errors() {
    let good = sample_bytes();

    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        decodes(&bad),
        Err(CkptError::BadMagic { found }) if &found == b"NOPE"
    ));

    // A future format version is reported as version skew (the version
    // check runs before any checksum, so a v2 reader message is actionable
    // rather than a misleading CRC failure).
    let mut bad = good.clone();
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bad[4..8].copy_from_slice(&future);
    assert!(
        matches!(
            decodes(&bad),
            Err(CkptError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ),
        "future version not reported as version skew"
    );
    assert_eq!(
        &good[..4],
        &MAGIC[..],
        "sample file must start with the magic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup never panics the decoder — it either decodes
    /// (vanishingly unlikely) or returns a structured error.
    #[test]
    fn arbitrary_bytes_never_panic(
        len in 0usize..=192,
        raw in proptest::collection::vec(0u8..=255u8, 192),
    ) {
        let bytes = &raw[..len];
        match decodes(bytes) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Random multi-byte stomps over the sample are detected (CRC32 can in
    /// principle collide on multi-byte corruption, but not within this
    /// test's byte budget — the pairs stomped here always change a checksum
    /// or a checksummed region inconsistently).
    #[test]
    fn random_two_byte_stomps_are_rejected(
        pos in 0usize..10_000,
        delta in 1u8..=255u8,
    ) {
        let good = sample_bytes();
        let pos = pos % good.len();
        let mut bad = good.clone();
        bad[pos] = bad[pos].wrapping_add(delta);
        prop_assert!(decodes(&bad).is_err(), "stomp at {pos} accepted");
    }
}
