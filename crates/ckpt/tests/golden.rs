//! Golden-file pin: the v1 byte format may never drift.
//!
//! A checkpoint written by any past build of this repo must load in any
//! future build, so the exact bytes of a representative snapshot are
//! committed at `tests/golden/ckpt_v1.bin`. If an intentional format
//! change bumps `FORMAT_VERSION`, regenerate with
//!
//! ```text
//! PIPEFISHER_BLESS=1 cargo test -p pipefisher-ckpt --test golden
//! ```
//!
//! and commit the new file alongside the version bump. A failure here
//! without a version bump is a silent format break.

use pipefisher_ckpt::{SectionWriter, Snapshot};
use pipefisher_tensor::Matrix;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ckpt_v1.bin")
}

/// A fixed snapshot exercising every codec primitive: scalars, strings,
/// matrices (incl. a 0×3 degenerate and special float values), optional
/// matrices both present and absent, and an empty section.
fn golden_snapshot() -> Snapshot {
    let mut meta = SectionWriter::new();
    meta.u64(42);
    meta.u32(7);
    meta.str("K-FAC");
    meta.f64_bits(-0.0);
    meta.f64_bits(f64::from_bits(0x7FF8_0000_DEAD_BEEF));

    let mut model = SectionWriter::new();
    model.matrix(&Matrix::from_vec(
        2,
        3,
        vec![
            1.0,
            -1.5,
            f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest subnormal
            f64::INFINITY,
            -0.0,
        ],
    ));
    model.matrix(&Matrix::from_vec(0, 3, Vec::new()));

    let mut optim = SectionWriter::new();
    optim.opt_matrix(Some(&Matrix::from_vec(1, 2, vec![3.25, -4.75])));
    optim.opt_matrix(None);
    optim.u8(1);

    let mut snap = Snapshot::new();
    snap.push_section("meta", meta.into_bytes());
    snap.push_section("model", model.into_bytes());
    snap.push_section("optim", optim.into_bytes());
    snap.push_section("empty", Vec::new());
    snap
}

#[test]
fn golden_v1_bytes_are_pinned() {
    let encoded = golden_snapshot().encode();
    let path = golden_path();
    if std::env::var("PIPEFISHER_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &encoded).expect("write golden file");
        return;
    }
    let want = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with PIPEFISHER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        encoded, want,
        "checkpoint byte format drifted from the committed v1 golden file; \
         if intentional, bump FORMAT_VERSION and re-bless"
    );
    // And the committed bytes still decode to the same logical content.
    let decoded = Snapshot::decode(&want).expect("golden file decodes");
    assert_eq!(decoded.sections().count(), 4);
    assert_eq!(
        decoded.require("meta").unwrap(),
        golden_snapshot().require("meta").unwrap()
    );
}
