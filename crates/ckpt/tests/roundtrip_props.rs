//! Property tests: everything the codec writes reads back bitwise.
//!
//! The checkpoint format's whole job is byte-exact round-trips — resume
//! correctness is proven bitwise downstream, so the serialization layer
//! must not lose a single bit, including NaN payloads, signed zeros,
//! subnormals, and degenerate (0-dimension) matrix shapes.

use pipefisher_ckpt::{SectionReader, SectionWriter, Snapshot};
use pipefisher_tensor::Matrix;
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    // Shapes include 0 rows and/or 0 columns; payloads are raw u64 bit
    // patterns reinterpreted as f64, so every float class (NaN with
    // arbitrary payload bits, ±0.0, ±inf, subnormals) appears.
    (0usize..5, 0usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(0u64..u64::MAX, rows * cols).prop_map(move |bits| {
            Matrix::from_vec(rows, cols, bits.into_iter().map(f64::from_bits).collect())
        })
    })
}

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_round_trips_bitwise(m in matrix_strategy()) {
        let mut w = SectionWriter::new();
        w.matrix(&m);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("m", &bytes);
        let back = r.matrix().unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back.shape(), m.shape());
        prop_assert_eq!(matrix_bits(&back), matrix_bits(&m));
    }

    #[test]
    fn optional_matrix_round_trips(m in matrix_strategy(), present in 0u64..2) {
        let opt = if present == 1 { Some(m) } else { None };
        let mut w = SectionWriter::new();
        w.opt_matrix(opt.as_ref());
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("m", &bytes);
        let back = r.opt_matrix().unwrap();
        r.finish().unwrap();
        match (&opt, &back) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(matrix_bits(a), matrix_bits(b));
            }
            _ => prop_assert!(false, "presence flag lost in round trip"),
        }
    }

    #[test]
    fn scalar_mix_round_trips(
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        f in 0u64..u64::MAX,
        slen in 0usize..=24,
        sbytes in proptest::collection::vec(b'a'..=b'z', 24),
    ) {
        let s: String = sbytes[..slen].iter().map(|&b| b as char).collect();
        let mut w = SectionWriter::new();
        w.u64(a);
        w.u32(b);
        w.f64_bits(f64::from_bits(f));
        w.str(&s);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new("mix", &bytes);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.u32().unwrap(), b);
        prop_assert_eq!(r.f64_bits().unwrap().to_bits(), f);
        prop_assert_eq!(r.str().unwrap(), s);
        r.finish().unwrap();
    }

    #[test]
    fn snapshot_encode_decode_preserves_sections(
        count in 0usize..=6,
        lens in proptest::collection::vec(0usize..64, 6),
        raw in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 64),
            6,
        ),
    ) {
        let payloads: Vec<Vec<u8>> = (0..count)
            .map(|i| raw[i][..lens[i]].to_vec())
            .collect();
        let mut snap = Snapshot::new();
        for (i, payload) in payloads.iter().enumerate() {
            snap.push_section(format!("sec{i}"), payload.clone());
        }
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(decoded.sections().count(), payloads.len());
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(decoded.require(&format!("sec{i}")).unwrap(), &payload[..]);
        }
    }

    #[test]
    fn encoding_is_deterministic(
        len in 0usize..=96,
        raw in proptest::collection::vec(0u8..=255u8, 96),
    ) {
        let payload = raw[..len].to_vec();
        // Same logical content must always produce the same bytes — the
        // serial-vs-pipelined checkpoint equality tests depend on it.
        let build = || {
            let mut snap = Snapshot::new();
            snap.push_section("meta", vec![1, 2, 3]);
            snap.push_section("payload", payload.clone());
            snap.encode()
        };
        prop_assert_eq!(build(), build());
    }
}

/// The named special values, exhaustively, outside proptest so a failure
/// names the exact value.
#[test]
fn special_float_values_round_trip_bitwise() {
    let specials: Vec<f64> = vec![
        0.0,
        -0.0,
        f64::NAN,
        -f64::NAN,
        f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN with payload bits
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,                     // smallest normal
        f64::from_bits(1),                     // smallest subnormal
        f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
        f64::MAX,
        f64::MIN,
    ];
    let m = Matrix::from_vec(3, 4, specials.clone());
    let mut w = SectionWriter::new();
    w.matrix(&m);
    let bytes = w.into_bytes();
    let mut r = SectionReader::new("specials", &bytes);
    let back = r.matrix().unwrap();
    r.finish().unwrap();
    for (i, (want, got)) in specials.iter().zip(back.as_slice()).enumerate() {
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "value {i} ({want}) changed bits in round trip"
        );
    }
}
