//! Tiny argument-parsing helpers shared by the subcommands.

use pipefisher_perfmodel::{HardwareProfile, TransformerConfig};
use pipefisher_pipeline::{
    build_async_1f1b, build_interleaved_1f1b, with_recompute, PipelineScheme, TaskGraph,
};

/// Parses a pipeline scheme name.
pub fn scheme(s: &str) -> Result<PipelineScheme, String> {
    match s {
        "gpipe" => Ok(PipelineScheme::GPipe),
        "1f1b" => Ok(PipelineScheme::OneFOneB),
        "chimera" => Ok(PipelineScheme::Chimera),
        other => Err(format!("unknown scheme '{other}' (gpipe | 1f1b | chimera)")),
    }
}

/// Parses an architecture name (Table 3).
pub fn arch(s: &str) -> Result<TransformerConfig, String> {
    match s {
        "bert-base" => Ok(TransformerConfig::bert_base()),
        "bert-large" => Ok(TransformerConfig::bert_large()),
        "t5-base" => Ok(TransformerConfig::t5_base()),
        "t5-large" => Ok(TransformerConfig::t5_large()),
        "opt-125m" => Ok(TransformerConfig::opt_125m()),
        "opt-350m" => Ok(TransformerConfig::opt_350m()),
        other => Err(format!(
            "unknown architecture '{other}' (bert-base | bert-large | t5-base | t5-large | opt-125m | opt-350m)"
        )),
    }
}

/// Parses a hardware profile name.
pub fn hardware(s: &str) -> Result<HardwareProfile, String> {
    match s {
        "p100" => Ok(HardwareProfile::p100()),
        "v100" => Ok(HardwareProfile::v100()),
        "rtx3090" => Ok(HardwareProfile::rtx3090()),
        other => Err(format!(
            "unknown hardware '{other}' (p100 | v100 | rtx3090)"
        )),
    }
}

/// Parses a positional integer argument.
pub fn int(args: &[String], idx: usize, name: &str) -> Result<usize, String> {
    let raw = args
        .get(idx)
        .ok_or_else(|| format!("missing argument <{name}>"))?;
    raw.parse()
        .map_err(|_| format!("<{name}> must be a number, got '{raw}'"))
}

/// Whether a `--flag` is present anywhere in the arguments.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Value of a `--key value` pair, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Rejects scheme × shape pairs the builders cannot represent (they would
/// otherwise panic deep in the graph builder): Chimera's two bidirectional
/// pipelines need an even stage count and an even micro-batch count.
pub fn validate_scheme_shape(
    scheme: PipelineScheme,
    d: usize,
    n_micro: usize,
) -> Result<(), String> {
    if d == 0 {
        return Err("pipeline stages must be >= 1".into());
    }
    if n_micro == 0 {
        return Err("micro-batches must be >= 1".into());
    }
    if scheme == PipelineScheme::Chimera {
        if !d.is_multiple_of(2) {
            return Err(format!(
                "scheme chimera needs an even stage count (got {d}): its two \
                 bidirectional pipelines split the devices in half"
            ));
        }
        if !n_micro.is_multiple_of(2) {
            return Err(format!(
                "scheme chimera needs an even micro-batch count (got {n_micro}): \
                 half run down, half run up"
            ));
        }
    }
    Ok(())
}

/// Pipeline-execution options parsed from `train` flags. `Ok(None)` means
/// no `--pipeline-stages` was given (single-thread training loop); pipeline
/// flags without it are rejected instead of silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainPipeline {
    /// Pipeline scheme (default GPipe).
    pub scheme: PipelineScheme,
    /// Stage / device count.
    pub stages: usize,
    /// Micro-batches per step (default 4).
    pub n_micro: usize,
    /// Whether bubbles are filled with K-FAC work (`--no-fill` clears it).
    pub fill_bubbles: bool,
}

/// Parses `--pipeline-stages D [--scheme S] [--micro-batches N] [--no-fill]`.
pub fn train_pipeline(argv: &[String]) -> Result<Option<TrainPipeline>, String> {
    let Some(raw) = flag_value(argv, "--pipeline-stages") else {
        for flag in ["--scheme", "--micro-batches"] {
            if flag_value(argv, flag).is_some() {
                return Err(format!("{flag} requires --pipeline-stages"));
            }
        }
        if has_flag(argv, "--no-fill") {
            return Err("--no-fill requires --pipeline-stages".into());
        }
        return Ok(None);
    };
    let stages: usize = raw
        .parse()
        .map_err(|_| format!("bad --pipeline-stages '{raw}'"))?;
    let scheme = match flag_value(argv, "--scheme") {
        Some(s) => self::scheme(s)?,
        None => PipelineScheme::GPipe,
    };
    let n_micro: usize = flag_value(argv, "--micro-batches")
        .map(|s| s.parse().map_err(|_| format!("bad --micro-batches '{s}'")))
        .transpose()?
        .unwrap_or(4);
    validate_scheme_shape(scheme, stages, n_micro)?;
    Ok(Some(TrainPipeline {
        scheme,
        stages,
        n_micro,
        fill_bubbles: !has_flag(argv, "--no-fill"),
    }))
}

/// Parses the `train` checkpoint flags into [`CheckpointOptions`]:
/// `--checkpoint-dir DIR [--checkpoint-every N] [--checkpoint-retain R]`
/// enables saving (`every` defaults to 0 — final step only; the final step
/// always saves), and `--resume latest|PATH` restores before the first
/// step (`latest` picks the newest generation in `--checkpoint-dir`).
/// `Ok(None)` means no checkpoint flag was given; dependent flags without
/// their anchor are rejected instead of silently ignored.
pub fn train_checkpoint(
    argv: &[String],
) -> Result<Option<pipefisher_lm::CheckpointOptions>, String> {
    use pipefisher_lm::{CheckpointOptions, CheckpointPolicy, ResumeFrom};
    let dir = flag_value(argv, "--checkpoint-dir");
    if dir.is_none() {
        for flag in ["--checkpoint-every", "--checkpoint-retain"] {
            if flag_value(argv, flag).is_some() {
                return Err(format!("{flag} requires --checkpoint-dir"));
            }
        }
    }
    let save = dir
        .map(|d| -> Result<CheckpointPolicy, String> {
            let every: usize = flag_value(argv, "--checkpoint-every")
                .map(|s| {
                    s.parse()
                        .map_err(|_| format!("bad --checkpoint-every '{s}'"))
                })
                .transpose()?
                .unwrap_or(0);
            let retain: usize = flag_value(argv, "--checkpoint-retain")
                .map(|s| {
                    s.parse()
                        .map_err(|_| format!("bad --checkpoint-retain '{s}'"))
                })
                .transpose()?
                .unwrap_or(3);
            if retain == 0 {
                return Err("--checkpoint-retain must be >= 1".into());
            }
            let mut policy = CheckpointPolicy::new(d, every);
            policy.retain = retain;
            Ok(policy)
        })
        .transpose()?;
    let resume = match flag_value(argv, "--resume") {
        None => None,
        Some("latest") => {
            let d = dir.ok_or("--resume latest requires --checkpoint-dir")?;
            Some(ResumeFrom::Latest(d.into()))
        }
        Some(path) => Some(ResumeFrom::Path(path.into())),
    };
    if save.is_none() && resume.is_none() {
        return Ok(None);
    }
    Ok(Some(CheckpointOptions { save, resume }))
}

/// Parses `soak [N] [--seed S] [--threads T] [--out FILE]` into a
/// harness config plus the report path (default `results/SOAK.json`).
pub fn soak_config(argv: &[String]) -> Result<(pipefisher_harness::SoakConfig, String), String> {
    let mut cfg = pipefisher_harness::SoakConfig::default();
    if let Some(first) = argv.first().filter(|a| !a.starts_with("--")) {
        cfg.scenarios = first
            .parse()
            .map_err(|_| format!("bad scenario count '{first}'"))?;
    }
    if let Some(s) = flag_value(argv, "--seed") {
        cfg.base_seed = s.parse().map_err(|_| format!("bad --seed '{s}'"))?;
    }
    if let Some(t) = flag_value(argv, "--threads") {
        let n: usize = t.parse().map_err(|_| format!("bad --threads '{t}'"))?;
        if n == 0 {
            return Err("--threads must be >= 1".into());
        }
        cfg.threads_override = Some(n);
    }
    let out = flag_value(argv, "--out")
        .unwrap_or("results/SOAK.json")
        .to_string();
    Ok((cfg, out))
}

/// Builds the validated task graph a `<scheme> <D> <N_micro>` argument
/// prefix describes, honoring `--recompute`, `--virtual V` (interleaved),
/// and `--steps K` (async). Shared by `schedule` and `trace`.
pub fn graph(argv: &[String]) -> Result<TaskGraph, String> {
    let d = int(argv, 1, "D")?;
    let n = int(argv, 2, "N_micro")?;
    if let Some(name @ ("gpipe" | "1f1b" | "chimera")) = argv.first().map(String::as_str) {
        validate_scheme_shape(scheme(name)?, d, n)?;
    }
    let mut graph = match argv.first().map(String::as_str) {
        Some("interleaved") => {
            let v = flag_value(argv, "--virtual")
                .map(|s| s.parse().map_err(|_| format!("bad --virtual '{s}'")))
                .transpose()?
                .unwrap_or(2);
            build_interleaved_1f1b(d, n, v)
        }
        Some("async") => {
            let steps = flag_value(argv, "--steps")
                .map(|s| s.parse().map_err(|_| format!("bad --steps '{s}'")))
                .transpose()?
                .unwrap_or(4);
            build_async_1f1b(d, n, steps)
        }
        Some(name) => scheme(name)?.build(d, n),
        None => {
            return Err("missing <scheme> (gpipe | 1f1b | chimera | interleaved | async)".into())
        }
    };
    if has_flag(argv, "--recompute") {
        graph = with_recompute(&graph);
    }
    graph.validate().map_err(|e| e.to_string())?;
    Ok(graph)
}

/// Writes `text` to `path`, mapping IO errors to CLI error strings.
pub fn write_file(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("writing '{path}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names() {
        assert!(scheme("chimera").is_ok());
        assert!(scheme("nope").is_err());
        assert_eq!(arch("t5-large").unwrap().seq_len, 512);
        assert_eq!(hardware("v100").unwrap().name, "V100");
    }

    #[test]
    fn parses_ints_and_flags() {
        let args: Vec<String> = ["8", "--json", "--seed", "42"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(int(&args, 0, "d").unwrap(), 8);
        assert!(int(&args, 9, "d").is_err());
        assert!(has_flag(&args, "--json"));
        assert!(!has_flag(&args, "--quiet"));
        assert_eq!(flag_value(&args, "--seed"), Some("42"));
        assert_eq!(flag_value(&args, "--nope"), None);
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn train_pipeline_round_trips_every_flag_combination() {
        // No pipeline flags at all → single-thread loop.
        assert_eq!(train_pipeline(&argv(&["kfac", "100"])).unwrap(), None);
        // Defaults: gpipe, 4 micro-batches, bubbles filled.
        assert_eq!(
            train_pipeline(&argv(&["kfac", "100", "--pipeline-stages", "2"])).unwrap(),
            Some(TrainPipeline {
                scheme: PipelineScheme::GPipe,
                stages: 2,
                n_micro: 4,
                fill_bubbles: true,
            })
        );
        // Every flag at once.
        assert_eq!(
            train_pipeline(&argv(&[
                "kfac",
                "100",
                "--pipeline-stages",
                "4",
                "--scheme",
                "chimera",
                "--micro-batches",
                "8",
                "--no-fill",
            ]))
            .unwrap(),
            Some(TrainPipeline {
                scheme: PipelineScheme::Chimera,
                stages: 4,
                n_micro: 8,
                fill_bubbles: false,
            })
        );
        for scheme_name in ["gpipe", "1f1b", "chimera"] {
            let parsed = train_pipeline(&argv(&[
                "lamb",
                "10",
                "--pipeline-stages",
                "2",
                "--scheme",
                scheme_name,
                "--micro-batches",
                "2",
            ]))
            .unwrap()
            .unwrap();
            assert_eq!(parsed.scheme, scheme(scheme_name).unwrap());
        }
    }

    #[test]
    fn train_pipeline_rejects_invalid_pairs() {
        // Chimera with an odd stage or micro-batch count.
        for bad in [
            argv(&["kfac", "9", "--pipeline-stages", "3", "--scheme", "chimera"]),
            argv(&[
                "kfac",
                "9",
                "--pipeline-stages",
                "2",
                "--scheme",
                "chimera",
                "--micro-batches",
                "3",
            ]),
        ] {
            let err = train_pipeline(&bad).unwrap_err();
            assert!(err.contains("chimera"), "unhelpful error: {err}");
        }
        // Zero counts, junk numbers, unknown scheme.
        assert!(train_pipeline(&argv(&["kfac", "9", "--pipeline-stages", "0"])).is_err());
        assert!(train_pipeline(&argv(&[
            "kfac",
            "9",
            "--pipeline-stages",
            "2",
            "--micro-batches",
            "0"
        ]))
        .is_err());
        assert!(train_pipeline(&argv(&["kfac", "9", "--pipeline-stages", "two"])).is_err());
        assert!(train_pipeline(&argv(&[
            "kfac",
            "9",
            "--pipeline-stages",
            "2",
            "--scheme",
            "zigzag"
        ]))
        .is_err());
        // Pipeline flags without --pipeline-stages are not silently ignored.
        assert!(train_pipeline(&argv(&["kfac", "9", "--scheme", "gpipe"])).is_err());
        assert!(train_pipeline(&argv(&["kfac", "9", "--micro-batches", "4"])).is_err());
        assert!(train_pipeline(&argv(&["kfac", "9", "--no-fill"])).is_err());
    }

    #[test]
    fn graph_rejects_odd_chimera_instead_of_panicking() {
        assert!(graph(&argv(&["chimera", "3", "4"])).is_err());
        assert!(graph(&argv(&["chimera", "4", "3"])).is_err());
        assert!(graph(&argv(&["chimera", "4", "4"])).is_ok());
        assert!(graph(&argv(&["gpipe", "3", "5"])).is_ok());
    }

    #[test]
    fn graph_round_trips_schedule_flags() {
        assert!(graph(&argv(&["1f1b", "4", "8", "--recompute"])).is_ok());
        assert!(graph(&argv(&["interleaved", "4", "8", "--virtual", "2"])).is_ok());
        assert!(graph(&argv(&["async", "2", "4", "--steps", "3"])).is_ok());
        assert!(graph(&argv(&["interleaved", "4", "8", "--virtual", "x"])).is_err());
        assert!(graph(&argv(&["async", "2", "4", "--steps", "x"])).is_err());
        assert!(graph(&argv(&["nope", "2", "4"])).is_err());
        assert!(graph(&argv(&[])).is_err());
    }

    #[test]
    fn train_checkpoint_round_trips_every_flag() {
        use pipefisher_lm::ResumeFrom;
        // No checkpoint flags → plain run.
        assert!(train_checkpoint(&argv(&["kfac", "9"])).unwrap().is_none());
        // Save-only, defaults: final-step-only saves, retain 3.
        let opts = train_checkpoint(&argv(&["kfac", "9", "--checkpoint-dir", "ck"]))
            .unwrap()
            .unwrap();
        let policy = opts.save.unwrap();
        assert_eq!(policy.dir, std::path::PathBuf::from("ck"));
        assert_eq!((policy.every, policy.retain), (0, 3));
        assert!(opts.resume.is_none());
        // Every flag at once; `--resume latest` resolves against the dir.
        let opts = train_checkpoint(&argv(&[
            "kfac",
            "9",
            "--checkpoint-dir",
            "ck",
            "--checkpoint-every",
            "2",
            "--checkpoint-retain",
            "5",
            "--resume",
            "latest",
        ]))
        .unwrap()
        .unwrap();
        let policy = opts.save.unwrap();
        assert_eq!((policy.every, policy.retain), (2, 5));
        assert!(matches!(
            opts.resume,
            Some(ResumeFrom::Latest(d)) if d == std::path::Path::new("ck")
        ));
        // Resume from an explicit file needs no save dir.
        let opts = train_checkpoint(&argv(&["kfac", "9", "--resume", "x.pfck"]))
            .unwrap()
            .unwrap();
        assert!(opts.save.is_none());
        assert!(matches!(
            opts.resume,
            Some(ResumeFrom::Path(p)) if p == std::path::Path::new("x.pfck")
        ));
    }

    #[test]
    fn train_checkpoint_rejects_orphan_and_bad_flags() {
        for bad in [
            argv(&["kfac", "9", "--checkpoint-every", "2"]),
            argv(&["kfac", "9", "--checkpoint-retain", "2"]),
            argv(&["kfac", "9", "--resume", "latest"]),
            argv(&[
                "kfac",
                "9",
                "--checkpoint-dir",
                "ck",
                "--checkpoint-every",
                "x",
            ]),
            argv(&[
                "kfac",
                "9",
                "--checkpoint-dir",
                "ck",
                "--checkpoint-retain",
                "0",
            ]),
        ] {
            assert!(train_checkpoint(&bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn soak_config_round_trips_every_flag() {
        // Defaults.
        let (cfg, out) = soak_config(&argv(&[])).unwrap();
        assert_eq!(cfg.scenarios, 32);
        assert_eq!(cfg.base_seed, 0);
        assert_eq!(out, "results/SOAK.json");
        // Positional count plus every flag.
        let (cfg, out) = soak_config(&argv(&[
            "64",
            "--seed",
            "17",
            "--threads",
            "2",
            "--out",
            "X.json",
        ]))
        .unwrap();
        assert_eq!(cfg.scenarios, 64);
        assert_eq!(cfg.base_seed, 17);
        assert_eq!(cfg.threads_override, Some(2));
        assert_eq!(out, "X.json");
        // Invalid values.
        assert!(soak_config(&argv(&["lots"])).is_err());
        assert!(soak_config(&argv(&["--seed", "x"])).is_err());
        assert!(soak_config(&argv(&["--threads", "0"])).is_err());
        assert!(soak_config(&argv(&["--threads", "x"])).is_err());
    }
}
