//! Tiny argument-parsing helpers shared by the subcommands.

use pipefisher_perfmodel::{HardwareProfile, TransformerConfig};
use pipefisher_pipeline::{
    build_async_1f1b, build_interleaved_1f1b, with_recompute, PipelineScheme, TaskGraph,
};

/// Parses a pipeline scheme name.
pub fn scheme(s: &str) -> Result<PipelineScheme, String> {
    match s {
        "gpipe" => Ok(PipelineScheme::GPipe),
        "1f1b" => Ok(PipelineScheme::OneFOneB),
        "chimera" => Ok(PipelineScheme::Chimera),
        other => Err(format!("unknown scheme '{other}' (gpipe | 1f1b | chimera)")),
    }
}

/// Parses an architecture name (Table 3).
pub fn arch(s: &str) -> Result<TransformerConfig, String> {
    match s {
        "bert-base" => Ok(TransformerConfig::bert_base()),
        "bert-large" => Ok(TransformerConfig::bert_large()),
        "t5-base" => Ok(TransformerConfig::t5_base()),
        "t5-large" => Ok(TransformerConfig::t5_large()),
        "opt-125m" => Ok(TransformerConfig::opt_125m()),
        "opt-350m" => Ok(TransformerConfig::opt_350m()),
        other => Err(format!(
            "unknown architecture '{other}' (bert-base | bert-large | t5-base | t5-large | opt-125m | opt-350m)"
        )),
    }
}

/// Parses a hardware profile name.
pub fn hardware(s: &str) -> Result<HardwareProfile, String> {
    match s {
        "p100" => Ok(HardwareProfile::p100()),
        "v100" => Ok(HardwareProfile::v100()),
        "rtx3090" => Ok(HardwareProfile::rtx3090()),
        other => Err(format!(
            "unknown hardware '{other}' (p100 | v100 | rtx3090)"
        )),
    }
}

/// Parses a positional integer argument.
pub fn int(args: &[String], idx: usize, name: &str) -> Result<usize, String> {
    let raw = args
        .get(idx)
        .ok_or_else(|| format!("missing argument <{name}>"))?;
    raw.parse()
        .map_err(|_| format!("<{name}> must be a number, got '{raw}'"))
}

/// Whether a `--flag` is present anywhere in the arguments.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Value of a `--key value` pair, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Builds the validated task graph a `<scheme> <D> <N_micro>` argument
/// prefix describes, honoring `--recompute`, `--virtual V` (interleaved),
/// and `--steps K` (async). Shared by `schedule` and `trace`.
pub fn graph(argv: &[String]) -> Result<TaskGraph, String> {
    let d = int(argv, 1, "D")?;
    let n = int(argv, 2, "N_micro")?;
    let mut graph = match argv.first().map(String::as_str) {
        Some("interleaved") => {
            let v = flag_value(argv, "--virtual")
                .map(|s| s.parse().map_err(|_| format!("bad --virtual '{s}'")))
                .transpose()?
                .unwrap_or(2);
            build_interleaved_1f1b(d, n, v)
        }
        Some("async") => {
            let steps = flag_value(argv, "--steps")
                .map(|s| s.parse().map_err(|_| format!("bad --steps '{s}'")))
                .transpose()?
                .unwrap_or(4);
            build_async_1f1b(d, n, steps)
        }
        Some(name) => scheme(name)?.build(d, n),
        None => {
            return Err("missing <scheme> (gpipe | 1f1b | chimera | interleaved | async)".into())
        }
    };
    if has_flag(argv, "--recompute") {
        graph = with_recompute(&graph);
    }
    graph.validate().map_err(|e| e.to_string())?;
    Ok(graph)
}

/// Writes `text` to `path`, mapping IO errors to CLI error strings.
pub fn write_file(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("writing '{path}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names() {
        assert!(scheme("chimera").is_ok());
        assert!(scheme("nope").is_err());
        assert_eq!(arch("t5-large").unwrap().seq_len, 512);
        assert_eq!(hardware("v100").unwrap().name, "V100");
    }

    #[test]
    fn parses_ints_and_flags() {
        let args: Vec<String> = ["8", "--json", "--seed", "42"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(int(&args, 0, "d").unwrap(), 8);
        assert!(int(&args, 9, "d").is_err());
        assert!(has_flag(&args, "--json"));
        assert!(!has_flag(&args, "--quiet"));
        assert_eq!(flag_value(&args, "--seed"), Some("42"));
        assert_eq!(flag_value(&args, "--nope"), None);
    }
}
