//! `pipefisher assign` — run the bubble assignment for a paper-style setting.

use crate::args;
use pipefisher_core::{assign, PipeFisherConfig};
use pipefisher_perfmodel::{stage_costs, stage_memory};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::ring_allreduce_time;
use serde_json::json;

pub fn run(args: &[String]) -> Result<(), String> {
    let scheme = args::scheme(args.first().map(String::as_str).unwrap_or(""))?;
    let arch = args::arch(args.get(1).map(String::as_str).unwrap_or(""))?;
    let hw = args::hardware(args.get(2).map(String::as_str).unwrap_or(""))?;
    let d = args::int(args, 3, "D")?;
    let b_micro = args::int(args, 4, "B_micro")?;
    let blocks = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(1);
    let w = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(1);
    let recompute = args::has_flag(args, "--recompute");
    let json_out = args::has_flag(args, "--json");

    let mut costs = stage_costs(&arch, &hw, blocks, b_micro, recompute);
    let mem = stage_memory(&arch, blocks, b_micro, recompute);
    let replicas = w * if scheme == PipelineScheme::Chimera {
        2
    } else {
        1
    };
    costs.t_sync_grad =
        ring_allreduce_time(mem.m_theta, replicas, hw.link_bandwidth, hw.link_latency);
    costs.t_sync_curv = ring_allreduce_time(
        2.0 * mem.m_curv,
        replicas,
        hw.link_bandwidth,
        hw.link_latency,
    );

    let schedule = assign(&PipeFisherConfig {
        scheme,
        d,
        n_micro: d,
        w,
        costs,
        max_steps: 128,
        chimera_pair_parallelism: scheme == PipelineScheme::Chimera,
        recompute,
        granularity: blocks * 6, // per-layer chunks
    })
    .map_err(|e| e.to_string())?;

    if let Some(path) = args::flag_value(args, "--trace-out") {
        // Assignment timelines are in seconds; trace timestamps are µs.
        let json =
            serde_json::to_string_pretty(&schedule.augmented_timeline.chrome_trace_json(1e6))
                .expect("json");
        args::write_file(path, &json)?;
        eprintln!("wrote Chrome trace of the filled timeline to {path}");
    }

    if json_out {
        let out = json!({
            "scheme": scheme.name(),
            "arch": arch.name,
            "hw": hw.name,
            "d": d,
            "b_micro": b_micro,
            "blocks_per_stage": blocks,
            "w": w,
            "recompute": recompute,
            "t_step_baseline_ms": schedule.t_step_baseline * 1e3,
            "t_step_ms": schedule.t_step * 1e3,
            "utilization_baseline": schedule.utilization_baseline,
            "utilization_steady": schedule.steady_utilization,
            "refresh_steps_steady": schedule.steady_refresh_steps,
            "refresh_steps_cold": schedule.refresh_steps,
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
        return Ok(());
    }

    println!(
        "{} / {} on {} — D={d}, B_micro={b_micro}, {blocks} block(s)/stage, W={w}",
        scheme.name(),
        arch.name,
        hw.name
    );
    println!(
        "baseline:   step {:.1} ms, utilization {:.1}%",
        schedule.t_step_baseline * 1e3,
        schedule.utilization_baseline * 100.0
    );
    println!(
        "PipeFisher: step {:.1} ms (+{:.1}%), utilization {:.1}% steady ({:.1}% cold)",
        schedule.t_step * 1e3,
        (schedule.t_step / schedule.t_step_baseline - 1.0) * 100.0,
        schedule.steady_utilization * 100.0,
        schedule.utilization * 100.0
    );
    println!(
        "curvature refresh: every {:.1} steps steady ({} cold-start)",
        schedule.steady_refresh_steps, schedule.refresh_steps
    );
    print!("{}", schedule.augmented_timeline.render_ascii(100));
    Ok(())
}
