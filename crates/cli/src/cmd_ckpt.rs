//! `pipefisher ckpt` — checkpoint-file utilities.
//!
//! `ckpt inspect <PATH>` validates a checkpoint (magic, version, table and
//! per-section CRCs) and prints its section table plus the decoded training
//! metadata. `PATH` may be a `.pfck` file or a checkpoint directory, in
//! which case the newest generation is inspected.

use pipefisher_ckpt::{read_snapshot, CheckpointDir};
use pipefisher_lm::TrainCheckpoint;
use std::path::PathBuf;

pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("inspect") => inspect(args.get(1).ok_or("missing <PATH> to inspect")?),
        other => Err(format!("unknown ckpt subcommand {other:?} (inspect)")),
    }
}

fn inspect(raw: &str) -> Result<(), String> {
    let mut path = PathBuf::from(raw);
    if path.is_dir() {
        let dir = CheckpointDir::create(&path, usize::MAX).map_err(|e| e.to_string())?;
        let gens = dir.generations().map_err(|e| e.to_string())?;
        println!(
            "directory {} — {} generation(s): {:?}",
            path.display(),
            gens.len(),
            gens
        );
        path = dir
            .latest()
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no checkpoints in {}", path.display()))?;
    }
    let snap = read_snapshot(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let infos = snap.section_infos();
    println!(
        "{} — valid (format v1, {} sections, all CRCs match)",
        path.display(),
        infos.len()
    );
    println!("{:<12} {:>12}  {:>10}", "SECTION", "BYTES", "CRC32");
    for info in &infos {
        println!("{:<12} {:>12}  {:>#10x}", info.name, info.bytes, info.crc32);
    }
    match TrainCheckpoint::from_snapshot(&snap) {
        Ok(tc) => {
            println!(
                "training state: resumes at step {}, optimizer {}, rng {:016x?}",
                tc.next_step, tc.optimizer_label, tc.rng
            );
        }
        Err(e) => println!("not a training checkpoint ({e})"),
    }
    Ok(())
}
