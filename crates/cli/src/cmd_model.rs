//! `pipefisher model` — evaluate the §3.3 closed-form step model.

use crate::args;
use pipefisher_perfmodel::{model_step, stage_costs, stage_memory, StepModelInput};
use pipefisher_pipeline::PipelineScheme;
use serde_json::json;

pub fn run(args: &[String]) -> Result<(), String> {
    let arch = args::arch(args.first().map(String::as_str).unwrap_or(""))?;
    let hw = args::hardware(args.get(1).map(String::as_str).unwrap_or(""))?;
    let d = args::int(args, 2, "D")?;
    let b_micro = args::int(args, 3, "B_micro")?;
    let json_out = args::has_flag(args, "--json");

    let mut rows = Vec::new();
    for scheme in PipelineScheme::all() {
        let m = model_step(&StepModelInput {
            scheme,
            d,
            n_micro: d,
            b_micro,
            w: 1,
            costs: stage_costs(&arch, &hw, 1, b_micro, false),
            memory: stage_memory(&arch, 1, b_micro, false),
            hw: hw.clone(),
        });
        rows.push((scheme, m));
    }

    if json_out {
        let out: Vec<_> = rows
            .iter()
            .map(|(scheme, m)| {
                json!({
                    "scheme": scheme.name(),
                    "t_pipe_ms": m.t_pipe * 1e3,
                    "t_bubble_ms": m.t_bubble * 1e3,
                    "t_prec_ms": m.t_prec * 1e3,
                    "throughput_seq_per_s": m.throughput,
                    "throughput_baseline_seq_per_s": m.throughput_baseline,
                    "ratio": m.ratio,
                    "memory_gb": (m.m_pipe + m.m_kfac_extra) / 1e9,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
        return Ok(());
    }

    println!(
        "{} on {} — D={d} (1 block/stage), N_micro={d}, B_micro={b_micro}",
        arch.name, hw.name
    );
    println!(
        "{:<10} | {:>10} {:>11} {:>10} {:>8} {:>9}",
        "scheme", "step (ms)", "bubble (ms)", "thru", "ratio", "mem (GB)"
    );
    for (scheme, m) in rows {
        println!(
            "{:<10} | {:>10.1} {:>11.1} {:>10.1} {:>8.2} {:>9.2}",
            scheme.name(),
            m.t_step_pipefisher * 1e3,
            m.t_bubble * 1e3,
            m.throughput,
            m.ratio,
            (m.m_pipe + m.m_kfac_extra) / 1e9
        );
    }
    Ok(())
}
