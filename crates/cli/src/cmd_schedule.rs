//! `pipefisher schedule` — render a pipeline schedule.

use crate::args;
use pipefisher_pipeline::{build_async_1f1b, build_interleaved_1f1b, with_recompute};
use pipefisher_sim::{simulate, UniformCost};

pub fn run(argv: &[String]) -> Result<(), String> {
    let d = args::int(argv, 1, "D")?;
    let n = args::int(argv, 2, "N_micro")?;
    let recompute = args::has_flag(argv, "--recompute");
    let csv = args::has_flag(argv, "--csv");

    let mut graph = match argv.first().map(String::as_str) {
        Some("interleaved") => {
            let v = args::flag_value(argv, "--virtual")
                .map(|s| s.parse().map_err(|_| format!("bad --virtual '{s}'")))
                .transpose()?
                .unwrap_or(2);
            build_interleaved_1f1b(d, n, v)
        }
        Some("async") => {
            let steps = args::flag_value(argv, "--steps")
                .map(|s| s.parse().map_err(|_| format!("bad --steps '{s}'")))
                .transpose()?
                .unwrap_or(4);
            build_async_1f1b(d, n, steps)
        }
        Some(name) => args::scheme(name)?.build(d, n),
        None => {
            return Err("missing <scheme> (gpipe | 1f1b | chimera | interleaved | async)".into())
        }
    };
    if recompute {
        graph = with_recompute(&graph);
    }
    graph.validate().map_err(|e| e.to_string())?;
    let tl = simulate(&graph, &UniformCost::new(1.0, 2.0)).map_err(|e| e.to_string())?;
    if csv {
        print!("{}", tl.to_csv());
        return Ok(());
    }
    println!(
        "{} — D={d}, N_micro={n}{} (T_f=1, T_b=2)",
        graph.scheme_name(),
        if recompute { ", recompute" } else { "" }
    );
    print!("{}", tl.render_ascii(100));
    println!(
        "makespan {:.1}, utilization {:.1}%, total bubble {:.1}",
        tl.makespan(),
        tl.utilization() * 100.0,
        tl.total_bubble(tl.makespan())
    );
    Ok(())
}
