//! `pipefisher schedule` — render a pipeline schedule.

use crate::args;
use pipefisher_sim::{simulate, UniformCost};

pub fn run(argv: &[String]) -> Result<(), String> {
    let d = args::int(argv, 1, "D")?;
    let n = args::int(argv, 2, "N_micro")?;
    let recompute = args::has_flag(argv, "--recompute");
    let csv = args::has_flag(argv, "--csv");

    let graph = args::graph(argv)?;
    let tl = simulate(&graph, &UniformCost::new(1.0, 2.0)).map_err(|e| e.to_string())?;
    if let Some(path) = args::flag_value(argv, "--trace-out") {
        // Simulated units are abstract; render one unit as 1 ms.
        let json = serde_json::to_string_pretty(&tl.chrome_trace_json(1000.0)).expect("json");
        args::write_file(path, &json)?;
        eprintln!("wrote Chrome trace to {path} (open in ui.perfetto.dev)");
    }
    if csv {
        print!("{}", tl.to_csv());
        return Ok(());
    }
    println!(
        "{} — D={d}, N_micro={n}{} (T_f=1, T_b=2)",
        graph.scheme_name(),
        if recompute { ", recompute" } else { "" }
    );
    print!("{}", tl.render_ascii(100));
    println!(
        "makespan {:.1}, utilization {:.1}%, total bubble {:.1}",
        tl.makespan(),
        tl.utilization() * 100.0,
        tl.total_bubble(tl.makespan())
    );
    Ok(())
}
