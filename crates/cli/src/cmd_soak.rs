//! `pipefisher soak` — run a block of seeded chaos scenarios through the
//! conformance harness and write a `SOAK.json` report.

use crate::args;
use pipefisher_harness::{run_soak, soak_report_json};

pub fn run(argv: &[String]) -> Result<(), String> {
    let (cfg, out) = args::soak_config(argv)?;
    let summary = run_soak(&cfg);
    let json = serde_json::to_string_pretty(&soak_report_json(&cfg, &summary)).expect("soak json");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("creating '{out}': {e}"))?;
        }
    }
    args::write_file(&out, &json)?;
    eprintln!(
        "soak: {} scenarios (seeds {}..{}), {} clean, {} faulted-as-expected, \
         {} events conform, {} oracles trained — report in {out}",
        summary.total,
        cfg.base_seed,
        cfg.base_seed + summary.total as u64,
        summary.clean,
        summary.faulted,
        summary.events_checked,
        summary.oracles,
    );
    if summary.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} scenario(s) violated the harness contract; each failure above \
             embeds its reproducing seed (replay with `pipefisher soak 1 --seed <seed>`)",
            summary.failures.len()
        ))
    }
}
