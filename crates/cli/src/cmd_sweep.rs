//! `pipefisher sweep` — refresh-ratio sweep across D, B_micro, hardware.

use crate::args;
use pipefisher_perfmodel::{
    model_step, stage_costs, stage_memory, HardwareProfile, StepModelInput,
};
use pipefisher_pipeline::PipelineScheme;
use serde_json::json;

pub fn run(args: &[String]) -> Result<(), String> {
    let arch = args::arch(args.first().map(String::as_str).unwrap_or(""))?;
    let json_out = args::has_flag(args, "--json");

    let mut records = Vec::new();
    for hw in HardwareProfile::all() {
        for d in [4usize, 8, 16, 32] {
            for b_micro in [1usize, 4, 16, 32] {
                let m = model_step(&StepModelInput {
                    scheme: PipelineScheme::Chimera,
                    d,
                    n_micro: d,
                    b_micro,
                    w: 1,
                    costs: stage_costs(&arch, &hw, 1, b_micro, false),
                    memory: stage_memory(&arch, 1, b_micro, false),
                    hw: hw.clone(),
                });
                records.push((hw.name.clone(), d, b_micro, m.throughput, m.ratio));
            }
        }
    }

    if json_out {
        let out: Vec<_> = records
            .iter()
            .map(|(hw, d, b, thru, ratio)| {
                json!({"hw": hw, "d": d, "b_micro": b, "throughput": thru, "ratio": ratio})
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
        return Ok(());
    }

    println!("{} — Chimera, one block/stage, N_micro=D", arch.name);
    println!(
        "{:>8} {:>4} {:>8} | {:>10} {:>7}",
        "hw", "D", "B_micro", "thru", "ratio"
    );
    for (hw, d, b, thru, ratio) in records {
        println!(
            "{:>8} {:>4} {:>8} | {:>10.1} {:>7.2}",
            hw, d, b, thru, ratio
        );
    }
    Ok(())
}
