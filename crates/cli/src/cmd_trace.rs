//! `pipefisher trace` — export a simulated pipeline step as a
//! Chrome/Perfetto trace.
//!
//! The JSON written here opens directly in `ui.perfetto.dev` or
//! `chrome://tracing`: one track per device, slices color-coded by work
//! kind, idle time as explicit `bubble` slices — the reproduction's version
//! of the paper's Nsight profile (Fig. 3).

use crate::args;
use pipefisher_sim::{simulate, UniformCost};

pub fn run(argv: &[String]) -> Result<(), String> {
    let graph = args::graph(argv)?;
    let t_f: f64 = args::flag_value(argv, "--t-f")
        .map(|s| s.parse().map_err(|_| format!("bad --t-f '{s}'")))
        .transpose()?
        .unwrap_or(1.0);
    let t_b: f64 = args::flag_value(argv, "--t-b")
        .map(|s| s.parse().map_err(|_| format!("bad --t-b '{s}'")))
        .transpose()?
        .unwrap_or(2.0 * t_f);
    let unit_us: f64 = args::flag_value(argv, "--unit-us")
        .map(|s| s.parse().map_err(|_| format!("bad --unit-us '{s}'")))
        .transpose()?
        .unwrap_or(1000.0);
    if unit_us <= 0.0 {
        return Err("--unit-us must be positive".into());
    }

    let tl = simulate(&graph, &UniformCost::new(t_f, t_b)).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&tl.chrome_trace_json(unit_us)).expect("json");
    match args::flag_value(argv, "--out") {
        Some(path) => {
            args::write_file(path, &json)?;
            eprintln!(
                "wrote {} intervals over {} devices to {path} (open in ui.perfetto.dev)",
                tl.intervals().len(),
                tl.n_devices()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}
