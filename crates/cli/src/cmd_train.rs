//! `pipefisher train` — pretrain a tiny BERT on the synthetic language.

use crate::args;
use pipefisher_lm::{
    BatchSampler, OptimizerChoice, PipelineOptions, SyntheticLanguage, TrainOptions, Trainer,
};
use pipefisher_nn::{BertConfig, BertForPreTraining};
use pipefisher_optim::{KfacConfig, LrSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(args: &[String]) -> Result<(), String> {
    let choice = match args.first().map(String::as_str) {
        Some("lamb") => OptimizerChoice::Lamb { weight_decay: 0.01 },
        Some("kfac") => OptimizerChoice::Kfac {
            weight_decay: 0.01,
            kfac: KfacConfig {
                damping: 3e-2,
                ema_decay: 0.5,
                curvature_interval: 3,
                inversion_interval: 3,
                kl_clip: Some(1e-2),
                factor_block_size: None,
            },
        },
        other => return Err(format!("unknown optimizer {other:?} (lamb | kfac)")),
    };
    let steps = args::int(args, 1, "steps")?;
    let seed: u64 = args::flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(42);
    let trace_out = args::flag_value(args, "--trace-out");
    let metrics_out = args::flag_value(args, "--metrics-out");
    match args::flag_value(args, "--workspace") {
        Some("on") => pipefisher_tensor::workspace::set_enabled(true),
        Some("off") => pipefisher_tensor::workspace::set_enabled(false),
        Some(other) => return Err(format!("bad --workspace '{other}' (on | off)")),
        None => {} // PIPEFISHER_WORKSPACE (default: on) decides
    }
    if trace_out.is_some() {
        pipefisher_trace::set_enabled(true);
    }

    let lang = SyntheticLanguage::new(68, 4, 4, 7);
    let sampler = BatchSampler::new(lang, 16);
    let warmup = if matches!(choice, OptimizerChoice::Kfac { .. }) {
        steps / 12 // the paper's shortened K-FAC warmup (600 vs 2000)
    } else {
        steps * 3 / 10
    };
    let schedule = LrSchedule::PolyWithWarmup {
        base_lr: 1e-2,
        warmup_steps: warmup.max(1),
        total_steps: steps,
        power: 0.5,
    };
    let pipeline = args::train_pipeline(args)?;
    let ckpt = args::train_checkpoint(args)?;

    let mut trainer = Trainer::new(sampler, 16, schedule, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = BertForPreTraining::new(BertConfig::tiny(68, 16), 0.0, &mut rng);
    let run = if let Some(p) = pipeline {
        let mut opts = PipelineOptions::new(p.scheme, p.stages, p.n_micro);
        opts.fill_bubbles = p.fill_bubbles;
        if let Some(c) = &ckpt {
            opts.checkpoint = c.save.clone();
            opts.resume = c.resume.clone();
        }
        let outcome = trainer
            .run_pipelined(model, &choice, steps, &opts)
            .map_err(|e| e.to_string())?;
        let busy = outcome.bubble_aux_ms + outcome.bubble_idle_ms;
        eprintln!(
            "pipeline: {} stages, {} micro-batches, scheme {}, bubbles \
             {:.0} ms ({:.0}% filled with K-FAC work, {:.0} ms tail)",
            p.stages,
            p.n_micro,
            p.scheme.name(),
            busy,
            if busy > 0.0 {
                100.0 * outcome.bubble_aux_ms / busy
            } else {
                0.0
            },
            outcome.tail_aux_ms,
        );
        drop(outcome.model); // trained weights; the CLI only reports losses
        outcome.run
    } else if let Some(c) = &ckpt {
        trainer
            .run_checkpointed(
                &mut model,
                &choice,
                steps,
                &TrainOptions {
                    accumulation_steps: 1,
                    grad_delay: 0,
                },
                c,
            )
            .map_err(|e| e.to_string())?
    } else {
        trainer.run(&mut model, &choice, steps)
    };
    if let Some(policy) = ckpt.as_ref().and_then(|c| c.save.as_ref()) {
        eprintln!(
            "checkpoints in {} (every {} step(s), retain {})",
            policy.dir.display(),
            policy.every,
            policy.retain
        );
    }
    if trace_out.is_some() {
        pipefisher_trace::set_enabled(false);
    }
    if let Some(path) = trace_out {
        let events = pipefisher_trace::drain();
        let json = serde_json::to_string_pretty(&pipefisher_trace::chrome_trace_json(&events))
            .expect("json");
        args::write_file(path, &json)?;
        eprintln!(
            "wrote {} wall-clock trace events to {path} (open in ui.perfetto.dev)",
            events.len()
        );
    }
    if let Some(path) = metrics_out {
        args::write_file(path, &pipefisher_lm::to_jsonl(&run.metrics))?;
        eprintln!("wrote {} StepMetrics rows to {path}", run.metrics.len());
    }
    let sm = run.smoothed(9);
    // A resumed run only records losses from its restart step onward.
    let first = steps - sm.len();
    println!("{} — {} steps (warmup {})", run.label, steps, warmup.max(1));
    if sm.is_empty() {
        println!("nothing to run: the resumed checkpoint had already completed");
        return Ok(());
    }
    for i in (0..sm.len()).step_by((sm.len() / 20).max(1)) {
        println!("step {:>5}: loss {:.4}", first + i, sm[i]);
    }
    println!("final smoothed loss: {:.4}", run.final_loss(9));
    Ok(())
}
