//! `pipefisher` — command-line interface to the PipeFisher reproduction.
//!
//! ```text
//! pipefisher schedule <scheme> <D> <N_micro> [--recompute] [--csv] [--trace-out FILE]
//! pipefisher trace    <scheme> <D> <N_micro> [--t-f T] [--t-b T] [--out FILE]
//! pipefisher assign   <gpipe|1f1b|chimera> <arch> <hw> <D> <B_micro> [blocks] [W] [--json]
//! pipefisher model    <arch> <hw> <D> <B_micro> [--json]
//! pipefisher train    <lamb|kfac> <steps> [--seed N] [--trace-out FILE] [--metrics-out FILE] [--workspace on|off]
//!                     [--pipeline-stages D] [--scheme S] [--micro-batches N] [--no-fill]
//! pipefisher soak     [N] [--seed S] [--threads T] [--out FILE]
//! pipefisher sweep    <arch> [--json]
//! ```

mod args;
mod cmd_assign;
mod cmd_ckpt;
mod cmd_model;
mod cmd_schedule;
mod cmd_soak;
mod cmd_sweep;
mod cmd_trace;
mod cmd_train;

use std::process::ExitCode;

const USAGE: &str = "\
pipefisher — fill pipeline bubbles with second-order optimizer work

USAGE:
    pipefisher schedule <gpipe|1f1b|chimera|interleaved|async> <D> <N_micro>
                        [--recompute] [--csv] [--virtual V] [--steps K]
                        [--trace-out FILE]
        Render a pipeline schedule as an ASCII timeline (or CSV); with
        --trace-out also write a Chrome/Perfetto trace of the timeline.

    pipefisher trace <gpipe|1f1b|chimera|interleaved|async> <D> <N_micro>
                     [--t-f T] [--t-b T] [--unit-us U] [--out FILE]
                     [--recompute] [--virtual V] [--steps K]
        Simulate a pipeline step and export it as Chrome trace JSON
        (openable in ui.perfetto.dev or chrome://tracing).

    pipefisher assign <gpipe|1f1b|chimera> <arch> <hw> <D> <B_micro> [blocks] [W]
                      [--json] [--trace-out FILE]
        Run PipeFisher's bubble assignment for a paper-style setting and
        report utilization, refresh interval, and the filled timeline.

    pipefisher model <arch> <hw> <D> <B_micro> [--json]
        Evaluate the closed-form §3.3 step model for all three schemes.

    pipefisher train <lamb|kfac> <steps> [--seed N] [--trace-out FILE]
                     [--metrics-out FILE] [--workspace on|off]
                     [--pipeline-stages D] [--scheme gpipe|1f1b|chimera]
                     [--micro-batches N] [--no-fill]
                     [--checkpoint-dir DIR] [--checkpoint-every N]
                     [--checkpoint-retain R] [--resume latest|PATH]
        Pretrain a tiny BERT on the synthetic language and print the loss
        curve; optionally record wall-clock trace spans and per-step
        metrics (JSONL). --workspace toggles the buffer-recycling arena
        (default on; also via PIPEFISHER_WORKSPACE). --pipeline-stages runs
        the step on D stage worker threads (scheme default gpipe, 4
        micro-batches), filling pipeline bubbles with K-FAC work; --no-fill
        serializes that work after the stage's pipeline work instead.
        Losses are bitwise identical to the single-thread loop either way.
        --checkpoint-dir writes crash-safe checkpoints every N steps
        (default: final step only; retain R newest, default 3); --resume
        restores one (latest = newest in --checkpoint-dir) and continues —
        the resumed run is bitwise identical to an uninterrupted one.

    pipefisher ckpt inspect <PATH>
        Validate a checkpoint file (magic, version, CRCs) and print its
        section table and training metadata; PATH may be a checkpoint
        directory (inspects the newest generation).

    pipefisher soak [N] [--seed S] [--threads T] [--out FILE]
        Run N seeded chaos scenarios (default 32, seeds S..S+N) against the
        pipeline executor: fault-free runs are checked for plan conformance
        and bitwise parity with the serial trainer, injected faults must
        surface as the right error. Writes a SOAK.json report (default
        results/SOAK.json); any failure embeds its reproducing seed.

    pipefisher sweep <arch> [--json]
        (curvature+inversion)/bubble ratio across D, B_micro, and hardware.

ARCHITECTURES: bert-base bert-large t5-base t5-large opt-125m opt-350m
HARDWARE:      p100 v100 rtx3090";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("schedule") => cmd_schedule::run(&argv[1..]),
        Some("trace") => cmd_trace::run(&argv[1..]),
        Some("assign") => cmd_assign::run(&argv[1..]),
        Some("model") => cmd_model::run(&argv[1..]),
        Some("train") => cmd_train::run(&argv[1..]),
        Some("ckpt") => cmd_ckpt::run(&argv[1..]),
        Some("soak") => cmd_soak::run(&argv[1..]),
        Some("sweep") => cmd_sweep::run(&argv[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
