//! The greedy bubble-filling assignment algorithm.

use pipefisher_pipeline::{with_recompute, Factor, PipelineScheme, WorkKind};
use pipefisher_sim::{simulate, Interval, KindCost, Timeline};
use std::error::Error;
use std::fmt;

/// Configuration of one PipeFisher assignment run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeFisherConfig {
    /// Pipeline scheme to fill.
    pub scheme: PipelineScheme,
    /// Number of pipeline stages `D`.
    pub d: usize,
    /// Micro-batches per device per step `N_micro`.
    pub n_micro: usize,
    /// Data-parallel replicas per stage `W` (1 = no data parallelism).
    /// With `W > 1`, inversion work is split across replicas and
    /// `sync-curvature`/`sync-grad` collectives are inserted (§3.2).
    pub w: usize,
    /// Per-stage work durations (from profiling or the performance model).
    /// `t_sync_grad`/`t_sync_curv` are only used when the stage has more
    /// than one replica (explicit `w > 1`, or Chimera's built-in pairing).
    pub costs: KindCost,
    /// Maximum steps the assignment may span before giving up.
    pub max_steps: usize,
    /// Chimera-only (§3.2 / Figure 4): each stage is hosted by *two*
    /// devices (one per bidirectional pipeline); when set, the inversion
    /// work of a stage is split between its two hosts and a
    /// `sync-curvature` allreduce is inserted between them. Ignored for
    /// GPipe/1F1B.
    pub chimera_pair_parallelism: bool,
    /// Schedule with activation recomputation (`R`): a `Recompute` task is
    /// inserted before every backward, the step lengthens, the bubbles
    /// grow, and curvature `A_l` work is released by the *recompute* (the
    /// forward's activations were not stored).
    pub recompute: bool,
    /// Number of independently schedulable chunks each stage's curvature
    /// and inversion work splits into — the paper's per-layer granularity
    /// (`A_l`/`B_l` are built and inverted layer by layer). Set this to the
    /// number of blocks per stage (or finer); `1` keeps whole-stage chunks.
    pub granularity: usize,
}

/// Assignment failures.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignError {
    /// The underlying pipeline schedule failed to build/simulate.
    Schedule(String),
    /// A work chunk is longer than every bubble of the step pattern, so the
    /// static schedule cannot hide it (the paper's implicit feasibility
    /// condition). Carries the chunk kind, its duration, and the largest
    /// available bubble.
    DoesNotFit {
        /// Kind of the unplaceable work.
        kind: WorkKind,
        /// Duration of the chunk.
        duration: f64,
        /// Longest bubble in the per-step pattern.
        largest_bubble: f64,
    },
    /// The queue did not drain within `max_steps` steps.
    HorizonExceeded {
        /// The configured horizon.
        max_steps: usize,
    },
    /// Plan lowering found a (stage, micro-batch) pair with no matching
    /// task in the graph: the assignment's task ids do not cover the work,
    /// which previously would have been silently skipped at execution time.
    MissingTask {
        /// The absent task's kind (forward or backward).
        kind: WorkKind,
        /// Stage with missing coverage.
        stage: usize,
        /// Micro-batch with missing coverage.
        micro_batch: usize,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::Schedule(e) => write!(f, "schedule error: {e}"),
            AssignError::DoesNotFit {
                kind,
                duration,
                largest_bubble,
            } => write!(
                f,
                "{kind} chunk of {duration:.3} exceeds largest bubble {largest_bubble:.3}"
            ),
            AssignError::HorizonExceeded { max_steps } => {
                write!(f, "assignment did not drain within {max_steps} steps")
            }
            AssignError::MissingTask {
                kind,
                stage,
                micro_batch,
            } => write!(
                f,
                "no {kind} task for stage {stage} micro-batch {micro_batch}: \
                 the assignment does not cover the graph"
            ),
        }
    }
}

impl Error for AssignError {}

/// One K-FAC work chunk placed into a bubble.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedWork {
    /// Local pipeline device (0..D).
    pub device: usize,
    /// Stage the work belongs to.
    pub stage: usize,
    /// Micro-batch (curvature only).
    pub micro_batch: Option<usize>,
    /// Kind (curvature / inversion / sync-curvature).
    pub kind: WorkKind,
    /// Absolute start time (step `floor(start / t_step)`).
    pub start: f64,
    /// Absolute end time.
    pub end: f64,
}

/// The finalized static schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeFisherSchedule {
    /// Standard-work timeline of one step (no K-FAC), on the D local devices.
    pub base_timeline: Timeline,
    /// Full timeline over [`PipeFisherSchedule::refresh_steps`] steps on all
    /// `D·W` devices: standard work + sync-grad + precondition + the placed
    /// K-FAC work.
    pub augmented_timeline: Timeline,
    /// Baseline step period: `T_pipe + T_sync_grad`.
    pub t_step_baseline: f64,
    /// PipeFisher step period: baseline + precondition tail.
    pub t_step: f64,
    /// Steps needed to refresh curvature + inverses once.
    pub refresh_steps: usize,
    /// Baseline utilization (standard work only, one step window).
    pub utilization_baseline: f64,
    /// PipeFisher utilization over one cold-start refresh window (the
    /// trailing bubbles of the window are idle because the next cycle's
    /// work is not yet modeled).
    pub utilization: f64,
    /// Steady-state refresh interval in steps: with refresh cycles running
    /// back to back (as in training), the binding device refreshes every
    /// `max_d(work_d / bubble_d)` steps (≥ 1).
    pub steady_refresh_steps: f64,
    /// Steady-state utilization with back-to-back refresh cycles — the
    /// number comparable to the paper's profiled utilizations (59.8 % →
    /// 97.6 % in Figure 4).
    pub steady_utilization: f64,
    /// The individual placements (for rendering/analysis).
    pub placements: Vec<PlacedWork>,
}

impl PipeFisherSchedule {
    /// Checks the internal invariants of a finalized schedule:
    ///
    /// 1. no two intervals overlap on any device,
    /// 2. every placement lies inside the multi-step window,
    /// 3. inversion work never precedes the last same-factor curvature
    ///    chunk of its (device, stage),
    /// 4. the step period is at least the baseline period,
    /// 5. utilizations are proper fractions and PipeFisher's is no worse
    ///    than the baseline.
    ///
    /// Returns a list of human-readable violations (empty = valid). Used by
    /// the property-test suite and available to downstream users who build
    /// schedules from custom cost models.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !self.augmented_timeline.is_overlap_free(1e-9) {
            problems.push("overlapping intervals in the augmented timeline".to_string());
        }
        let window = self.refresh_steps as f64 * self.t_step + 1e-9;
        for p in &self.placements {
            if p.start < -1e-9 || p.end > window {
                problems.push(format!("placement outside window: {p:?}"));
            }
            if p.end < p.start {
                problems.push(format!("negative-length placement: {p:?}"));
            }
        }
        for p in &self.placements {
            if let WorkKind::Inversion(f) = p.kind {
                let last_curv = self
                    .placements
                    .iter()
                    .filter(|q| {
                        q.device == p.device
                            && q.stage == p.stage
                            && q.kind == WorkKind::Curvature(f)
                    })
                    .map(|q| q.end)
                    .fold(0.0f64, f64::max);
                if p.start + 1e-9 < last_curv {
                    problems.push(format!(
                        "inversion at {:.3} precedes curvature end {:.3} (dev {}, stage {})",
                        p.start, last_curv, p.device, p.stage
                    ));
                }
            }
        }
        if self.t_step + 1e-9 < self.t_step_baseline {
            problems.push("PipeFisher step shorter than baseline".to_string());
        }
        for (name, u) in [
            ("baseline", self.utilization_baseline),
            ("cold", self.utilization),
            ("steady", self.steady_utilization),
        ] {
            if !(0.0..=1.0 + 1e-9).contains(&u) {
                problems.push(format!("{name} utilization out of range: {u}"));
            }
        }
        if self.steady_utilization + 1e-9 < self.utilization_baseline {
            problems.push("PipeFisher steady utilization below baseline".to_string());
        }
        problems
    }
}

/// Free-segment bookkeeping for one device across steps.
struct FreeList {
    /// Per-step-pattern free segments within `[0, t_step)`.
    pattern: Vec<(f64, f64)>,
    /// Instantiated segments, absolute times, sorted; consumed on placement.
    segments: Vec<(f64, f64)>,
    /// Next step index to instantiate.
    next_step: usize,
    t_step: f64,
}

impl FreeList {
    fn new(pattern: Vec<(f64, f64)>, t_step: f64) -> Self {
        FreeList {
            pattern,
            segments: Vec::new(),
            next_step: 0,
            t_step,
        }
    }

    fn extend_one_step(&mut self) {
        let off = self.next_step as f64 * self.t_step;
        for &(s, e) in &self.pattern {
            self.segments.push((s + off, e + off));
        }
        self.next_step += 1;
    }

    fn largest_pattern_segment(&self) -> f64 {
        self.pattern.iter().map(|(s, e)| e - s).fold(0.0, f64::max)
    }

    /// Places a chunk of `dur` at a point ≥ `release` according to the fit
    /// strategy; returns `(start, end)` or `None` when the horizon is
    /// exhausted.
    fn place(
        &mut self,
        release: f64,
        dur: f64,
        max_steps: usize,
        fit: FitStrategy,
    ) -> Option<(f64, f64)> {
        loop {
            let mut chosen: Option<(usize, f64)> = None; // (index, start)
            for i in 0..self.segments.len() {
                let (s, e) = self.segments[i];
                let start = s.max(release);
                if start + dur > e + 1e-9 {
                    continue;
                }
                match fit {
                    FitStrategy::FirstFit => {
                        chosen = Some((i, start));
                        break;
                    }
                    FitStrategy::BestFit => {
                        let waste = (e - start) - dur;
                        let better = match chosen {
                            None => true,
                            Some((j, prev_start)) => {
                                let (ps, pe) = self.segments[j];
                                let prev_waste = (pe - ps.max(prev_start)) - dur;
                                waste < prev_waste - 1e-12
                            }
                        };
                        if better {
                            chosen = Some((i, start));
                        }
                    }
                }
            }
            if let Some((i, start)) = chosen {
                let (s, e) = self.segments[i];
                // Consume [start, start+dur); keep leftovers.
                let mut leftovers = Vec::new();
                if start > s + 1e-9 {
                    leftovers.push((s, start));
                }
                if start + dur < e - 1e-9 {
                    leftovers.push((start + dur, e));
                }
                self.segments.splice(i..=i, leftovers);
                return Some((start, start + dur));
            }
            if self.next_step >= max_steps {
                return None;
            }
            self.extend_one_step();
        }
    }
}

/// How the greedy filler chooses among candidate bubbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitStrategy {
    /// Earliest bubble that fits (the paper's queue-draining rule).
    #[default]
    FirstFit,
    /// Among the currently known bubbles that fit, the one leaving the
    /// least leftover space (classic best-fit; may start later).
    BestFit,
}

/// Schedule-agnostic knobs for [`assign_graph`]: how to fill an arbitrary
/// task graph's bubbles with K-FAC work.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphAssignOptions {
    /// Bubble-choice rule (design-choice ablation: `ablation_fit_strategy`).
    pub fit: FitStrategy,
    /// Data-parallel replicas per stage (splits inversion, adds collectives).
    pub w: usize,
    /// Horizon in steps before giving up.
    pub max_steps: usize,
    /// Chunks per stage work item (per-layer granularity).
    pub granularity: usize,
    /// The graph contains `Recompute` tasks and `A`-factor curvature is
    /// released by them rather than by forwards.
    pub recompute_releases_a: bool,
    /// Per-device partner hosting a replica of the same stages (Chimera's
    /// bidirectional pairing): inversion is split with the partner and a
    /// `sync-curvature` waits for both partners' curvature.
    pub device_pairing: Option<Vec<usize>>,
    /// The schedule replicates stages even at `w = 1` (Chimera), so the
    /// gradient allreduce is always paid.
    pub always_sync_grad: bool,
}

/// Runs the automatic work assignment (paper §3.1) and finalizes the static
/// schedule for one of the built-in schemes.
///
/// # Errors
///
/// * [`AssignError::Schedule`] if the pipeline schedule cannot be built.
/// * [`AssignError::DoesNotFit`] if some chunk exceeds every bubble.
/// * [`AssignError::HorizonExceeded`] if the queue does not drain within
///   `config.max_steps` steps.
///
/// # Panics
///
/// Panics if `d`, `n_micro`, `w`, or `max_steps` is zero.
pub fn assign(config: &PipeFisherConfig) -> Result<PipeFisherSchedule, AssignError> {
    assert!(
        config.d > 0 && config.n_micro > 0 && config.w > 0 && config.max_steps > 0,
        "assign: zero config field"
    );
    let mut graph = config.scheme.build(config.d, config.n_micro);
    if config.recompute {
        graph = with_recompute(&graph);
    }
    // Chimera replicates every stage across two devices (one per
    // bidirectional pipeline), so its gradients need synchronization even
    // with w = 1 — exactly like the sync-grad blocks of the paper's Fig. 4.
    let chimera = config.scheme == PipelineScheme::Chimera;
    let pairing = (chimera && config.chimera_pair_parallelism)
        .then(|| (0..config.d).map(|i| config.d - 1 - i).collect());
    assign_graph(
        &graph,
        &config.costs,
        &GraphAssignOptions {
            fit: FitStrategy::FirstFit,
            w: config.w,
            max_steps: config.max_steps,
            granularity: config.granularity,
            recompute_releases_a: config.recompute,
            device_pairing: pairing,
            always_sync_grad: chimera,
        },
    )
}

/// Runs the automatic work assignment on **any** prebuilt schedule — the
/// paper's claim that PipeFisher works with "any pipeline scheme" as a
/// public API. The graph may contain `Recompute` tasks (set
/// `opts.recompute_releases_a`) and arbitrary stage-to-device mappings
/// (e.g. interleaved virtual stages).
///
/// # Errors
///
/// Same as [`assign`].
///
/// # Panics
///
/// Panics if `opts.w`, `opts.max_steps` is zero, or a pairing vector has
/// the wrong length.
pub fn assign_graph(
    graph: &pipefisher_pipeline::TaskGraph,
    costs: &KindCost,
    opts: &GraphAssignOptions,
) -> Result<PipeFisherSchedule, AssignError> {
    assert!(
        opts.w > 0 && opts.max_steps > 0,
        "assign_graph: zero option"
    );
    if let Some(p) = &opts.device_pairing {
        assert_eq!(p.len(), graph.n_devices(), "assign_graph: pairing length");
    }
    let base = simulate(graph, costs).map_err(|e| AssignError::Schedule(e.to_string()))?;
    let d = graph.n_devices();
    let t_pipe = base.makespan();
    let pair_split = opts.device_pairing.is_some();
    let sync_grad = if opts.w > 1 || opts.always_sync_grad {
        costs.t_sync_grad
    } else {
        0.0
    };
    let sync_curv = if opts.w > 1 || pair_split {
        costs.t_sync_curv
    } else {
        0.0
    };
    let inv_split = opts.w * if pair_split { 2 } else { 1 };

    // Stages hosted per device and their micro-batches (from the schedule).
    let mut stages_of: Vec<Vec<usize>> = vec![Vec::new(); d];
    for t in graph.tasks() {
        if t.kind == WorkKind::Forward && !stages_of[t.device].contains(&t.stage) {
            stages_of[t.device].push(t.stage);
        }
    }
    for s in &mut stages_of {
        s.sort_unstable();
    }

    // Tail pattern: sync-grad then precondition after each device's last
    // standard work; the step period stretches to cover the slowest device.
    let mut tail: Vec<Vec<Interval>> = vec![Vec::new(); d];
    let mut t_step = 0.0f64;
    for dev in 0..d {
        let last_end = base
            .intervals()
            .iter()
            .filter(|i| i.device == dev)
            .map(|i| i.end)
            .fold(0.0, f64::max);
        let mut cursor = last_end;
        if sync_grad > 0.0 {
            tail[dev].push(Interval {
                device: dev,
                start: cursor,
                end: cursor + sync_grad,
                kind: WorkKind::SyncGrad,
                stage: stages_of[dev].first().copied().unwrap_or(0),
                micro_batch: None,
            });
            cursor += sync_grad;
        }
        let prec = costs.t_prec * stages_of[dev].len() as f64;
        if prec > 0.0 {
            tail[dev].push(Interval {
                device: dev,
                start: cursor,
                end: cursor + prec,
                kind: WorkKind::Precondition,
                stage: stages_of[dev].first().copied().unwrap_or(0),
                micro_batch: None,
            });
            cursor += prec;
        }
        t_step = t_step.max(cursor);
    }
    t_step = t_step.max(t_pipe);
    let t_step_baseline = t_pipe + sync_grad;

    // One-step pattern timeline (standard + tail) → free segments.
    let mut pattern_tl = base.clone();
    for dev_tail in &tail {
        for iv in dev_tail {
            pattern_tl.push(iv.clone());
        }
    }
    let mut free: Vec<FreeList> = (0..d)
        .map(|dev| FreeList::new(pattern_tl.bubbles(dev, t_step), t_step))
        .collect();

    // Work queue. Chunks are per (stage, factor, micro-batch) for curvature
    // and per (stage, factor) for inversion — the paper's granularity.
    // Inversion is divided by W (inversion parallelism).
    struct Chunk {
        device: usize,
        stage: usize,
        micro_batch: Option<usize>,
        kind: WorkKind,
        release: f64,
        duration: f64,
    }
    let granularity = opts.granularity.max(1);
    let mut curvature_chunks: Vec<Chunk> = Vec::new();
    for iv in base.intervals() {
        // Rule 1 (§3.1): A-factor curvature after the pass that produced
        // the activations — the forward normally, the recompute under R.
        let a_releaser = if opts.recompute_releases_a {
            WorkKind::Recompute
        } else {
            WorkKind::Forward
        };
        let (factor, t_curv) = match iv.kind {
            k if k == a_releaser => (Factor::A, costs.t_curv_a),
            WorkKind::Backward => (Factor::B, costs.t_curv_b),
            _ => continue,
        };
        if t_curv <= 0.0 {
            continue;
        }
        for _ in 0..granularity {
            curvature_chunks.push(Chunk {
                device: iv.device,
                stage: iv.stage,
                micro_batch: iv.micro_batch,
                kind: WorkKind::Curvature(factor),
                release: iv.end,
                duration: t_curv / granularity as f64,
            });
        }
    }
    curvature_chunks.sort_by(|a, b| a.release.partial_cmp(&b.release).unwrap());

    let mut placements: Vec<PlacedWork> = Vec::new();
    let place_chunk = |free: &mut Vec<FreeList>,
                       chunk: &Chunk,
                       placements: &mut Vec<PlacedWork>|
     -> Result<f64, AssignError> {
        let fl = &mut free[chunk.device];
        if chunk.duration > fl.largest_pattern_segment() + 1e-9 {
            return Err(AssignError::DoesNotFit {
                kind: chunk.kind,
                duration: chunk.duration,
                largest_bubble: fl.largest_pattern_segment(),
            });
        }
        let (start, end) = fl
            .place(chunk.release, chunk.duration, opts.max_steps, opts.fit)
            .ok_or(AssignError::HorizonExceeded {
                max_steps: opts.max_steps,
            })?;
        placements.push(PlacedWork {
            device: chunk.device,
            stage: chunk.stage,
            micro_batch: chunk.micro_batch,
            kind: chunk.kind,
            start,
            end,
        });
        Ok(end)
    };

    // Rule 1: place curvature chunks; track per (device, stage, factor)
    // completion for rule 2.
    use std::collections::HashMap;
    let mut curv_done: HashMap<(usize, usize, Factor), f64> = HashMap::new();
    for chunk in &curvature_chunks {
        let end = place_chunk(&mut free, chunk, &mut placements)?;
        let factor = match chunk.kind {
            WorkKind::Curvature(f) => f,
            _ => unreachable!(),
        };
        let key = (chunk.device, chunk.stage, factor);
        let e = curv_done.entry(key).or_insert(0.0);
        *e = e.max(end);
    }

    // §3.2: sync-curvature across replicas, then split inversion.
    // Replicas run the identical schedule, so placement is replica-symmetric
    // and computed once on the D local devices.
    for dev in 0..d {
        for &stage in &stages_of[dev] {
            // With stage pairing, the stage's other host's curvature must
            // also finish before sync/inversion.
            let pair_dev = opts.device_pairing.as_ref().map(|p| p[dev]);
            let curv_end = |factor: Factor| -> f64 {
                let own = curv_done.get(&(dev, stage, factor)).copied().unwrap_or(0.0);
                match pair_dev {
                    Some(p) => own.max(curv_done.get(&(p, stage, factor)).copied().unwrap_or(0.0)),
                    None => own,
                }
            };
            let rel_a = curv_end(Factor::A);
            let rel_b = curv_end(Factor::B);
            let (mut inv_rel_a, mut inv_rel_b) = (rel_a, rel_b);
            if sync_curv > 0.0 {
                // The factor allreduce is chunked per layer like the rest of
                // the K-FAC work (collectives pipeline naturally).
                let sync_release = rel_a.max(rel_b);
                let mut end = sync_release;
                for _ in 0..granularity {
                    end = end.max(place_chunk(
                        &mut free,
                        &Chunk {
                            device: dev,
                            stage,
                            micro_batch: None,
                            kind: WorkKind::SyncCurvature,
                            release: sync_release,
                            duration: sync_curv / granularity as f64,
                        },
                        &mut placements,
                    )?);
                }
                inv_rel_a = end;
                inv_rel_b = end;
            }
            for (factor, t_inv, rel) in [
                (Factor::A, costs.t_inv_a, inv_rel_a),
                (Factor::B, costs.t_inv_b, inv_rel_b),
            ] {
                let dur = t_inv / (inv_split * granularity) as f64;
                if dur <= 0.0 {
                    continue;
                }
                for _ in 0..granularity {
                    place_chunk(
                        &mut free,
                        &Chunk {
                            device: dev,
                            stage,
                            micro_batch: None,
                            kind: WorkKind::Inversion(factor),
                            release: rel,
                            duration: dur,
                        },
                        &mut placements,
                    )?;
                }
            }
        }
    }

    // Finalize: refresh interval and the augmented multi-step timeline.
    let last_end = placements.iter().map(|p| p.end).fold(t_step, f64::max);
    let refresh_steps = (last_end / t_step - 1e-9).ceil().max(1.0) as usize;

    let n_global = d * opts.w;
    let mut augmented = Timeline::new(n_global);
    for step in 0..refresh_steps {
        let off = step as f64 * t_step;
        for replica in 0..opts.w {
            let dev_off = replica * d;
            for iv in pattern_tl.intervals() {
                augmented.push(Interval {
                    device: dev_off + iv.device,
                    start: iv.start + off,
                    end: iv.end + off,
                    ..iv.clone()
                });
            }
        }
    }
    for p in &placements {
        for replica in 0..opts.w {
            augmented.push(Interval {
                device: replica * d + p.device,
                start: p.start,
                end: p.end,
                kind: p.kind,
                stage: p.stage,
                micro_batch: p.micro_batch,
            });
        }
    }

    let window = refresh_steps as f64 * t_step;
    let utilization = augmented.utilization_in(0.0, window);

    // Steady state: refresh cycles run back to back, so a device's bubbles
    // host work from consecutive cycles. The binding device sets the cycle
    // length; others fill a proportional share of their bubbles.
    let mut steady_refresh_steps: f64 = 1.0;
    let mut work_per_device = vec![0.0f64; d];
    for p in &placements {
        work_per_device[p.device] += p.end - p.start;
    }
    let busy_per_device: Vec<f64> = (0..d).map(|dev| pattern_tl.device_busy(dev)).collect();
    for dev in 0..d {
        let bubble = (t_step - busy_per_device[dev]).max(1e-12);
        steady_refresh_steps = steady_refresh_steps.max(work_per_device[dev] / bubble);
    }
    let steady_busy: f64 = (0..d)
        .map(|dev| busy_per_device[dev] + work_per_device[dev] / steady_refresh_steps)
        .sum();
    let steady_utilization = steady_busy / (t_step * d as f64);
    // The baseline optimizer performs the same sync-grad, so it counts as
    // busy time in both utilizations (NCCL kernels execute on the GPU).
    let std_busy: f64 = (0..d).map(|dev| base.device_busy(dev)).sum::<f64>() + sync_grad * d as f64;
    let utilization_baseline = std_busy / (t_step_baseline * d as f64);

    Ok(PipeFisherSchedule {
        base_timeline: base,
        augmented_timeline: augmented,
        t_step_baseline,
        t_step,
        refresh_steps,
        utilization_baseline,
        utilization,
        steady_refresh_steps,
        steady_utilization,
        placements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kfac_costs(scale: f64) -> KindCost {
        KindCost {
            t_f: 1.0,
            t_b: 2.0,
            t_recompute: 0.0,
            t_curv_a: 0.4 * scale,
            t_curv_b: 0.4 * scale,
            t_inv_a: 0.6 * scale,
            t_inv_b: 0.6 * scale,
            t_prec: 0.2 * scale,
            t_sync_grad: 0.1,
            t_sync_curv: 0.1,
        }
    }

    fn cfg(scheme: PipelineScheme, d: usize, n: usize, w: usize, scale: f64) -> PipeFisherConfig {
        PipeFisherConfig {
            scheme,
            d,
            n_micro: n,
            w,
            costs: kfac_costs(scale),
            max_steps: 64,
            chimera_pair_parallelism: false,
            recompute: false,
            granularity: 1,
        }
    }

    #[test]
    fn gpipe_assignment_improves_utilization() {
        let s = assign(&cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0)).unwrap();
        assert!(
            s.utilization > s.utilization_baseline + 0.1,
            "util {} vs baseline {}",
            s.utilization,
            s.utilization_baseline
        );
        assert!(s.augmented_timeline.is_overlap_free(1e-9));
    }

    #[test]
    fn all_schemes_assign_cleanly() {
        for scheme in PipelineScheme::all() {
            let s = assign(&cfg(scheme, 4, 4, 1, 1.0)).unwrap();
            let problems = s.check_invariants();
            assert!(problems.is_empty(), "{}: {problems:?}", scheme.name());
            assert!(
                s.augmented_timeline.is_overlap_free(1e-9),
                "{}",
                scheme.name()
            );
            assert!(
                s.refresh_steps >= 1 && s.refresh_steps <= 8,
                "{}",
                scheme.name()
            );
            assert!(s.utilization > s.utilization_baseline, "{}", scheme.name());
        }
    }

    #[test]
    fn work_conservation() {
        // Total placed K-FAC time must equal the queue's total work.
        let c = cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0);
        let s = assign(&c).unwrap();
        let placed: f64 = s.placements.iter().map(|p| p.end - p.start).sum();
        // Per device: n_micro·(t_curv_a + t_curv_b) + t_inv_a + t_inv_b,
        // summed over 4 devices (1 stage each).
        let expect = 4.0 * (4.0 * 0.8 + 1.2);
        assert!(
            (placed - expect).abs() < 1e-9,
            "placed {placed}, expect {expect}"
        );
    }

    #[test]
    fn releases_are_respected() {
        let c = cfg(PipelineScheme::OneFOneB, 4, 4, 1, 1.0);
        let s = assign(&c).unwrap();
        // Curvature A for (stage, mb) must start after that forward's end in
        // the base timeline.
        for p in &s.placements {
            if let WorkKind::Curvature(Factor::A) = p.kind {
                let f_end = s
                    .base_timeline
                    .intervals()
                    .iter()
                    .find(|i| {
                        i.kind == WorkKind::Forward
                            && i.stage == p.stage
                            && i.micro_batch == p.micro_batch
                    })
                    .unwrap()
                    .end;
                assert!(p.start >= f_end - 1e-9, "{p:?} before forward end {f_end}");
            }
        }
        // Inversion must start after every same-factor curvature chunk of
        // its (device, stage).
        for p in &s.placements {
            if let WorkKind::Inversion(f) = p.kind {
                let latest_curv = s
                    .placements
                    .iter()
                    .filter(|q| {
                        q.device == p.device
                            && q.stage == p.stage
                            && q.kind == WorkKind::Curvature(f)
                    })
                    .map(|q| q.end)
                    .fold(0.0, f64::max);
                assert!(p.start >= latest_curv - 1e-9);
            }
        }
    }

    #[test]
    fn heavier_kfac_work_takes_more_steps() {
        let light = assign(&cfg(PipelineScheme::Chimera, 4, 4, 1, 0.5)).unwrap();
        let heavy = assign(&cfg(PipelineScheme::Chimera, 4, 4, 1, 2.0)).unwrap();
        assert!(heavy.refresh_steps >= light.refresh_steps);
        assert!(heavy.refresh_steps >= 2, "heavy should span multiple steps");
    }

    #[test]
    fn precondition_is_the_only_step_overhead() {
        let s = assign(&cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0)).unwrap();
        // t_step = t_pipe + t_prec (w=1 → no sync-grad).
        let t_pipe = s.base_timeline.makespan();
        assert!((s.t_step - (t_pipe + 0.2)).abs() < 1e-9);
        assert!((s.t_step_baseline - t_pipe).abs() < 1e-9);
    }

    #[test]
    fn data_parallel_replicas_share_inversion() {
        let w1 = assign(&cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0)).unwrap();
        let w2 = assign(&cfg(PipelineScheme::GPipe, 4, 4, 2, 1.0)).unwrap();
        let inv_time = |s: &PipeFisherSchedule| -> f64 {
            s.placements
                .iter()
                .filter(|p| matches!(p.kind, WorkKind::Inversion(_)))
                .map(|p| p.end - p.start)
                .sum()
        };
        assert!((inv_time(&w2) - inv_time(&w1) / 2.0).abs() < 1e-9);
        // Sync work appears only with replicas.
        assert!(w2
            .placements
            .iter()
            .any(|p| p.kind == WorkKind::SyncCurvature));
        assert!(!w1
            .placements
            .iter()
            .any(|p| p.kind == WorkKind::SyncCurvature));
        // And the augmented timeline covers D·W devices.
        assert_eq!(w2.augmented_timeline.n_devices(), 8);
    }

    #[test]
    fn recompute_grows_bubbles_and_moves_a_releases() {
        let mut c = cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0);
        c.costs.t_recompute = 1.0;
        let plain = assign(&c).unwrap();
        c.recompute = true;
        let r = assign(&c).unwrap();
        // Longer steps but more bubble: refresh no slower in steady state.
        assert!(r.t_step > plain.t_step);
        assert!(r.steady_refresh_steps <= plain.steady_refresh_steps + 1e-9);
        // A-curvature placements start no earlier than the recompute that
        // re-materializes the activations.
        for p in &r.placements {
            if let WorkKind::Curvature(Factor::A) = p.kind {
                let recompute_end = r
                    .base_timeline
                    .intervals()
                    .iter()
                    .find(|i| {
                        i.kind == WorkKind::Recompute
                            && i.stage == p.stage
                            && i.micro_batch == p.micro_batch
                    })
                    .expect("recompute interval exists")
                    .end;
                assert!(p.start >= recompute_end - 1e-9);
            }
        }
    }

    #[test]
    fn chimera_pair_parallelism_halves_inversion() {
        let mut c = cfg(PipelineScheme::Chimera, 4, 4, 1, 1.0);
        let plain = assign(&c).unwrap();
        c.chimera_pair_parallelism = true;
        let paired = assign(&c).unwrap();
        let inv_time = |s: &PipeFisherSchedule| -> f64 {
            s.placements
                .iter()
                .filter(|p| matches!(p.kind, WorkKind::Inversion(_)))
                .map(|p| p.end - p.start)
                .sum()
        };
        assert!((inv_time(&paired) - inv_time(&plain) / 2.0).abs() < 1e-9);
        assert!(paired
            .placements
            .iter()
            .any(|p| p.kind == WorkKind::SyncCurvature));
        // Chimera always pays sync-grad (stage replicas across pipelines).
        assert!(plain.t_step_baseline > plain.base_timeline.makespan());
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let mut c = cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0);
        c.costs.t_inv_a = 1e6;
        match assign(&c) {
            Err(AssignError::DoesNotFit {
                kind: WorkKind::Inversion(Factor::A),
                ..
            }) => {}
            other => panic!("expected DoesNotFit, got {other:?}"),
        }
    }

    #[test]
    fn horizon_limit_is_enforced() {
        let mut c = cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0);
        c.max_steps = 1;
        // Heavy work that cannot drain in one step.
        c.costs.t_curv_a = 2.0;
        c.costs.t_curv_b = 2.0;
        match assign(&c) {
            Err(AssignError::HorizonExceeded { max_steps: 1 }) => {}
            Ok(s) if s.refresh_steps <= 1 => {} // fits after all — fine
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn chimera_paper_setup_refresh_interval() {
        // Fig. 1-like GPipe setup: the queue drains within a small number of
        // steps (the paper reports 2 for its Fig. 3 profile).
        let s = assign(&cfg(PipelineScheme::GPipe, 4, 4, 1, 1.0)).unwrap();
        assert!(s.refresh_steps <= 3, "refresh {}", s.refresh_steps);
    }
}
