//! PipeFisher: automatic assignment of K-FAC work to pipeline bubbles.
//!
//! This crate implements the paper's core contribution (§3.1–3.2): given
//! *any* synchronous pipeline schedule (GPipe, 1F1B, Chimera) and profiled
//! durations of the K-FAC work units, produce a **static schedule** that
//! packs the curvature and inversion work into the pipeline's bubbles across
//! one or more steps, with precondition appended at each step's end as the
//! only per-step overhead.
//!
//! The assignment follows the paper's rules:
//!
//! 1. Curvature work for `A_l` (resp. `B_l`) of a micro-batch is released by
//!    the corresponding forward (resp. backward) on the same device.
//! 2. Inversion work for a factor is released once the curvature work for
//!    that factor has finished for **all** micro-batches (after the
//!    cross-replica `sync-curvature` when data parallelism is on).
//! 3. Precondition runs after all backwards of the stage (and the gradient
//!    allreduce), before the next step begins.
//!
//! Work is drawn from a queue and placed into the earliest bubble large
//! enough to hold it; when no bubble of the current step fits, bubbles of
//! subsequent steps are used (the paper's multi-step refresh — e.g. 2 steps
//! in Figure 3, 2–4 steps in Figure 4).
//!
//! # Example
//!
//! ```
//! use pipefisher_core::{assign, PipeFisherConfig};
//! use pipefisher_pipeline::PipelineScheme;
//! use pipefisher_sim::KindCost;
//!
//! let mut costs = KindCost::standard(1.0, 2.0);
//! costs.t_curv_a = 0.4;
//! costs.t_curv_b = 0.4;
//! costs.t_inv_a = 0.5;
//! costs.t_inv_b = 0.5;
//! costs.t_prec = 0.2;
//! let schedule = assign(&PipeFisherConfig {
//!     scheme: PipelineScheme::GPipe,
//!     d: 4,
//!     n_micro: 4,
//!     w: 1,
//!     costs,
//!     max_steps: 16,
//!     chimera_pair_parallelism: false,
//!     recompute: false,
//!     granularity: 1,
//! }).unwrap();
//! assert!(schedule.utilization > schedule.utilization_baseline);
//! assert!(schedule.refresh_steps >= 1);
//! ```

mod assign;
mod plan;

pub use assign::{
    assign, assign_graph, AssignError, FitStrategy, GraphAssignOptions, PipeFisherConfig,
    PipeFisherSchedule, PlacedWork,
};
pub use plan::{AuxKind, AuxOp, DevicePlan, ExecutablePlan, PlanOp};
