//! Lowering a task graph (+ optional PipeFisher schedule) into an
//! executable per-device plan for the wall-clock pipeline executor.
//!
//! The simulator-facing types ([`crate::PipeFisherSchedule`]) speak in
//! continuous time; the executor needs something discrete: for every
//! device, the exact order of forward/backward micro-batch operations
//! (with activation-slot and routing annotations) plus an ordered queue of
//! K-FAC work units to pop whenever the device would otherwise idle in a
//! bubble. [`ExecutablePlan::lower`] produces that, validating on the way
//! that the graph actually covers every (stage, micro-batch) pair — a
//! malformed assignment becomes an [`AssignError::MissingTask`] instead of
//! a silent skip.

use crate::{AssignError, PipeFisherSchedule};
use pipefisher_pipeline::{TaskGraph, WorkKind};

/// One standard-work operation in a device's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Run a stage's forward pass for one micro-batch.
    Forward {
        /// Model stage.
        stage: usize,
        /// Micro-batch index.
        mb: usize,
        /// Activation-slot replica of (device, stage) this micro-batch
        /// occupies between its forward and backward.
        slot: usize,
        /// Device hosting the next stage's forward of this micro-batch
        /// (`None` for the last stage, whose forward ends in losses).
        send_to: Option<usize>,
    },
    /// Run a stage's backward pass for one micro-batch.
    Backward {
        /// Model stage.
        stage: usize,
        /// Micro-batch index.
        mb: usize,
        /// Slot assigned by the matching forward (freed afterwards).
        slot: usize,
        /// Device hosting the previous stage's backward of this
        /// micro-batch (`None` for stage 0).
        send_to: Option<usize>,
    },
}

/// Kind of a bubble-fillable K-FAC work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuxKind {
    /// Fold captured activations into Kronecker factor `A` (curvature).
    FoldA,
    /// Fold captured error signals into Kronecker factor `B` (curvature).
    FoldB,
    /// Damped Cholesky inversion of both factors (π-coupled, so `A` and
    /// `B` invert together; the schedule's `Inversion(B)` placements are
    /// absorbed into this unit).
    Invert,
}

/// One K-FAC work unit: chunk `chunk` of `chunks` covers the K-FAC layers
/// `[chunk·K/chunks, (chunk+1)·K/chunks)` of the stage (K = layer count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxOp {
    /// Model stage whose layers this unit touches.
    pub stage: usize,
    /// What to do.
    pub kind: AuxKind,
    /// Chunk index within the stage's layer list.
    pub chunk: usize,
    /// Total chunks the stage's work is split into (≥ 1).
    pub chunks: usize,
}

/// Everything one device needs to run its share of a step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DevicePlan {
    /// Standard work in execution order.
    pub ops: Vec<PlanOp>,
    /// Bubble-fillable K-FAC units in placement-start order (the greedy
    /// filler's priority); the executor pops the first *ready* one while
    /// waiting for pipeline input.
    pub aux: Vec<AuxOp>,
    /// Per model stage: how many activation-slot replicas this device
    /// needs (0 = stage not hosted here).
    pub n_slots: Vec<usize>,
}

impl DevicePlan {
    /// Stages this device hosts (runs forwards of), ascending.
    pub fn hosted_stages(&self) -> Vec<usize> {
        (0..self.n_slots.len())
            .filter(|&s| self.n_slots[s] > 0)
            .collect()
    }
}

/// A discrete, per-device execution plan for one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutablePlan {
    /// Scheme name the plan was lowered from.
    pub scheme: String,
    /// Pipeline stages.
    pub n_stages: usize,
    /// Micro-batches per step.
    pub n_micro: usize,
    /// Per-device plans, indexed by device.
    pub devices: Vec<DevicePlan>,
    /// Per stage: the device that runs `Forward(stage, N−1)` — the
    /// micro-batch whose statistics K-FAC captures — and therefore hosts
    /// that stage's fold and inversion work.
    pub capture_host: Vec<usize>,
}

/// The events one training step of an [`ExecutablePlan`] must produce — the
/// conformance oracle a real execution is checked against.
///
/// Pipeline ops are *ordered* per device (the executor runs its `DevicePlan`
/// in program order); K-FAC aux units are a per-device *set*: the executor
/// may pop them in any readiness-respecting order (that freedom is exactly
/// what bubble filling exploits), but each applicable unit must run exactly
/// once, on its capture-host device.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedStep {
    /// Per device: pipeline ops in required execution order.
    pub ops: Vec<Vec<PlanOp>>,
    /// Per device: the K-FAC units this step must execute (unordered).
    pub aux: Vec<Vec<AuxOp>>,
}

impl ExpectedStep {
    /// Total expected events across all devices.
    pub fn total_events(&self) -> usize {
        self.ops.iter().map(Vec::len).sum::<usize>() + self.aux.iter().map(Vec::len).sum::<usize>()
    }
}

impl ExecutablePlan {
    /// Expands this plan into the per-step event oracle for a step with the
    /// given K-FAC cadence: `kfac` false (first-order step) expects no aux
    /// work at all; otherwise fold units apply iff the step refreshes
    /// curvature and invert units iff it refreshes the inverses (units for
    /// phases a step does not refresh are skipped by the executor without
    /// running — there is nothing to compute).
    pub fn expected_step(&self, kfac: bool, refresh_curv: bool, refresh_inv: bool) -> ExpectedStep {
        let ops = self.devices.iter().map(|d| d.ops.clone()).collect();
        let aux = self
            .devices
            .iter()
            .map(|d| {
                if !kfac {
                    return Vec::new();
                }
                d.aux
                    .iter()
                    .filter(|op| match op.kind {
                        AuxKind::FoldA | AuxKind::FoldB => refresh_curv,
                        AuxKind::Invert => refresh_inv,
                    })
                    .copied()
                    .collect()
            })
            .collect();
        ExpectedStep { ops, aux }
    }

    /// Lowers a task graph into per-device plans.
    ///
    /// Aux (K-FAC) work comes from `schedule` when given: curvature
    /// placements of the capture micro-batch and `Inversion(A)` placements
    /// on the capture host, ordered by their bubble start times. Without a
    /// schedule (e.g. `D = 1`, where there are no bubbles and
    /// [`crate::assign`] reports `DoesNotFit`), each stage gets the
    /// canonical fold-A, fold-B, invert sequence on its capture host,
    /// split into `granularity` chunks.
    ///
    /// # Errors
    ///
    /// * [`AssignError::MissingTask`] if any (stage, micro-batch) lacks a
    ///   forward or backward task — an assignment that does not cover the
    ///   graph must not be silently truncated.
    /// * [`AssignError::Schedule`] for structurally unexecutable graphs: a
    ///   task kind the executor does not run (e.g. `Recompute`), a
    ///   standard task without a micro-batch, or a micro-batch whose
    ///   forward and backward sit on different devices (activations could
    ///   never reach the backward).
    pub fn lower(
        graph: &TaskGraph,
        schedule: Option<&PipeFisherSchedule>,
        granularity: usize,
    ) -> Result<ExecutablePlan, AssignError> {
        let n_stages = graph.n_stages();
        let n_micro = graph.n_micro();
        let n_devices = graph.n_devices();

        // Coverage + same-device validation via `find`, so a graph whose
        // task ids miss a (stage, micro-batch) is rejected up front.
        let mut capture_host = vec![0usize; n_stages];
        for (stage, host) in capture_host.iter_mut().enumerate() {
            for mb in 0..n_micro {
                let fwd =
                    graph
                        .find(WorkKind::Forward, stage, mb)
                        .ok_or(AssignError::MissingTask {
                            kind: WorkKind::Forward,
                            stage,
                            micro_batch: mb,
                        })?;
                let bwd =
                    graph
                        .find(WorkKind::Backward, stage, mb)
                        .ok_or(AssignError::MissingTask {
                            kind: WorkKind::Backward,
                            stage,
                            micro_batch: mb,
                        })?;
                let (fd, bd) = (graph.task(fwd).device, graph.task(bwd).device);
                if fd != bd {
                    return Err(AssignError::Schedule(format!(
                        "stage {stage} micro-batch {mb}: forward on device {fd} but \
                         backward on device {bd}; the executor keeps activations local"
                    )));
                }
                if mb == n_micro - 1 {
                    *host = fd;
                }
            }
        }

        // Per-device op list with free-list slot assignment: a forward
        // claims the lowest free slot of its (device, stage); the matching
        // backward releases it. (Round-robin would be wrong: in
        // `F0 F1 B1 F2` the slot freed by B1 must be reused by F2 while
        // mb 0 still occupies slot 0.)
        let mut devices: Vec<DevicePlan> = vec![
            DevicePlan {
                ops: Vec::new(),
                aux: Vec::new(),
                n_slots: vec![0; n_stages],
            };
            n_devices
        ];
        use std::collections::HashMap;
        let mut slot_of: HashMap<(usize, usize), usize> = HashMap::new(); // (stage, mb) → slot
        let mut free_slots: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n_stages]; n_devices];
        for (dev, order) in graph.device_order().iter().enumerate() {
            for &id in order {
                let task = graph.task(id);
                let stage = task.stage;
                let mb = task.micro_batch.ok_or_else(|| {
                    AssignError::Schedule(format!(
                        "{} task on device {dev} has no micro-batch",
                        task.kind
                    ))
                })?;
                match task.kind {
                    WorkKind::Forward => {
                        let slot = match free_slots[dev][stage].pop() {
                            Some(s) => s,
                            None => {
                                let s = devices[dev].n_slots[stage];
                                devices[dev].n_slots[stage] += 1;
                                s
                            }
                        };
                        slot_of.insert((stage, mb), slot);
                        let send_to = if stage + 1 < n_stages {
                            // Coverage was validated above, so this find
                            // cannot fail.
                            let next = graph
                                .find(WorkKind::Forward, stage + 1, mb)
                                .expect("coverage validated");
                            Some(graph.task(next).device)
                        } else {
                            None
                        };
                        devices[dev].ops.push(PlanOp::Forward {
                            stage,
                            mb,
                            slot,
                            send_to,
                        });
                    }
                    WorkKind::Backward => {
                        let slot = *slot_of.get(&(stage, mb)).expect(
                            "backward after forward on the same device (validated above; \
                             device order is dependency-consistent)",
                        );
                        // Keep the free list sorted so `pop` yields the
                        // lowest slot.
                        let fl = &mut free_slots[dev][stage];
                        fl.push(slot);
                        fl.sort_unstable_by(|a, b| b.cmp(a));
                        let send_to = if stage > 0 {
                            let prev = graph
                                .find(WorkKind::Backward, stage - 1, mb)
                                .expect("coverage validated");
                            Some(graph.task(prev).device)
                        } else {
                            None
                        };
                        devices[dev].ops.push(PlanOp::Backward {
                            stage,
                            mb,
                            slot,
                            send_to,
                        });
                    }
                    other => {
                        return Err(AssignError::Schedule(format!(
                            "task kind {other} is not executable by the pipeline runner"
                        )));
                    }
                }
            }
        }

        // Aux work. With a schedule: order the capture micro-batch's
        // curvature placements and the capture host's Inversion(A)
        // placements by bubble start time (the filler's priority order).
        // Per-micro-batch curvature placements other than the capture
        // micro-batch have no runtime counterpart (K-FAC folds the last
        // micro-batch's statistics once), and Inversion(B) is absorbed
        // into the π-coupled Invert unit.
        let granularity = granularity.max(1);
        match schedule {
            Some(sched) => {
                let mut picked: Vec<(f64, usize, AuxOp)> = Vec::new(); // (start, device, op)
                let mut chunk_counter: HashMap<(usize, AuxKind), usize> = HashMap::new();
                for p in &sched.placements {
                    let kind = match p.kind {
                        WorkKind::Curvature(pipefisher_pipeline::Factor::A)
                            if p.micro_batch == Some(n_micro - 1) =>
                        {
                            AuxKind::FoldA
                        }
                        WorkKind::Curvature(pipefisher_pipeline::Factor::B)
                            if p.micro_batch == Some(n_micro - 1) =>
                        {
                            AuxKind::FoldB
                        }
                        WorkKind::Inversion(pipefisher_pipeline::Factor::A)
                            if p.device == capture_host[p.stage] =>
                        {
                            AuxKind::Invert
                        }
                        _ => continue,
                    };
                    let chunk = chunk_counter.entry((p.stage, kind)).or_insert(0);
                    picked.push((
                        p.start,
                        capture_host[p.stage],
                        AuxOp {
                            stage: p.stage,
                            kind,
                            chunk: *chunk,
                            chunks: 0, // patched below once counts are known
                        },
                    ));
                    *chunk += 1;
                }
                for (_, _, op) in &mut picked {
                    op.chunks = chunk_counter[&(op.stage, op.kind)];
                }
                picked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for (_, dev, op) in picked {
                    devices[dev].aux.push(op);
                }
            }
            None => {
                for (stage, &host) in capture_host.iter().enumerate() {
                    for kind in [AuxKind::FoldA, AuxKind::FoldB, AuxKind::Invert] {
                        for chunk in 0..granularity {
                            devices[host].aux.push(AuxOp {
                                stage,
                                kind,
                                chunk,
                                chunks: granularity,
                            });
                        }
                    }
                }
            }
        }

        Ok(ExecutablePlan {
            scheme: graph.scheme_name().to_string(),
            n_stages,
            n_micro,
            devices,
            capture_host,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assign, PipeFisherConfig};
    use pipefisher_pipeline::{PipelineScheme, StageAssignment};
    use pipefisher_sim::KindCost;

    fn kfac_costs() -> KindCost {
        KindCost {
            t_f: 1.0,
            t_b: 2.0,
            t_recompute: 0.0,
            t_curv_a: 0.4,
            t_curv_b: 0.4,
            t_inv_a: 0.6,
            t_inv_b: 0.6,
            t_prec: 0.2,
            t_sync_grad: 0.1,
            t_sync_curv: 0.1,
        }
    }

    fn lower_scheme(scheme: PipelineScheme, d: usize, n: usize) -> ExecutablePlan {
        let graph = scheme.build(d, n);
        let sched = assign(&PipeFisherConfig {
            scheme,
            d,
            n_micro: n,
            w: 1,
            costs: kfac_costs(),
            max_steps: 64,
            chimera_pair_parallelism: false,
            recompute: false,
            granularity: 2,
        })
        .unwrap();
        ExecutablePlan::lower(&graph, Some(&sched), 2).unwrap()
    }

    #[test]
    fn lowered_plans_cover_all_work() {
        for scheme in PipelineScheme::all() {
            let plan = lower_scheme(scheme, 4, 4);
            let mut fwd = 0;
            let mut bwd = 0;
            for dev in &plan.devices {
                for op in &dev.ops {
                    match op {
                        PlanOp::Forward { .. } => fwd += 1,
                        PlanOp::Backward { .. } => bwd += 1,
                    }
                }
            }
            assert_eq!(fwd, 16, "{}", scheme.name());
            assert_eq!(bwd, 16, "{}", scheme.name());
            // Every stage has exactly one capture host, and all aux work
            // lives there, 2 chunks per kind per stage.
            for stage in 0..4 {
                let host = plan.capture_host[stage];
                for kind in [AuxKind::FoldA, AuxKind::FoldB, AuxKind::Invert] {
                    let n: usize = plan
                        .devices
                        .iter()
                        .enumerate()
                        .map(|(d, dp)| {
                            let c = dp
                                .aux
                                .iter()
                                .filter(|a| a.stage == stage && a.kind == kind)
                                .count();
                            if d != host {
                                assert_eq!(c, 0, "{}: aux off-host", scheme.name());
                            }
                            c
                        })
                        .sum();
                    assert_eq!(n, 2, "{}: stage {stage} {kind:?}", scheme.name());
                }
            }
        }
    }

    #[test]
    fn expected_step_filters_aux_by_refresh_phase() {
        let plan = lower_scheme(PipelineScheme::OneFOneB, 4, 4);
        let full = plan.expected_step(true, true, true);
        // Pipeline ops are the per-device programs verbatim, every step.
        for (dev, dp) in plan.devices.iter().enumerate() {
            assert_eq!(full.ops[dev], dp.ops);
        }
        let total_aux: usize = full.aux.iter().map(Vec::len).sum();
        assert_eq!(total_aux, 4 * 3 * 2, "2 chunks x 3 kinds x 4 stages");

        let curv_only = plan.expected_step(true, true, false);
        assert!(curv_only
            .aux
            .iter()
            .flatten()
            .all(|op| matches!(op.kind, AuxKind::FoldA | AuxKind::FoldB)));
        let inv_only = plan.expected_step(true, false, true);
        assert!(inv_only
            .aux
            .iter()
            .flatten()
            .all(|op| op.kind == AuxKind::Invert));
        assert_eq!(
            curv_only.aux.iter().map(Vec::len).sum::<usize>()
                + inv_only.aux.iter().map(Vec::len).sum::<usize>(),
            total_aux
        );

        let first_order = plan.expected_step(false, true, true);
        assert_eq!(first_order.aux.iter().map(Vec::len).sum::<usize>(), 0);
        assert_eq!(
            first_order.total_events(),
            first_order.ops.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn slots_are_reused_via_free_list() {
        // 1F1B steady state interleaves F and B, so a 4-deep pipeline's
        // first stage needs exactly min(D, N) slots, not N.
        let plan = lower_scheme(PipelineScheme::OneFOneB, 4, 4);
        assert_eq!(plan.devices[0].n_slots[0], 4);
        let plan8 = {
            let graph = PipelineScheme::OneFOneB.build(4, 8);
            ExecutablePlan::lower(&graph, None, 1).unwrap()
        };
        // With 8 micro-batches the window stays bounded by the warmup depth.
        assert!(
            plan8.devices[0].n_slots[0] <= 5,
            "slots {}",
            plan8.devices[0].n_slots[0]
        );
    }

    #[test]
    fn out_of_order_backward_reuses_lowest_slot() {
        // F0 F1 B1 F2 B0 B2: F2 must land in slot 1 (freed by B1), while
        // mb 0 still holds slot 0.
        let mut g = TaskGraph::new("test", 1, 1, 3);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let f1 = g.push(
            0,
            0,
            Some(1),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let _b1 = g.push(
            0,
            0,
            Some(1),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f1],
        );
        let f2 = g.push(
            0,
            0,
            Some(2),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let _b0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f0],
        );
        let _b2 = g.push(
            0,
            0,
            Some(2),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f2],
        );
        let plan = ExecutablePlan::lower(&g, None, 1).unwrap();
        let slots: Vec<usize> = plan.devices[0]
            .ops
            .iter()
            .map(|op| match op {
                PlanOp::Forward { slot, .. } | PlanOp::Backward { slot, .. } => *slot,
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 1, 1, 0, 1]);
        assert_eq!(plan.devices[0].n_slots[0], 2);
    }

    #[test]
    fn missing_backward_is_an_error_not_a_skip() {
        let mut g = TaskGraph::new("bad", 2, 2, 1);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let f1 = g.push(
            1,
            1,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![f0],
        );
        let _b1 = g.push(
            1,
            1,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f1],
        );
        // Stage 0's backward is missing entirely.
        match ExecutablePlan::lower(&g, None, 1) {
            Err(AssignError::MissingTask {
                kind: WorkKind::Backward,
                stage: 0,
                micro_batch: 0,
            }) => {}
            other => panic!("expected MissingTask, got {other:?}"),
        }
    }

    #[test]
    fn missing_forward_is_an_error() {
        let mut g = TaskGraph::new("bad", 1, 1, 2);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let _b0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f0],
        );
        // Micro-batch 1 has a backward but no forward.
        let _b1 = g.push(
            0,
            0,
            Some(1),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![],
        );
        match ExecutablePlan::lower(&g, None, 1) {
            Err(AssignError::MissingTask {
                kind: WorkKind::Forward,
                stage: 0,
                micro_batch: 1,
            }) => {}
            other => panic!("expected MissingTask, got {other:?}"),
        }
    }

    #[test]
    fn split_forward_backward_devices_are_rejected() {
        let mut g = TaskGraph::new("bad", 2, 1, 1);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let _b0 = g.push(
            1,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f0],
        );
        match ExecutablePlan::lower(&g, None, 1) {
            Err(AssignError::Schedule(msg)) => {
                assert!(
                    msg.contains("different device") || msg.contains("device"),
                    "{msg}"
                );
            }
            other => panic!("expected Schedule error, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_task_kinds_are_rejected() {
        let mut g = TaskGraph::new("bad", 1, 1, 1);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let r = g.push(
            0,
            0,
            Some(0),
            WorkKind::Recompute,
            StageAssignment::Single,
            vec![f0],
        );
        let _b0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![r],
        );
        match ExecutablePlan::lower(&g, None, 1) {
            Err(AssignError::Schedule(msg)) => assert!(msg.contains("not executable"), "{msg}"),
            other => panic!("expected Schedule error, got {other:?}"),
        }
    }

    #[test]
    fn chimera_capture_host_is_the_up_pipeline_device() {
        // Chimera hosts stage s's late micro-batches (incl. the capture
        // micro-batch N−1) on device D−1−s.
        let plan = lower_scheme(PipelineScheme::Chimera, 4, 4);
        for stage in 0..4 {
            assert_eq!(plan.capture_host[stage], 3 - stage, "stage {stage}");
        }
    }

    #[test]
    fn routing_points_at_hosting_devices() {
        for scheme in PipelineScheme::all() {
            let graph = scheme.build(4, 4);
            let plan = ExecutablePlan::lower(&graph, None, 1).unwrap();
            for (dev, dp) in plan.devices.iter().enumerate() {
                for op in &dp.ops {
                    match *op {
                        PlanOp::Forward {
                            stage,
                            mb,
                            send_to: Some(to),
                            ..
                        } => {
                            let next = graph.find(WorkKind::Forward, stage + 1, mb).unwrap();
                            assert_eq!(graph.task(next).device, to, "{} dev {dev}", scheme.name());
                        }
                        PlanOp::Forward {
                            stage,
                            send_to: None,
                            ..
                        } => {
                            assert_eq!(stage, 3, "{}: only last stage ends", scheme.name());
                        }
                        PlanOp::Backward {
                            stage,
                            mb,
                            send_to: Some(to),
                            ..
                        } => {
                            let prev = graph.find(WorkKind::Backward, stage - 1, mb).unwrap();
                            assert_eq!(graph.task(prev).device, to, "{} dev {dev}", scheme.name());
                        }
                        PlanOp::Backward {
                            stage,
                            send_to: None,
                            ..
                        } => {
                            assert_eq!(stage, 0, "{}", scheme.name());
                        }
                    }
                }
            }
        }
    }
}
