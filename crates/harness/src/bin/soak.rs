//! Standalone soak runner: `soak [N] [--seed S] [--out PATH]`.
//!
//! Runs `N` seeded chaos scenarios (default 32) starting at seed `S`
//! (default 0) and writes a `SOAK.json` artifact (default
//! `results/SOAK.json`). Exits non-zero if any scenario violated its
//! contract; every failure line embeds the reproducing seed.

use pipefisher_harness::{run_soak, soak_report_json, SoakConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = SoakConfig::default();
    let mut out = PathBuf::from("results/SOAK.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                cfg.base_seed = v.parse().expect("--seed must be a u64");
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--help" | "-h" => {
                eprintln!("usage: soak [N] [--seed S] [--out PATH]");
                return;
            }
            n => cfg.scenarios = n.parse().unwrap_or_else(|_| panic!("bad argument: {n}")),
        }
    }
    let summary = run_soak(&cfg);
    let report = soak_report_json(&cfg, &summary);
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write report");
    eprintln!(
        "soak: {}/{} scenarios ok ({} clean, {} faulted, {} events checked) -> {}",
        summary.total - summary.failures.len(),
        summary.total,
        summary.clean,
        summary.faulted,
        summary.events_checked,
        out.display()
    );
    if !summary.passed() {
        for f in &summary.failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
