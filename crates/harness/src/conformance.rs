//! Conformance checker: validates the spans a pipelined run recorded
//! against the [`ExecutablePlan`] that drove it.
//!
//! Invariants checked, per training step:
//!
//! 1. **Program order** — each device's forward/backward events, in
//!    timestamp order, are exactly its `DevicePlan::ops` sequence (same
//!    stage / micro-batch / slot, same order, nothing missing, nothing
//!    extra, nothing on the wrong device).
//! 2. **Aux coverage** — each device executed exactly the K-FAC units
//!    [`ExecutablePlan::expected_step`] requires for the step's refresh
//!    phase, as a multiset: pickup *order* is free (that freedom is what
//!    bubble filling exploits), execution *count* is not.
//! 3. **Aux ordering** — a FoldA starts only after the stage's capture
//!    forward ended, a FoldB only after the capture backward, and (on
//!    curvature-refresh steps) an Invert only after every fold of its
//!    stage.
//! 4. **Track exclusivity** — no two slices on one device overlap in time;
//!    a device is one simulated accelerator and runs one thing at a time.

use pipefisher_core::{AuxKind, ExecutablePlan, PlanOp};
use pipefisher_trace::{Phase, TraceEvent};

/// Time tolerance (µs) for cross-event ordering comparisons. Events on one
/// device come from one thread, whose span clocks are strictly monotonic,
/// so the tolerance only absorbs f64 rounding.
const TS_EPS: f64 = 1e-6;

/// What one recorded slice did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stage forward for one micro-batch.
    Forward {
        /// Model stage.
        stage: usize,
        /// Micro-batch index.
        mb: usize,
        /// Activation slot the executor reported.
        slot: usize,
    },
    /// A stage backward for one micro-batch.
    Backward {
        /// Model stage.
        stage: usize,
        /// Micro-batch index.
        mb: usize,
        /// Activation slot the executor reported.
        slot: usize,
    },
    /// A K-FAC work unit (fold or inversion chunk).
    Aux {
        /// Unit kind.
        kind: AuxKind,
        /// Model stage the unit touches.
        stage: usize,
        /// Chunk index within the stage.
        chunk: usize,
        /// Total chunks of this (stage, kind).
        chunks: usize,
    },
}

/// One executor event reconstructed from a trace span's structured args.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecEvent {
    /// Training step the event belongs to.
    pub step: usize,
    /// Device (worker) that ran it.
    pub device: usize,
    /// What ran.
    pub kind: EventKind,
    /// Span start, microseconds since the sink epoch.
    pub ts_us: f64,
    /// Span duration in microseconds.
    pub dur_us: f64,
}

/// The K-FAC cadence of one training step, which determines the step's
/// expected aux events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSpec {
    /// Whether the optimizer is K-FAC at all.
    pub kfac: bool,
    /// Whether the step folds fresh curvature (FoldA/FoldB units apply).
    pub refresh_curv: bool,
    /// Whether the step recomputes inverses (Invert units apply).
    pub refresh_inv: bool,
}

/// A conformance violation. Every variant pinpoints the step and device so
/// a failure can be traced back into the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceError {
    /// A device's pipeline events diverged from its planned op sequence.
    ProgramOrder {
        /// Step the violation occurred in.
        step: usize,
        /// Device whose track diverged.
        device: usize,
        /// What diverged, with the first mismatch position.
        detail: String,
    },
    /// A device ran the wrong multiset of K-FAC units.
    AuxCoverage {
        /// Step the violation occurred in.
        step: usize,
        /// Device whose aux work is wrong.
        device: usize,
        /// Missing/extra units.
        detail: String,
    },
    /// An aux unit ran before its inputs existed.
    AuxOrdering {
        /// Step the violation occurred in.
        step: usize,
        /// Device that ran the premature unit.
        device: usize,
        /// Which unit ran before which prerequisite.
        detail: String,
    },
    /// Two slices on one device track overlap in time.
    TrackOverlap {
        /// Step the violation occurred in.
        step: usize,
        /// Device whose track has overlapping slices.
        device: usize,
        /// The overlapping pair.
        detail: String,
    },
    /// An event references a step or device outside the checked run.
    UnexpectedEvent {
        /// Step the event claimed.
        step: usize,
        /// Device the event claimed.
        device: usize,
        /// What the event was.
        detail: String,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::ProgramOrder {
                step,
                device,
                detail,
            } => write!(
                f,
                "program order violated (step {step}, device {device}): {detail}"
            ),
            ConformanceError::AuxCoverage {
                step,
                device,
                detail,
            } => write!(
                f,
                "aux coverage wrong (step {step}, device {device}): {detail}"
            ),
            ConformanceError::AuxOrdering {
                step,
                device,
                detail,
            } => write!(
                f,
                "aux ran before its inputs (step {step}, device {device}): {detail}"
            ),
            ConformanceError::TrackOverlap {
                step,
                device,
                detail,
            } => write!(
                f,
                "overlapping slices on one device (step {step}, device {device}): {detail}"
            ),
            ConformanceError::UnexpectedEvent {
                step,
                device,
                detail,
            } => write!(
                f,
                "event outside the run (step {step}, device {device}): {detail}"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

fn arg_usize(ev: &TraceEvent, key: &str) -> Option<usize> {
    ev.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_i64())
        .filter(|&v| v >= 0)
        .map(|v| v as usize)
}

/// Reconstructs executor events from drained trace events, using the
/// structured span args the executor attaches (`step`, `device`, `stage`,
/// …). Spans from other subsystems (trainer phases, kernel pools) and
/// events without executor args are ignored.
pub fn extract_events(trace: &[TraceEvent]) -> Vec<ExecEvent> {
    let mut out = Vec::new();
    for ev in trace {
        if ev.phase != Phase::Complete {
            continue;
        }
        let kind = match (ev.cat.as_str(), ev.name.as_str()) {
            ("pipeline", "forward") | ("pipeline", "backward") => {
                let (Some(stage), Some(mb), Some(slot)) = (
                    arg_usize(ev, "stage"),
                    arg_usize(ev, "mb"),
                    arg_usize(ev, "slot"),
                ) else {
                    continue;
                };
                if ev.name == "forward" {
                    EventKind::Forward { stage, mb, slot }
                } else {
                    EventKind::Backward { stage, mb, slot }
                }
            }
            ("kfac", name @ ("curvature_a" | "curvature_b" | "inversion")) => {
                let (Some(stage), Some(chunk), Some(chunks)) = (
                    arg_usize(ev, "stage"),
                    arg_usize(ev, "chunk"),
                    arg_usize(ev, "chunks"),
                ) else {
                    continue;
                };
                let kind = match name {
                    "curvature_a" => AuxKind::FoldA,
                    "curvature_b" => AuxKind::FoldB,
                    _ => AuxKind::Invert,
                };
                EventKind::Aux {
                    kind,
                    stage,
                    chunk,
                    chunks,
                }
            }
            _ => continue,
        };
        let (Some(step), Some(device)) = (arg_usize(ev, "step"), arg_usize(ev, "device")) else {
            continue;
        };
        out.push(ExecEvent {
            step,
            device,
            kind,
            ts_us: ev.ts_us,
            dur_us: ev.dur_us,
        });
    }
    out
}

fn aux_sort_key(
    kind: AuxKind,
    stage: usize,
    chunk: usize,
    chunks: usize,
) -> (usize, u8, usize, usize) {
    let k = match kind {
        AuxKind::FoldA => 0u8,
        AuxKind::FoldB => 1,
        AuxKind::Invert => 2,
    };
    (stage, k, chunk, chunks)
}

fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::Forward { stage, mb, slot } => format!("F(s{stage},mb{mb},slot{slot})"),
        EventKind::Backward { stage, mb, slot } => format!("B(s{stage},mb{mb},slot{slot})"),
        EventKind::Aux {
            kind,
            stage,
            chunk,
            chunks,
        } => format!("{kind:?}(s{stage},{chunk}/{chunks})"),
    }
}

fn plan_op_kind(op: &PlanOp) -> EventKind {
    match *op {
        PlanOp::Forward {
            stage, mb, slot, ..
        } => EventKind::Forward { stage, mb, slot },
        PlanOp::Backward {
            stage, mb, slot, ..
        } => EventKind::Backward { stage, mb, slot },
    }
}

/// Checks a run's events against the plan that drove it. `specs[s]` gives
/// step `s`'s K-FAC cadence; the run must contain exactly `specs.len()`
/// steps' worth of events. Returns the number of events checked.
///
/// # Errors
///
/// The first violated invariant, as a [`ConformanceError`]. Steps are
/// checked in order, and within a step, program order before aux coverage
/// before aux ordering before track overlap.
pub fn check_conformance(
    plan: &ExecutablePlan,
    specs: &[StepSpec],
    events: &[ExecEvent],
) -> Result<usize, ConformanceError> {
    let n_devices = plan.devices.len();
    for ev in events {
        if ev.step >= specs.len() || ev.device >= n_devices {
            return Err(ConformanceError::UnexpectedEvent {
                step: ev.step,
                device: ev.device,
                detail: format!(
                    "{} outside the run's {} steps x {} devices",
                    describe(&ev.kind),
                    specs.len(),
                    n_devices
                ),
            });
        }
    }
    let mut checked = 0usize;
    for (step, spec) in specs.iter().enumerate() {
        let expected = plan.expected_step(spec.kfac, spec.refresh_curv, spec.refresh_inv);
        for device in 0..n_devices {
            let mut track: Vec<&ExecEvent> = events
                .iter()
                .filter(|e| e.step == step && e.device == device)
                .collect();
            track.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).expect("finite timestamps"));

            // 1. Program order: pipeline events == the device's op list.
            let got: Vec<EventKind> = track
                .iter()
                .filter(|e| !matches!(e.kind, EventKind::Aux { .. }))
                .map(|e| e.kind)
                .collect();
            let want: Vec<EventKind> = expected.ops[device].iter().map(plan_op_kind).collect();
            if got != want {
                let pos = got
                    .iter()
                    .zip(want.iter())
                    .position(|(g, w)| g != w)
                    .unwrap_or_else(|| got.len().min(want.len()));
                let at = |v: &Vec<EventKind>| v.get(pos).map_or("<none>".to_string(), describe);
                return Err(ConformanceError::ProgramOrder {
                    step,
                    device,
                    detail: format!(
                        "{} of {} planned ops executed; first divergence at op {pos}: \
                         expected {}, got {}",
                        got.len(),
                        want.len(),
                        at(&want),
                        at(&got),
                    ),
                });
            }

            // 2. Aux coverage as a multiset.
            let mut got_aux: Vec<(usize, u8, usize, usize)> = track
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Aux {
                        kind,
                        stage,
                        chunk,
                        chunks,
                    } => Some(aux_sort_key(kind, stage, chunk, chunks)),
                    _ => None,
                })
                .collect();
            let mut want_aux: Vec<(usize, u8, usize, usize)> = expected.aux[device]
                .iter()
                .map(|a| aux_sort_key(a.kind, a.stage, a.chunk, a.chunks))
                .collect();
            got_aux.sort_unstable();
            want_aux.sort_unstable();
            if got_aux != want_aux {
                return Err(ConformanceError::AuxCoverage {
                    step,
                    device,
                    detail: format!(
                        "expected {} K-FAC units, observed {} (want {:?}, got {:?})",
                        want_aux.len(),
                        got_aux.len(),
                        want_aux,
                        got_aux
                    ),
                });
            }

            // 3. Aux ordering against the capture events. The capture
            //    micro-batch is N-1, and since aux units live on the
            //    capture host, its forward/backward are on this very track
            //    (guaranteed by the program-order check above).
            let capture_end = |want_fwd: bool, stage: usize| -> Option<f64> {
                track
                    .iter()
                    .find(|e| match e.kind {
                        EventKind::Forward { stage: s, mb, .. } => {
                            want_fwd && s == stage && mb + 1 == plan.n_micro
                        }
                        EventKind::Backward { stage: s, mb, .. } => {
                            !want_fwd && s == stage && mb + 1 == plan.n_micro
                        }
                        _ => false,
                    })
                    .map(|e| e.ts_us + e.dur_us)
            };
            for ev in &track {
                let EventKind::Aux {
                    kind,
                    stage,
                    chunk,
                    chunks,
                } = ev.kind
                else {
                    continue;
                };
                let prereq_end = match kind {
                    AuxKind::FoldA => capture_end(true, stage),
                    AuxKind::FoldB => capture_end(false, stage),
                    AuxKind::Invert if spec.refresh_curv => track
                        .iter()
                        .filter(|e| {
                            matches!(
                                e.kind,
                                EventKind::Aux {
                                    kind: AuxKind::FoldA | AuxKind::FoldB,
                                    stage: s,
                                    ..
                                } if s == stage
                            )
                        })
                        .map(|e| e.ts_us + e.dur_us)
                        .fold(None, |acc: Option<f64>, end| {
                            Some(acc.map_or(end, |a| a.max(end)))
                        }),
                    AuxKind::Invert => None, // factors already current
                };
                let Some(prereq_end) = prereq_end else {
                    if matches!(kind, AuxKind::FoldA | AuxKind::FoldB) {
                        return Err(ConformanceError::AuxOrdering {
                            step,
                            device,
                            detail: format!(
                                "{kind:?}(s{stage},{chunk}/{chunks}) ran but the capture \
                                 micro-batch event is missing from the track"
                            ),
                        });
                    }
                    continue;
                };
                if ev.ts_us + TS_EPS < prereq_end {
                    return Err(ConformanceError::AuxOrdering {
                        step,
                        device,
                        detail: format!(
                            "{kind:?}(s{stage},{chunk}/{chunks}) started at {:.3}us, before \
                             its prerequisite finished at {prereq_end:.3}us",
                            ev.ts_us
                        ),
                    });
                }
            }

            // 4. Track exclusivity: a device runs one slice at a time.
            for pair in track.windows(2) {
                let prev_end = pair[0].ts_us + pair[0].dur_us;
                if pair[1].ts_us + TS_EPS < prev_end {
                    return Err(ConformanceError::TrackOverlap {
                        step,
                        device,
                        detail: format!(
                            "{} [{:.3}, {:.3}]us overlaps {} starting at {:.3}us",
                            describe(&pair[0].kind),
                            pair[0].ts_us,
                            prev_end,
                            describe(&pair[1].kind),
                            pair[1].ts_us
                        ),
                    });
                }
            }
            checked += track.len();
        }
    }
    Ok(checked)
}
