//! Seeded chaos fabric: a [`FaultPlan`] derives every injection decision —
//! stalls, panics, slow-stage skew, out-of-order aux pickup — from a single
//! `u64` seed, keyed on *logical* coordinates (device, step, op index,
//! pickup ordinal). Replaying the same seed replays byte-for-byte the same
//! fault schedule, so any failure a soak run finds is reproducible from the
//! seed alone.

use pipefisher_lm::{ChaosHook, StepFault};
use std::time::Duration;

/// One round of the splitmix64 generator: advances `x` and returns the next
/// output. Used both as a stream (scenario generation) and, re-seeded per
/// key, as a stateless keyed hash (per-op injection decisions).
pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless keyed hash: mixes the plan seed, a domain tag, and up to three
/// logical coordinates into one splitmix64 output. Different tags give
/// independent decision streams over the same coordinates.
fn keyed(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut s = seed
        ^ tag.rotate_left(17)
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ c.wrapping_mul(0x1656_67B1_9E37_79F9);
    splitmix64(&mut s)
}

/// A seeded kill-and-resume exercise: the run checkpoints every step, a
/// panic kills `device` at the start of step `kill_after` (so exactly
/// `kill_after` steps completed and were checkpointed), and the harness
/// resumes from the newest checkpoint and trains to completion. The resumed
/// run must be bitwise-identical — per-step losses and final parameters —
/// to an uninterrupted serial oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointFault {
    /// Device whose injected panic kills the first run.
    pub device: usize,
    /// Step at whose *start* the kill fires; always ≥ 1 so at least one
    /// checkpoint exists to resume from.
    pub kill_after: usize,
}

/// A deterministic fault schedule for one pipelined run, derived entirely
/// from [`FaultPlan::seed`].
///
/// Three fault classes:
///
/// * **Liveness faults** (`fault`): at most one injected panic or stall at a
///   fixed `(device, step)`. These abort the run — a panic must surface as
///   `ExecError::StagePanic` on that device, a stall as `ExecError::Wedged`.
/// * **Timing perturbations** (per-op delays, aux pickup skew): keyed-hash
///   decisions that stretch the schedule and reorder K-FAC pickup among
///   *ready* units without changing any computed value. A run perturbed only
///   by these must still be bitwise-identical to the serial trainer.
/// * **Kill-and-resume** (`checkpoint`, mutually exclusive with `fault`):
///   a mid-run kill followed by a checkpoint restore; the resumed
///   trajectory must match the serial oracle bitwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed every decision derives from; failure messages report it.
    pub seed: u64,
    /// The liveness fault, if any: what, on which device, at which step.
    pub fault: Option<(StepFault, usize, usize)>,
    /// Per-op delay probability, numerator out of 256 (0 disables).
    pub delay_num: u32,
    /// Injected delays are drawn from `[100, delay_cap_us]` microseconds.
    pub delay_cap_us: u64,
    /// Aux skip-first-ready probability, numerator out of 256 (0 disables).
    pub skew_num: u32,
    /// The kill-and-resume exercise, if any. Never set together with
    /// `fault`; the harness drives the kill itself (see
    /// `run_scenario`), so the [`ChaosHook`] impl ignores this field.
    pub checkpoint: Option<CheckpointFault>,
}

impl FaultPlan {
    /// No injections at all — the hook is a no-op.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault: None,
            delay_num: 0,
            delay_cap_us: 0,
            skew_num: 0,
            checkpoint: None,
        }
    }

    /// Timing perturbations only (delays + aux skew), no liveness fault:
    /// the configuration for parity-checked chaos runs.
    pub fn timing_only(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::from_seed(seed, usize::MAX, usize::MAX);
        p.fault = None;
        p.checkpoint = None;
        if p.delay_num == 0 && p.skew_num == 0 {
            p.delay_num = 16;
            p.delay_cap_us = 400;
            p.skew_num = 64;
        }
        p
    }

    /// Panic `device` at the start of `step` (no timing perturbations).
    pub fn panic_at(device: usize, step: usize) -> FaultPlan {
        FaultPlan {
            fault: Some((StepFault::Panic, device, step)),
            ..FaultPlan::quiet(0)
        }
    }

    /// Wedge `device` at the start of `step` (no timing perturbations).
    pub fn stall_at(device: usize, step: usize) -> FaultPlan {
        FaultPlan {
            fault: Some((StepFault::Stall, device, step)),
            ..FaultPlan::quiet(0)
        }
    }

    /// Derives a full fault schedule from `seed` for a run of `steps` steps
    /// on `n_devices` devices. Roughly one run in four gets a liveness
    /// fault; of the rest, roughly one in four gets a kill-and-resume
    /// checkpoint exercise instead; delay and skew intensity are drawn
    /// independently (and may both be zero — clean runs are part of the
    /// space).
    pub fn from_seed(seed: u64, n_devices: usize, steps: usize) -> FaultPlan {
        let mut s = seed ^ 0xFA17_FA17_FA17_FA17;
        let roll = splitmix64(&mut s);
        let device = (splitmix64(&mut s) % n_devices.max(1) as u64) as usize;
        let step = (splitmix64(&mut s) % steps.max(1) as u64) as usize;
        let fault = match roll % 8 {
            0 => Some((StepFault::Panic, device, step)),
            1 => Some((StepFault::Stall, device, step)),
            _ => None,
        };
        let delay_num = [0u32, 8, 32][(splitmix64(&mut s) % 3) as usize];
        let delay_cap_us = 100 + splitmix64(&mut s) % 700;
        let skew_num = [0u32, 64, 128][(splitmix64(&mut s) % 3) as usize];
        let ck_roll = splitmix64(&mut s);
        let ck_device = (splitmix64(&mut s) % n_devices.max(1) as u64) as usize;
        let ck_step = 1 + (splitmix64(&mut s) % steps.saturating_sub(1).max(1) as u64) as usize;
        let checkpoint = if fault.is_none() && steps >= 2 && ck_roll.is_multiple_of(4) {
            Some(CheckpointFault {
                device: ck_device,
                kill_after: ck_step,
            })
        } else {
            None
        };
        FaultPlan {
            seed,
            fault,
            delay_num,
            delay_cap_us,
            skew_num,
            checkpoint,
        }
    }

    /// Whether this plan injects a run-aborting fault (panic or stall).
    pub fn is_fatal(&self) -> bool {
        self.fault.is_some()
    }
}

impl ChaosHook for FaultPlan {
    fn step_fault(&self, device: usize, step: usize) -> Option<StepFault> {
        match self.fault {
            Some((kind, d, s)) if d == device && s == step => Some(kind),
            _ => None,
        }
    }

    fn op_delay(&self, device: usize, step: usize, op_index: usize) -> Option<Duration> {
        if self.delay_num == 0 {
            return None;
        }
        let h = keyed(
            self.seed,
            0xDE1A,
            device as u64,
            step as u64,
            op_index as u64,
        );
        if (h & 0xFF) as u32 >= self.delay_num {
            return None;
        }
        let span = self.delay_cap_us.saturating_sub(100).max(1);
        Some(Duration::from_micros(100 + (h >> 8) % span))
    }

    fn aux_skip_first_ready(&self, device: usize, step: usize, pickup: usize) -> bool {
        if self.skew_num == 0 {
            return false;
        }
        let h = keyed(self.seed, 0x5CE1, device as u64, step as u64, pickup as u64);
        ((h & 0xFF) as u32) < self.skew_num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_decisions() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = FaultPlan::from_seed(seed, 4, 5);
            let b = FaultPlan::from_seed(seed, 4, 5);
            assert_eq!(a, b);
            for dev in 0..4 {
                for step in 0..5 {
                    assert_eq!(a.step_fault(dev, step), b.step_fault(dev, step));
                    for op in 0..32 {
                        assert_eq!(a.op_delay(dev, step, op), b.op_delay(dev, step, op));
                    }
                    for pickup in 0..16 {
                        assert_eq!(
                            a.aux_skip_first_ready(dev, step, pickup),
                            b.aux_skip_first_ready(dev, step, pickup)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        // Not a tautology for a broken hash that ignores its seed.
        let mut distinct = false;
        for seed in 0..64u64 {
            if FaultPlan::from_seed(seed, 4, 5) != FaultPlan::from_seed(seed + 64, 4, 5) {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "64 seed pairs produced identical plans");
    }

    #[test]
    fn fault_coordinates_stay_in_range() {
        for seed in 0..256u64 {
            let p = FaultPlan::from_seed(seed, 3, 4);
            if let Some((_, dev, step)) = p.fault {
                assert!(dev < 3, "seed {seed}: device {dev}");
                assert!(step < 4, "seed {seed}: step {step}");
            }
            assert!(p.delay_cap_us >= 100);
        }
    }

    #[test]
    fn injected_delays_respect_the_cap() {
        let p = FaultPlan {
            seed: 9,
            fault: None,
            delay_num: 256, // always fire
            delay_cap_us: 350,
            skew_num: 0,
            checkpoint: None,
        };
        for op in 0..64 {
            let d = p.op_delay(0, 0, op).expect("delay_num 256 always fires");
            assert!(d >= Duration::from_micros(100) && d < Duration::from_micros(450));
        }
    }

    #[test]
    fn checkpoint_faults_are_exclusive_bounded_and_drawn() {
        let mut drawn = false;
        for seed in 0..512u64 {
            let p = FaultPlan::from_seed(seed, 4, 4);
            if let Some(ck) = p.checkpoint {
                drawn = true;
                assert!(
                    p.fault.is_none(),
                    "seed {seed}: liveness and checkpoint faults drawn together"
                );
                assert!(
                    ck.kill_after >= 1 && ck.kill_after < 4,
                    "seed {seed}: kill_after {} outside [1, steps)",
                    ck.kill_after
                );
                assert!(ck.device < 4, "seed {seed}: device {}", ck.device);
            }
        }
        assert!(drawn, "512 seeds never drew a checkpoint fault");
        assert_eq!(FaultPlan::timing_only(3).checkpoint, None);
        assert_eq!(FaultPlan::quiet(3).checkpoint, None);
    }

    #[test]
    fn targeted_constructors_hit_only_their_coordinate() {
        let p = FaultPlan::panic_at(1, 2);
        assert_eq!(p.step_fault(1, 2), Some(StepFault::Panic));
        assert_eq!(p.step_fault(1, 1), None);
        assert_eq!(p.step_fault(0, 2), None);
        assert_eq!(p.op_delay(1, 2, 0), None);
        let s = FaultPlan::stall_at(0, 0);
        assert_eq!(s.step_fault(0, 0), Some(StepFault::Stall));
        assert!(s.is_fatal() && p.is_fatal() && !FaultPlan::quiet(3).is_fatal());
    }
}
