//! Deterministic conformance & chaos-testing harness for the pipeline
//! executor (DESIGN.md §3.14).
//!
//! PipeFisher's correctness claim is that K-FAC work scheduled into
//! pipeline bubbles is *exactly* the serial work, just reordered. This
//! crate proves that mechanically, three layers deep:
//!
//! 1. **Chaos fabric** ([`FaultPlan`]) — every injected stall, panic,
//!    slow-stage delay, and out-of-order aux pickup derives from one `u64`
//!    seed via keyed hashing on logical coordinates, so a fault schedule
//!    replays byte-for-byte from the seed.
//! 2. **Conformance checker** ([`check_conformance`]) — drains the run's
//!    trace spans and validates them against the lowered `ExecutablePlan`:
//!    per-device program order, exactly-once coverage of every
//!    forward/backward and K-FAC unit, fold/invert dependency order, and
//!    no overlapping slices on a device track.
//! 3. **Scenario runner** ([`Scenario`], [`run_scenario`], [`run_soak`]) —
//!    seeded generation over (scheme × stages × micro-batches × optimizer
//!    × fault plan); fault-free runs must additionally match the serial
//!    single-thread `Trainer` oracle bitwise, injected faults must surface
//!    as the matching `ExecError`. Failure messages always embed the seed.
//!
//! The checker itself is validated by mutation (`tests/
//! conformance_mutations.rs`): dropped, duplicated, reordered, and
//! device-moved events must each make it fail.

mod conformance;
mod fault;
mod report;
mod scenario;

pub use conformance::{
    check_conformance, extract_events, ConformanceError, EventKind, ExecEvent, StepSpec,
};
pub use fault::{splitmix64, CheckpointFault, FaultPlan};
pub use report::{run_soak, soak_report_json, SoakConfig, SoakSummary};
pub use scenario::{
    execute, run_scenario, Execution, OptimizerKind, OracleCache, Scenario, ScenarioFailure,
    ScenarioOutcome,
};
