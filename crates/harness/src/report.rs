//! Soak runner: executes a block of seeded scenarios and writes a
//! `SOAK.json` report in the same artifact style as the `BENCH_*.json`
//! files (a `host_cores` count and a `note` caveat are always present).

use crate::scenario::{run_scenario, OracleCache, Scenario, ScenarioOutcome};
use serde_json::{json, Value};

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Scenario count; scenario `i` uses seed `base_seed + i`.
    pub scenarios: usize,
    /// First seed of the block.
    pub base_seed: u64,
    /// Forced compute-thread cap (from `PIPEFISHER_THREADS`); `None` lets
    /// each scenario draw its own.
    pub threads_override: Option<usize>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            scenarios: 32,
            base_seed: 0,
            threads_override: std::env::var("PIPEFISHER_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1),
        }
    }
}

/// Aggregate result of a soak run.
#[derive(Debug, Default)]
pub struct SoakSummary {
    /// Scenarios executed.
    pub total: usize,
    /// Fault-free scenarios that passed conformance + bitwise parity.
    pub clean: usize,
    /// Scenarios whose injected fault surfaced correctly.
    pub faulted: usize,
    /// Kill-and-resume scenarios that resumed bitwise-identical to the
    /// serial oracle.
    pub resumed: usize,
    /// Total events the conformance checker validated.
    pub events_checked: usize,
    /// Serial oracles trained (cache size).
    pub oracles: usize,
    /// Contract violations; each message embeds the reproducing seed.
    pub failures: Vec<String>,
}

impl SoakSummary {
    /// Whether every scenario honored its contract.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `cfg.scenarios` consecutive seeds and aggregates the outcomes.
/// Progress goes to stderr (one line per scenario); failures are collected,
/// not fatal, so one bad seed does not hide the rest of the block.
pub fn run_soak(cfg: &SoakConfig) -> SoakSummary {
    let mut cache = OracleCache::default();
    let mut summary = SoakSummary::default();
    for i in 0..cfg.scenarios {
        let seed = cfg.base_seed.wrapping_add(i as u64);
        let mut sc = Scenario::from_seed(seed);
        if let Some(threads) = cfg.threads_override {
            sc.threads = threads;
        }
        summary.total += 1;
        match run_scenario(&sc, &mut cache) {
            Ok(ScenarioOutcome::Clean { events_checked }) => {
                summary.clean += 1;
                summary.events_checked += events_checked;
                eprintln!(
                    "soak seed {seed}: clean, {events_checked} events conform [{}]",
                    sc.describe()
                );
            }
            Ok(ScenarioOutcome::Faulted { error }) => {
                summary.faulted += 1;
                eprintln!("soak seed {seed}: fault surfaced correctly ({error})");
            }
            Ok(ScenarioOutcome::Resumed { resumed_at }) => {
                summary.resumed += 1;
                eprintln!(
                    "soak seed {seed}: killed at step {resumed_at}, resumed bitwise-identical \
                     [{}]",
                    sc.describe()
                );
            }
            Err(failure) => {
                eprintln!("soak FAILURE: {failure}");
                summary.failures.push(failure.to_string());
            }
        }
    }
    summary.oracles = cache.len();
    summary
}

/// Serializes a soak run in the repo's bench-artifact style.
pub fn soak_report_json(cfg: &SoakConfig, summary: &SoakSummary) -> Value {
    json!({
        "bench": "soak",
        "workload": format!(
            "{} seeded chaos scenarios (seeds {}..{}) over scheme x stages x micro-batches \
             x optimizer x fault plan; fault-free runs checked for plan conformance and \
             bitwise parity with the serial trainer",
            cfg.scenarios,
            cfg.base_seed,
            cfg.base_seed + cfg.scenarios as u64,
        ),
        "host_cores": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "note": "any failure message embeds the reproducing u64 seed; replay with \
                 Scenario::from_seed(seed). threads_override reflects PIPEFISHER_THREADS.",
        "base_seed": cfg.base_seed,
        "threads_override": cfg.threads_override,
        "scenarios": summary.total,
        "clean": summary.clean,
        "faulted": summary.faulted,
        "resumed": summary.resumed,
        "events_checked": summary.events_checked,
        "oracles_trained": summary.oracles,
        "failures": summary.failures.clone(),
        "passed": summary.passed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_artifact_caveat_fields() {
        let cfg = SoakConfig {
            scenarios: 2,
            base_seed: 9,
            threads_override: Some(1),
        };
        let summary = SoakSummary {
            total: 2,
            clean: 1,
            faulted: 1,
            resumed: 0,
            events_checked: 120,
            oracles: 1,
            failures: vec![],
        };
        let v = soak_report_json(&cfg, &summary);
        assert!(v.get("host_cores").and_then(Value::as_i64).unwrap_or(0) >= 1);
        assert!(v
            .get("note")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("seed")));
        assert_eq!(v.get("passed").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("scenarios").and_then(Value::as_i64), Some(2));
    }
}
