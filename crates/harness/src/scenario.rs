//! Seeded scenario generation and execution.
//!
//! A [`Scenario`] is one fully-determined pipelined training run — scheme,
//! stage count, micro-batches, optimizer, thread count, and a [`FaultPlan`]
//! — derived from a single `u64` seed. [`run_scenario`] executes it under
//! tracing, then:
//!
//! * if the fault plan injected a panic/stall, asserts the run aborted with
//!   the matching `ExecError` (attributed to the right device for panics);
//! * otherwise runs the conformance checker against the exact
//!   `ExecutablePlan` the executor used, and asserts bitwise loss and
//!   parameter parity with the serial single-thread `Trainer` oracle.
//!
//! Every failure message embeds the scenario seed, so any soak failure is
//! replayable with `Scenario::from_seed(seed)`.

use crate::conformance::{check_conformance, extract_events, ExecEvent, StepSpec};
use crate::fault::{splitmix64, CheckpointFault, FaultPlan};
use pipefisher_core::ExecutablePlan;
use pipefisher_lm::{
    plan_for, BatchSampler, CheckpointPolicy, ExecError, OptimizerChoice, PipelineOptions,
    ResumeFrom, SyntheticLanguage, TrainOptions, Trainer,
};
use pipefisher_nn::{BertConfig, BertForPreTraining};
use pipefisher_optim::{KfacConfig, LrSchedule};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_tensor::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use pipefisher_lm::StepFault;

/// Serializes scenario executions: tracing, the thread-count override, and
/// the trace sink are all process-global.
fn harness_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The optimizer a scenario trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// NVLAMB — first-order baseline, no K-FAC aux work expected.
    Lamb,
    /// K-FAC on NVLAMB with the given refresh cadence.
    Kfac {
        /// Steps between curvature folds.
        curvature_interval: usize,
        /// Steps between inverse refreshes.
        inversion_interval: usize,
    },
}

impl OptimizerKind {
    /// The trainer-facing optimizer choice.
    pub fn choice(&self) -> OptimizerChoice {
        match *self {
            OptimizerKind::Lamb => OptimizerChoice::Lamb { weight_decay: 0.01 },
            OptimizerKind::Kfac {
                curvature_interval,
                inversion_interval,
            } => OptimizerChoice::Kfac {
                weight_decay: 0.01,
                kfac: KfacConfig {
                    damping: 3e-2,
                    ema_decay: 0.5,
                    curvature_interval,
                    inversion_interval,
                    kl_clip: Some(1e-2),
                    factor_block_size: None,
                },
            },
        }
    }

    /// The expected K-FAC cadence of step `step` (mirrors the trainer's
    /// `refreshes_curvature_at` / `inverts_at`).
    pub fn spec_at(&self, step: usize) -> StepSpec {
        match *self {
            OptimizerKind::Lamb => StepSpec {
                kfac: false,
                refresh_curv: false,
                refresh_inv: false,
            },
            OptimizerKind::Kfac {
                curvature_interval,
                inversion_interval,
            } => StepSpec {
                kfac: true,
                refresh_curv: step.is_multiple_of(curvature_interval),
                refresh_inv: step.is_multiple_of(inversion_interval),
            },
        }
    }

    fn key(&self) -> String {
        match *self {
            OptimizerKind::Lamb => "lamb".to_string(),
            OptimizerKind::Kfac {
                curvature_interval,
                inversion_interval,
            } => format!("kfac{curvature_interval}-{inversion_interval}"),
        }
    }
}

/// One fully-determined pipelined run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed everything below derives from.
    pub seed: u64,
    /// Pipeline schedule shape.
    pub scheme: PipelineScheme,
    /// Stage / device count.
    pub n_stages: usize,
    /// Micro-batches per step.
    pub n_micro: usize,
    /// Optimizer steps to train.
    pub steps: usize,
    /// Optimizer under test.
    pub optimizer: OptimizerKind,
    /// Compute-thread cap for the run.
    pub threads: usize,
    /// Whether K-FAC work fills bubbles (vs running as tail work).
    pub fill_bubbles: bool,
    /// Trainer/model seed (shared with the oracle).
    pub data_seed: u64,
    /// The fault schedule.
    pub fault: FaultPlan,
}

impl Scenario {
    /// Derives a scenario from `seed`. Shape rules are respected by
    /// construction: Chimera is only drawn with even stage and micro-batch
    /// counts, and the fault plan's coordinates are clamped to the run.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut s = seed ^ 0x5EED_5EED_5EED_5EED;
        let n_stages = [1usize, 2, 2, 4][(splitmix64(&mut s) % 4) as usize];
        let mut schemes = vec![PipelineScheme::GPipe, PipelineScheme::OneFOneB];
        if n_stages.is_multiple_of(2) {
            schemes.push(PipelineScheme::Chimera);
        }
        let scheme = schemes[(splitmix64(&mut s) % schemes.len() as u64) as usize];
        let n_micro = if scheme == PipelineScheme::Chimera {
            [2usize, 4][(splitmix64(&mut s) % 2) as usize]
        } else {
            [2usize, 3, 4][(splitmix64(&mut s) % 3) as usize]
        };
        let steps = 3 + (splitmix64(&mut s) % 2) as usize;
        let optimizer = match splitmix64(&mut s) % 4 {
            0 => OptimizerKind::Lamb,
            1 => OptimizerKind::Kfac {
                curvature_interval: 1,
                inversion_interval: 2,
            },
            _ => OptimizerKind::Kfac {
                curvature_interval: 2,
                inversion_interval: 3,
            },
        };
        let threads = [1usize, 4][(splitmix64(&mut s) % 2) as usize];
        let fill_bubbles = !splitmix64(&mut s).is_multiple_of(4);
        Scenario {
            seed,
            scheme,
            n_stages,
            n_micro,
            steps,
            optimizer,
            threads,
            fill_bubbles,
            data_seed: 7,
            fault: FaultPlan::from_seed(seed, n_stages, steps),
        }
    }

    /// The model shape the scenario trains (mirrors the executor tests:
    /// tiny BERT up to two stages, mini BERT for four).
    pub fn config(&self) -> BertConfig {
        if self.n_stages <= 2 {
            BertConfig::tiny(36, 16)
        } else {
            BertConfig::mini(36, 16)
        }
    }

    /// One-line human description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} D={} N={} steps={} opt={} threads={} fill={} fault={:?}",
            self.scheme.name(),
            self.n_stages,
            self.n_micro,
            self.steps,
            self.optimizer.key(),
            self.threads,
            self.fill_bubbles,
            self.fault.fault,
        )
    }
}

fn setup(config: &BertConfig, seed: u64) -> (Trainer, BertForPreTraining) {
    let lang = SyntheticLanguage::new(config.vocab_size, 2, 4, 11);
    let sampler = BatchSampler::new(lang, config.max_seq);
    let trainer = Trainer::new(sampler, 8, LrSchedule::Constant(5e-3), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = BertForPreTraining::new(config.clone(), 0.0, &mut rng);
    (trainer, model)
}

fn param_bits(model: &mut BertForPreTraining) -> Vec<u64> {
    let mut bits = Vec::new();
    model.visit_params(&mut |p| bits.extend(p.value.as_slice().iter().map(|v| v.to_bits())));
    bits
}

/// The raw material of one traced scenario execution.
#[derive(Debug)]
pub struct Execution {
    /// The exact plan the executor ran.
    pub plan: ExecutablePlan,
    /// Per-step K-FAC cadence.
    pub specs: Vec<StepSpec>,
    /// Executor events reconstructed from the drained trace.
    pub events: Vec<ExecEvent>,
    /// Loss and final-parameter bits on success, the executor error
    /// otherwise.
    pub result: Result<(Vec<u64>, Vec<u64>), ExecError>,
}

fn execute_inner(sc: &Scenario) -> Execution {
    let mut opts = PipelineOptions::new(sc.scheme, sc.n_stages, sc.n_micro);
    opts.fill_bubbles = sc.fill_bubbles;
    if matches!(sc.fault.fault, Some((StepFault::Stall, _, _))) {
        // A stall only resolves via the watchdog; keep that quick.
        opts.watchdog = Duration::from_millis(300);
    }
    opts.chaos = Some(Arc::new(sc.fault.clone()));
    let plan = plan_for(&opts).expect("generated scenarios lower cleanly");
    let specs: Vec<StepSpec> = (0..sc.steps).map(|s| sc.optimizer.spec_at(s)).collect();

    par::set_max_threads(sc.threads);
    pipefisher_trace::set_enabled(false);
    let _ = pipefisher_trace::drain(); // discard any prior run's leftovers
    pipefisher_trace::set_enabled(true);
    let (mut trainer, model) = setup(&sc.config(), sc.data_seed);
    let run = trainer.run_pipelined(model, &sc.optimizer.choice(), sc.steps, &opts);
    pipefisher_trace::set_enabled(false);
    let events = extract_events(&pipefisher_trace::drain());
    par::set_max_threads(0);

    let result = run.map(|outcome| {
        let loss_bits = outcome.run.losses.iter().map(|l| l.to_bits()).collect();
        let mut model = outcome.model;
        (loss_bits, param_bits(&mut model))
    });
    Execution {
        plan,
        specs,
        events,
        result,
    }
}

/// Runs the scenario's pipelined training under tracing and returns the
/// plan, events, and result. Takes the process-global harness lock.
pub fn execute(sc: &Scenario) -> Execution {
    let _gate = harness_lock();
    execute_inner(sc)
}

/// A cached oracle trajectory: `(loss bits, final parameter bits)`.
type OracleBits = Arc<(Vec<u64>, Vec<u64>)>;

/// Cache of serial-oracle trajectories keyed by everything that determines
/// them (model shape, optimizer, steps, micro-batches, data seed), so a
/// soak run re-trains each oracle once, not per scenario.
#[derive(Default)]
pub struct OracleCache {
    map: HashMap<String, OracleBits>,
}

impl OracleCache {
    fn get_or_run(&mut self, sc: &Scenario) -> OracleBits {
        let key = format!(
            "{:?}|{}|{}|{}|{}",
            sc.config(),
            sc.optimizer.key(),
            sc.steps,
            sc.n_micro,
            sc.data_seed
        );
        if let Some(hit) = self.map.get(&key) {
            return Arc::clone(hit);
        }
        par::set_max_threads(1);
        let (mut trainer, mut model) = setup(&sc.config(), sc.data_seed);
        let run = trainer.run_with_options(
            &mut model,
            &sc.optimizer.choice(),
            sc.steps,
            &TrainOptions {
                accumulation_steps: sc.n_micro,
                grad_delay: 0,
            },
        );
        par::set_max_threads(0);
        let loss_bits = run.losses.iter().map(|l| l.to_bits()).collect();
        let oracle = Arc::new((loss_bits, param_bits(&mut model)));
        self.map.insert(key, Arc::clone(&oracle));
        oracle
    }

    /// Distinct oracles trained so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no oracle has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// How a checked scenario ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOutcome {
    /// No fault was scheduled; the run completed, conformed to its plan,
    /// and matched the serial oracle bitwise.
    Clean {
        /// Events the conformance checker validated.
        events_checked: usize,
    },
    /// A scheduled panic/stall fired and was reported correctly.
    Faulted {
        /// The executor error, as displayed.
        error: String,
    },
    /// A kill-and-resume exercise: the run was killed mid-flight, resumed
    /// from its newest checkpoint, and finished bitwise-identical to the
    /// serial oracle.
    Resumed {
        /// The step the resumed run restarted at (== steps completed
        /// before the kill).
        resumed_at: usize,
    },
}

/// A scenario that violated its contract. The message always embeds the
/// reproducing seed.
#[derive(Debug, Clone)]
pub struct ScenarioFailure {
    /// Seed that deterministically replays the failure.
    pub seed: u64,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario seed {} failed (replay: Scenario::from_seed({})): {}",
            self.seed, self.seed, self.message
        )
    }
}

impl std::error::Error for ScenarioFailure {}

/// Kill-and-resume execution: trains with per-step checkpointing, kills the
/// run with an injected panic at the start of step `cf.kill_after`, resumes
/// from the newest checkpoint into a fresh trainer/model, and returns the
/// resumed run's `(loss bits, final parameter bits)` — which the caller
/// compares against the serial oracle's tail.
///
/// Timing perturbations from the scenario's fault plan stay active in both
/// halves (they are bitwise-safe by contract), so resume correctness is
/// exercised under schedule skew too.
fn execute_resume_inner(
    sc: &Scenario,
    cf: &CheckpointFault,
) -> Result<(Vec<u64>, Vec<u64>), String> {
    let dir = std::env::temp_dir().join(format!(
        "pipefisher-chaos-ckpt-{}-{}",
        std::process::id(),
        sc.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    par::set_max_threads(sc.threads);
    let result = (|| {
        // Phase 1: checkpoint every step, die at the start of `kill_after`.
        let mut opts = PipelineOptions::new(sc.scheme, sc.n_stages, sc.n_micro);
        opts.fill_bubbles = sc.fill_bubbles;
        opts.checkpoint = Some(CheckpointPolicy {
            dir: dir.clone(),
            every: 1,
            retain: 2,
        });
        let mut kill = sc.fault.clone();
        kill.fault = Some((StepFault::Panic, cf.device, cf.kill_after));
        opts.chaos = Some(Arc::new(kill));
        let (mut trainer, model) = setup(&sc.config(), sc.data_seed);
        let err = match trainer.run_pipelined(model, &sc.optimizer.choice(), sc.steps, &opts) {
            Err(e) => e,
            Ok(_) => return Err("injected kill never fired".to_string()),
        };
        if !matches!(err, ExecError::StagePanic { .. }) {
            return Err(format!("kill surfaced as the wrong error: {err}"));
        }
        if err.completed_steps() != cf.kill_after {
            return Err(format!(
                "kill at step {} reported {} completed steps",
                cf.kill_after,
                err.completed_steps()
            ));
        }

        // Phase 2: fresh everything, resume from the newest checkpoint.
        let mut opts = PipelineOptions::new(sc.scheme, sc.n_stages, sc.n_micro);
        opts.fill_bubbles = sc.fill_bubbles;
        let mut quiet = sc.fault.clone();
        quiet.fault = None;
        opts.chaos = Some(Arc::new(quiet));
        opts.resume = Some(ResumeFrom::Latest(dir.clone()));
        let (mut trainer, model) = setup(&sc.config(), sc.data_seed);
        let outcome = trainer
            .run_pipelined(model, &sc.optimizer.choice(), sc.steps, &opts)
            .map_err(|e| format!("resumed run aborted: {e}"))?;
        let want_losses = sc.steps - cf.kill_after;
        if outcome.run.losses.len() != want_losses {
            return Err(format!(
                "resumed run recorded {} losses, expected {want_losses}",
                outcome.run.losses.len()
            ));
        }
        let loss_bits = outcome.run.losses.iter().map(|l| l.to_bits()).collect();
        let mut model = outcome.model;
        Ok((loss_bits, param_bits(&mut model)))
    })();
    par::set_max_threads(0);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Executes `sc` and checks every applicable contract. See module docs for
/// what "pass" means for faulty vs fault-free scenarios.
///
/// # Errors
///
/// [`ScenarioFailure`] (seed included) when the run violates its contract:
/// wrong/missing fault surfacing, a conformance violation, or any bitwise
/// divergence from the serial oracle.
pub fn run_scenario(
    sc: &Scenario,
    cache: &mut OracleCache,
) -> Result<ScenarioOutcome, ScenarioFailure> {
    let _gate = harness_lock();
    let fail = |message: String| ScenarioFailure {
        seed: sc.seed,
        message: format!("[{}] {message}", sc.describe()),
    };
    if let Some(cf) = sc.fault.checkpoint {
        let (loss_bits, bits) = execute_resume_inner(sc, &cf).map_err(&fail)?;
        let oracle = cache.get_or_run(sc);
        if loss_bits[..] != oracle.0[cf.kill_after..] {
            return Err(fail(format!(
                "resumed losses (steps {}..{}) diverged bitwise from the serial oracle",
                cf.kill_after, sc.steps
            )));
        }
        if bits != oracle.1 {
            return Err(fail(
                "resumed final parameters diverged bitwise from the serial oracle".to_string(),
            ));
        }
        return Ok(ScenarioOutcome::Resumed {
            resumed_at: cf.kill_after,
        });
    }
    let ex = execute_inner(sc);
    match (sc.fault.fault, ex.result) {
        (Some((StepFault::Panic, device, _)), Err(ExecError::StagePanic { device: got, .. })) => {
            if got != device {
                return Err(fail(format!(
                    "injected panic on device {device} was attributed to device {got}"
                )));
            }
            Ok(ScenarioOutcome::Faulted {
                error: format!("StagePanic on device {got}"),
            })
        }
        (Some((StepFault::Stall, _, _)), Err(e @ ExecError::Wedged { .. })) => {
            Ok(ScenarioOutcome::Faulted {
                error: e.to_string(),
            })
        }
        (Some((kind, device, step)), Err(e)) => Err(fail(format!(
            "injected {kind:?} on device {device} at step {step} surfaced as the wrong \
             error: {e}"
        ))),
        (Some((kind, device, step)), Ok(_)) => Err(fail(format!(
            "injected {kind:?} on device {device} at step {step} never fired"
        ))),
        (None, Err(e)) => Err(fail(format!("fault-free run aborted: {e}"))),
        (None, Ok((loss_bits, bits))) => {
            let events_checked = check_conformance(&ex.plan, &ex.specs, &ex.events)
                .map_err(|e| fail(format!("conformance: {e}")))?;
            let oracle = cache.get_or_run(sc);
            if loss_bits != oracle.0 {
                return Err(fail(
                    "loss trajectory diverged bitwise from the serial oracle".to_string(),
                ));
            }
            if bits != oracle.1 {
                return Err(fail(
                    "final parameters diverged bitwise from the serial oracle".to_string(),
                ));
            }
            Ok(ScenarioOutcome::Clean { events_checked })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_well_shaped() {
        for seed in 0..512u64 {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert_eq!(a.fault, b.fault, "seed {seed}");
            assert!(a.n_stages >= 1 && a.n_micro >= 2 && a.steps >= 3);
            if a.scheme == PipelineScheme::Chimera {
                assert!(
                    a.n_stages.is_multiple_of(2) && a.n_micro.is_multiple_of(2),
                    "seed {seed}: Chimera drawn with odd shape"
                );
            }
            if let Some((_, dev, step)) = a.fault.fault {
                assert!(dev < a.n_stages && step < a.steps, "seed {seed}");
            }
        }
    }

    #[test]
    fn seed_space_covers_every_axis() {
        let mut lamb = false;
        let (mut d4, mut chimera, mut fatal, mut unfilled) = (false, false, false, false);
        for seed in 0..256u64 {
            let sc = Scenario::from_seed(seed);
            lamb |= sc.optimizer == OptimizerKind::Lamb;
            d4 |= sc.n_stages == 4;
            chimera |= sc.scheme == PipelineScheme::Chimera;
            fatal |= sc.fault.is_fatal();
            unfilled |= !sc.fill_bubbles;
        }
        assert!(lamb && d4 && chimera && fatal && unfilled);
    }
}
