//! Kill-and-resume chaos: seeded scenarios that checkpoint every step, die
//! from an injected panic mid-run, resume from the newest checkpoint, and
//! must finish bitwise-identical to the uninterrupted serial oracle
//! (per-step losses and final parameters).
//!
//! The smoke test runs the first few checkpoint-fault scenarios from the
//! seed space; the `#[ignore]`d block is the CI release leg (32 scenarios,
//! run with `cargo test --release -- --ignored`).

use pipefisher_harness::{run_scenario, OracleCache, Scenario, ScenarioOutcome};

/// First `want` seeds (from `base` upward) whose scenario draws a
/// kill-and-resume checkpoint fault.
fn checkpoint_seeds(base: u64, want: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut seed = base;
    while out.len() < want {
        if Scenario::from_seed(seed).fault.checkpoint.is_some() {
            out.push(seed);
        }
        seed += 1;
        assert!(
            seed - base < 100_000,
            "seed space starved of checkpoint faults"
        );
    }
    out
}

fn run_seeds(seeds: &[u64]) {
    let mut cache = OracleCache::default();
    for &seed in seeds {
        let sc = Scenario::from_seed(seed);
        let cf = sc
            .fault
            .checkpoint
            .expect("selected seeds draw a checkpoint fault");
        match run_scenario(&sc, &mut cache) {
            Ok(ScenarioOutcome::Resumed { resumed_at }) => {
                assert_eq!(resumed_at, cf.kill_after, "seed {seed}");
            }
            Ok(other) => panic!("seed {seed}: checkpoint scenario ended as {other:?}"),
            Err(failure) => panic!("{failure}"),
        }
    }
}

#[test]
fn kill_and_resume_smoke() {
    // Keep the smoke cheap: the first two checkpoint scenarios on tiny
    // models (≤ 2 stages).
    let seeds: Vec<u64> = checkpoint_seeds(0, 64)
        .into_iter()
        .filter(|&s| Scenario::from_seed(s).n_stages <= 2)
        .take(2)
        .collect();
    assert_eq!(seeds.len(), 2, "not enough small checkpoint scenarios");
    run_seeds(&seeds);
}

#[test]
#[ignore = "CI release leg: 32 kill-and-resume scenarios (~minutes)"]
fn kill_and_resume_soak_32() {
    run_seeds(&checkpoint_seeds(0, 32));
}
