//! Mutation validation of the conformance checker: a checker that accepts
//! everything proves nothing, so every class of corruption — dropped,
//! duplicated, reordered, device-moved, premature, overlapping, and
//! out-of-range events — must make it fail on an otherwise-genuine trace.

use pipefisher_core::AuxKind;
use pipefisher_harness::{
    check_conformance, execute, ConformanceError, EventKind, ExecEvent, Execution, FaultPlan,
    OptimizerKind, Scenario,
};
use pipefisher_pipeline::PipelineScheme;
use std::sync::OnceLock;

/// A fault-free K-FAC scenario whose plan exercises both devices, folds,
/// and inversions every step.
fn base_scenario() -> Scenario {
    Scenario {
        seed: 0xC0FFEE,
        scheme: PipelineScheme::OneFOneB,
        n_stages: 2,
        n_micro: 4,
        steps: 3,
        optimizer: OptimizerKind::Kfac {
            curvature_interval: 1,
            inversion_interval: 2,
        },
        threads: 1,
        fill_bubbles: true,
        data_seed: 7,
        fault: FaultPlan::quiet(0xC0FFEE),
    }
}

/// One genuine execution, shared by every mutation (the run itself is the
/// expensive part; mutations are pure data edits).
fn genuine() -> &'static Execution {
    static EX: OnceLock<Execution> = OnceLock::new();
    EX.get_or_init(|| {
        let ex = execute(&base_scenario());
        assert!(ex.result.is_ok(), "base scenario must run clean");
        ex
    })
}

fn check(events: &[ExecEvent]) -> Result<usize, ConformanceError> {
    let ex = genuine();
    check_conformance(&ex.plan, &ex.specs, events)
}

fn find(events: &[ExecEvent], pred: impl Fn(&ExecEvent) -> bool) -> usize {
    events
        .iter()
        .position(pred)
        .expect("trace contains the event class this mutation targets")
}

fn is_pipeline(e: &ExecEvent) -> bool {
    !matches!(e.kind, EventKind::Aux { .. })
}

#[test]
fn genuine_trace_conforms() {
    let ex = genuine();
    let checked = check(&ex.events).expect("unmutated trace must pass");
    assert_eq!(checked, ex.events.len(), "every event must be checked");
    assert!(checked > 0, "trace must not be empty");
}

#[test]
fn dropped_pipeline_event_fails() {
    let mut events = genuine().events.clone();
    events.remove(find(&events, is_pipeline));
    let err = check(&events).expect_err("dropped forward/backward must fail");
    assert!(
        matches!(err, ConformanceError::ProgramOrder { .. }),
        "got: {err}"
    );
}

#[test]
fn duplicated_pipeline_event_fails() {
    let mut events = genuine().events.clone();
    let dup = events[find(&events, is_pipeline)].clone();
    events.push(dup);
    let err = check(&events).expect_err("duplicated forward/backward must fail");
    assert!(
        matches!(err, ConformanceError::ProgramOrder { .. }),
        "got: {err}"
    );
}

#[test]
fn reordered_pipeline_events_fail() {
    let mut events = genuine().events.clone();
    // Swap the timestamps of two *distinct* consecutive pipeline events of
    // one device track, reversing their observed order.
    let a = find(&events, is_pipeline);
    let b = find(&events, |e| {
        is_pipeline(e) && e.device == events[a].device && e.ts_us > events[a].ts_us
    });
    let (ta, tb) = (events[a].ts_us, events[b].ts_us);
    events[a].ts_us = tb;
    events[b].ts_us = ta;
    // Neutralize durations so the swap cannot fail as a mere overlap.
    events[a].dur_us = 0.0;
    events[b].dur_us = 0.0;
    let err = check(&events).expect_err("reordered ops must fail");
    assert!(
        matches!(err, ConformanceError::ProgramOrder { .. }),
        "got: {err}"
    );
}

#[test]
fn device_moved_event_fails() {
    let mut events = genuine().events.clone();
    let i = find(&events, is_pipeline);
    events[i].device = (events[i].device + 1) % genuine().plan.devices.len();
    let err = check(&events).expect_err("event on the wrong device must fail");
    assert!(
        matches!(err, ConformanceError::ProgramOrder { .. }),
        "got: {err}"
    );
}

#[test]
fn dropped_aux_unit_fails() {
    let mut events = genuine().events.clone();
    events.remove(find(&events, |e| matches!(e.kind, EventKind::Aux { .. })));
    let err = check(&events).expect_err("dropped K-FAC unit must fail");
    assert!(
        matches!(err, ConformanceError::AuxCoverage { .. }),
        "got: {err}"
    );
}

#[test]
fn duplicated_aux_unit_fails() {
    let mut events = genuine().events.clone();
    let i = find(&events, |e| matches!(e.kind, EventKind::Aux { .. }));
    let mut dup = events[i].clone();
    // Place the copy well after the original so it is not also an overlap.
    dup.ts_us += 1e9;
    events.push(dup);
    let err = check(&events).expect_err("double-executed K-FAC unit must fail");
    assert!(
        matches!(err, ConformanceError::AuxCoverage { .. }),
        "got: {err}"
    );
}

#[test]
fn premature_fold_fails() {
    let mut events = genuine().events.clone();
    let i = find(&events, |e| {
        matches!(
            e.kind,
            EventKind::Aux {
                kind: AuxKind::FoldA | AuxKind::FoldB,
                ..
            }
        )
    });
    // Pretend the fold ran before anything else — before its stage's
    // capture micro-batch existed.
    events[i].ts_us = -1.0;
    events[i].dur_us = 0.0;
    let err = check(&events).expect_err("fold before capture must fail");
    assert!(
        matches!(err, ConformanceError::AuxOrdering { .. }),
        "got: {err}"
    );
}

#[test]
fn invert_before_folds_fails() {
    let ex = genuine();
    let mut events = ex.events.clone();
    // Find an inversion in a step that also refreshes curvature, and a
    // fold of the same step/device/stage to slip in front of.
    let i = find(&events, |e| {
        matches!(
            e.kind,
            EventKind::Aux {
                kind: AuxKind::Invert,
                ..
            }
        ) && ex.specs[e.step].refresh_curv
    });
    let (step, device) = (events[i].step, events[i].device);
    let EventKind::Aux { stage, .. } = events[i].kind else {
        unreachable!()
    };
    let fold_start = events
        .iter()
        .filter(|e| {
            e.step == step
                && e.device == device
                && matches!(
                    e.kind,
                    EventKind::Aux { kind: AuxKind::FoldA | AuxKind::FoldB, stage: s, .. }
                    if s == stage
                )
        })
        .map(|e| e.ts_us)
        .fold(f64::INFINITY, f64::min);
    events[i].ts_us = fold_start; // starts when the first fold starts
    events[i].dur_us = 0.0;
    let err = check(&events).expect_err("inversion before its folds must fail");
    assert!(
        matches!(
            err,
            ConformanceError::AuxOrdering { .. } | ConformanceError::TrackOverlap { .. }
        ),
        "got: {err}"
    );
}

#[test]
fn overlapping_slices_fail() {
    let mut events = genuine().events.clone();
    // Stretch a warm-up (non-capture) forward over its successor.
    let i = find(
        &events,
        |e| matches!(e.kind, EventKind::Forward { mb, .. } if mb == 0),
    );
    let next_start = events
        .iter()
        .filter(|e| e.device == events[i].device && e.ts_us > events[i].ts_us)
        .map(|e| e.ts_us)
        .fold(f64::INFINITY, f64::min);
    assert!(next_start.is_finite(), "device track has a successor event");
    events[i].dur_us = (next_start - events[i].ts_us) * 2.0;
    let err = check(&events).expect_err("overlapping device slices must fail");
    assert!(
        matches!(err, ConformanceError::TrackOverlap { .. }),
        "got: {err}"
    );
}

#[test]
fn out_of_range_step_or_device_fails() {
    let mut events = genuine().events.clone();
    events[0].step = 99;
    let err = check(&events).expect_err("phantom step must fail");
    assert!(
        matches!(err, ConformanceError::UnexpectedEvent { .. }),
        "got: {err}"
    );

    let mut events = genuine().events.clone();
    events[0].device = 99;
    let err = check(&events).expect_err("phantom device must fail");
    assert!(
        matches!(err, ConformanceError::UnexpectedEvent { .. }),
        "got: {err}"
    );
}
