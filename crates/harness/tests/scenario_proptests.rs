//! Property tests over the seeded scenario space: any drawn seed must
//! honor the harness contract — fault-free runs conform to their plan and
//! match the serial oracle bitwise, injected faults surface as the right
//! `ExecError` — and faulty scenarios must replay identically from their
//! seed.

use pipefisher_harness::{
    run_scenario, FaultPlan, OptimizerKind, OracleCache, Scenario, ScenarioOutcome,
};
use pipefisher_lm::StepFault;
use pipefisher_pipeline::PipelineScheme;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// One oracle cache across all cases, so repeated (shape, optimizer) draws
/// re-train nothing.
fn cache() -> &'static Mutex<OracleCache> {
    static CACHE: OnceLock<Mutex<OracleCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(OracleCache::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]
    #[test]
    fn any_seeded_scenario_honors_its_contract(seed in 0u64..u64::MAX) {
        let sc = Scenario::from_seed(seed);
        let mut cache = cache().lock().unwrap_or_else(|e| e.into_inner());
        let outcome = run_scenario(&sc, &mut cache);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        if let Ok(ScenarioOutcome::Clean { events_checked }) = outcome {
            // A conforming clean run checked at least its pipeline ops.
            prop_assert!(
                events_checked >= 2 * sc.n_stages * sc.n_micro * sc.steps,
                "only {events_checked} events checked for {}",
                sc.describe()
            );
        }
    }
}

/// Pure timing chaos — heavy delays and aux-pickup skew, no liveness fault
/// — must preserve bitwise parity: the paper's "same work, reordered"
/// claim under adversarial timing.
#[test]
fn timing_chaos_preserves_bitwise_parity() {
    let mut cache = cache().lock().unwrap_or_else(|e| e.into_inner());
    for seed in [11u64, 12, 13] {
        let sc = Scenario {
            seed,
            scheme: PipelineScheme::OneFOneB,
            n_stages: 2,
            n_micro: 4,
            steps: 3,
            optimizer: OptimizerKind::Kfac {
                curvature_interval: 1,
                inversion_interval: 2,
            },
            threads: 2,
            fill_bubbles: true,
            data_seed: 7,
            fault: FaultPlan::timing_only(seed),
        };
        let outcome = run_scenario(&sc, &mut cache).unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(outcome, ScenarioOutcome::Clean { .. }));
    }
}

/// A faulty scenario replays the same outcome from the same seed.
#[test]
fn faulty_scenarios_replay_deterministically() {
    let seed = (0..)
        .find(|&s| {
            matches!(
                Scenario::from_seed(s).fault.fault,
                Some((StepFault::Panic, _, _))
            )
        })
        .expect("some seed draws a panic fault");
    let sc = Scenario::from_seed(seed);
    let mut cache = cache().lock().unwrap_or_else(|e| e.into_inner());
    let a = run_scenario(&sc, &mut cache).unwrap_or_else(|e| panic!("{e}"));
    let b = run_scenario(&sc, &mut cache).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a, b, "seed {seed} did not replay identically");
    assert!(matches!(a, ScenarioOutcome::Faulted { .. }));
}

/// Failure messages must carry the reproducing seed (the harness's one
/// non-negotiable reporting rule).
#[test]
fn failure_messages_embed_the_seed() {
    let failure = pipefisher_harness::ScenarioFailure {
        seed: 123_456_789,
        message: "synthetic".to_string(),
    };
    let text = failure.to_string();
    assert!(text.contains("123456789"), "{text}");
    assert!(text.contains("Scenario::from_seed"), "{text}");
}
