//! Causal (decoder-only) language-modeling workload.
//!
//! The paper's Table 3 includes OPT decoder layers; this module trains the
//! matching [`GptForCausalLm`] model on the same synthetic Markov language —
//! next-token prediction instead of masked-token prediction. The chain
//! structure makes the task learnable down to its conditional entropy.

use crate::SyntheticLanguage;
use pipefisher_nn::{ForwardCtx, GptForCausalLm};
use pipefisher_optim::{Kfac, KfacConfig, Lamb, LrSchedule, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples flat token streams (whole sequences from one topic each) for
/// causal LM training.
#[derive(Debug, Clone)]
pub struct CausalSampler {
    language: SyntheticLanguage,
    seq_len: usize,
}

impl CausalSampler {
    /// Creates a sampler emitting `seq_len`-token sequences.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 2` (next-token prediction needs pairs).
    pub fn new(language: SyntheticLanguage, seq_len: usize) -> Self {
        assert!(seq_len >= 2, "seq_len must be at least 2");
        CausalSampler { language, seq_len }
    }

    /// The underlying language.
    pub fn language(&self) -> &SyntheticLanguage {
        &self.language
    }

    /// Samples `batch` sequences, flattened.
    pub fn sample(&self, batch: usize, rng: &mut impl Rng) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch * self.seq_len);
        for _ in 0..batch {
            let topic = rng.gen_range(0..self.language.n_topics());
            out.extend(self.language.sentence(topic, self.seq_len, rng));
        }
        out
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }
}

/// Trains a causal LM with LAMB or K-FAC; returns the per-step losses.
#[allow(clippy::too_many_arguments)]
pub fn train_causal_lm(
    model: &mut GptForCausalLm,
    sampler: &CausalSampler,
    batch: usize,
    steps: usize,
    schedule: &LrSchedule,
    kfac: Option<KfacConfig>,
    weight_decay: f64,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut losses = Vec::with_capacity(steps);
    match kfac {
        None => {
            let mut opt = Lamb::new(weight_decay);
            for step in 0..steps {
                let tokens = sampler.sample(batch, &mut rng);
                model.zero_grad();
                let out = model.train_step(&tokens, sampler.seq_len(), &ForwardCtx::train());
                losses.push(out.loss);
                opt.begin_step();
                let lr = schedule.lr_at(step);
                model.visit_params(&mut |p| opt.step_param(p, lr));
            }
        }
        Some(config) => {
            let curvature_interval = config.curvature_interval;
            let mut opt = Kfac::new(config, Lamb::new(weight_decay));
            for step in 0..steps {
                let tokens = sampler.sample(batch, &mut rng);
                model.zero_grad();
                let refresh = step % curvature_interval == 0;
                let ctx = if refresh {
                    ForwardCtx::train_with_capture()
                } else {
                    ForwardCtx::train()
                };
                let out = model.train_step(&tokens, sampler.seq_len(), &ctx);
                losses.push(out.loss);
                opt.step(model, schedule.lr_at(step));
            }
        }
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(seed: u64) -> (CausalSampler, GptForCausalLm) {
        let lang = SyntheticLanguage::new(36, 2, 4, 17);
        let sampler = CausalSampler::new(lang, 16);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GptForCausalLm::new(36, 16, 32, 64, 2, 2, &mut rng);
        (sampler, model)
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn lamb_learns_next_token() {
        let (sampler, mut model) = setup(1);
        let losses = train_causal_lm(
            &mut model,
            &sampler,
            16,
            40,
            &LrSchedule::Constant(2e-2),
            None,
            0.01,
            1,
        );
        assert!(
            mean(&losses[35..]) < mean(&losses[..5]) - 0.2,
            "no learning"
        );
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn kfac_learns_next_token() {
        let (sampler, mut model) = setup(2);
        let losses = train_causal_lm(
            &mut model,
            &sampler,
            16,
            40,
            &LrSchedule::Constant(2e-2),
            Some(KfacConfig {
                damping: 3e-2,
                curvature_interval: 3,
                inversion_interval: 3,
                ..Default::default()
            }),
            0.01,
            2,
        );
        assert!(
            mean(&losses[35..]) < mean(&losses[..5]) - 0.2,
            "no learning"
        );
    }

    #[test]
    fn sampler_respects_shape_and_clusters() {
        let (sampler, _) = setup(3);
        let mut rng = StdRng::seed_from_u64(3);
        let tokens = sampler.sample(4, &mut rng);
        assert_eq!(tokens.len(), 64);
        // Every token is a regular token (no specials in causal streams).
        assert!(tokens.iter().all(|&t| t >= crate::special_tokens::COUNT));
    }
}
