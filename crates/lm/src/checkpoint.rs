//! Trainer-level checkpoint policy and the snapshot schema (DESIGN.md
//! §3.15).
//!
//! A training checkpoint is a [`Snapshot`] with four sections:
//!
//! - `meta` — the step to resume at and the optimizer label (resuming into
//!   a different optimizer is a structured error, not silent corruption);
//! - `model` — every parameter, sorted by name (see
//!   `pipefisher_nn::export_params_with`);
//! - `optim` — the optimizer's mutable state, tagged by optimizer kind;
//! - `rng` — the trainer's data-RNG state words. The data RNG *is* the
//!   data-loader cursor: the batch sampler is a pure function of it, so
//!   restoring the stream resumes the exact batch sequence.
//!
//! Together with the optimizer's step counter (which fixes the K-FAC /
//! Shampoo refresh-cadence phase) this is the complete mutable state of a
//! training loop, which is what makes resume bitwise-invisible.

use pipefisher_ckpt::{
    read_snapshot, CheckpointDir, CkptError, SectionReader, SectionWriter, Snapshot,
};
use std::path::{Path, PathBuf};

/// When and where a training loop writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding the step-numbered generations.
    pub dir: PathBuf,
    /// Save every this many optimizer steps (the final step always saves;
    /// `0` disables periodic saves, leaving only the final one).
    pub every: usize,
    /// Newest generations kept after each save.
    pub retain: usize,
}

impl CheckpointPolicy {
    /// A policy saving to `dir` every `every` steps, retaining 3
    /// generations.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every,
            retain: 3,
        }
    }

    /// Opens (creating if needed) the checkpoint directory.
    pub(crate) fn open(&self) -> Result<CheckpointDir, CkptError> {
        CheckpointDir::create(&self.dir, self.retain)
    }

    /// Whether a checkpoint is due after completing `next_step` of
    /// `total_steps` (both 1-based counts of completed steps).
    pub(crate) fn due(&self, next_step: usize, total_steps: usize) -> bool {
        next_step == total_steps || (self.every > 0 && next_step.is_multiple_of(self.every))
    }
}

/// Where to resume a run from.
#[derive(Debug, Clone)]
pub enum ResumeFrom {
    /// An explicit checkpoint file.
    Path(PathBuf),
    /// The newest generation in a checkpoint directory.
    Latest(PathBuf),
}

/// Resolves a [`ResumeFrom`] to a concrete checkpoint file path.
pub fn resolve_resume(resume: &ResumeFrom) -> Result<PathBuf, CkptError> {
    match resume {
        ResumeFrom::Path(p) => Ok(p.clone()),
        ResumeFrom::Latest(dir) => CheckpointDir::create(dir, usize::MAX)?
            .latest()?
            .ok_or_else(|| CkptError::Malformed {
                detail: format!("no checkpoints found in {}", dir.display()),
            }),
    }
}

/// Checkpointing directives for a training run: optionally save, optionally
/// resume. Both `None` is a plain run.
#[derive(Debug, Clone, Default)]
pub struct CheckpointOptions {
    /// Write checkpoints per this policy.
    pub save: Option<CheckpointPolicy>,
    /// Restore state from here before the first step.
    pub resume: Option<ResumeFrom>,
}

/// The decoded contents of one training checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// The step index the resumed loop starts at (== completed steps).
    pub next_step: u64,
    /// Label of the optimizer that wrote the checkpoint.
    pub optimizer_label: String,
    /// `model` section payload (named parameters, sorted).
    pub model: Vec<u8>,
    /// `optim` section payload (tagged optimizer state).
    pub optim: Vec<u8>,
    /// Data-RNG state words.
    pub rng: [u64; 4],
}

impl TrainCheckpoint {
    /// Encodes as a checkpoint [`Snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        let mut meta = SectionWriter::new();
        meta.u64(self.next_step);
        meta.str(&self.optimizer_label);
        let mut rng = SectionWriter::new();
        for &word in &self.rng {
            rng.u64(word);
        }
        let mut snap = Snapshot::new();
        snap.push_section("meta", meta.into_bytes());
        snap.push_section("model", self.model.clone());
        snap.push_section("optim", self.optim.clone());
        snap.push_section("rng", rng.into_bytes());
        snap
    }

    /// Decodes from a validated [`Snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> Result<TrainCheckpoint, CkptError> {
        let mut meta = SectionReader::new("meta", snap.require("meta")?);
        let next_step = meta.u64()?;
        let optimizer_label = meta.str()?;
        meta.finish()?;
        let mut rng_r = SectionReader::new("rng", snap.require("rng")?);
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = rng_r.u64()?;
        }
        rng_r.finish()?;
        Ok(TrainCheckpoint {
            next_step,
            optimizer_label,
            model: snap.require("model")?.to_vec(),
            optim: snap.require("optim")?.to_vec(),
            rng,
        })
    }

    /// Reads, validates, and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<TrainCheckpoint, CkptError> {
        TrainCheckpoint::from_snapshot(&read_snapshot(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            next_step: 7,
            optimizer_label: "K-FAC".to_string(),
            model: vec![1, 2, 3],
            optim: vec![4, 5],
            rng: [9, 8, 7, 6],
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let tc = sample();
        let snap = tc.to_snapshot();
        let back = TrainCheckpoint::from_snapshot(&snap).unwrap();
        assert_eq!(back, tc);
        // And through the byte format.
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(TrainCheckpoint::from_snapshot(&decoded).unwrap(), tc);
    }

    #[test]
    fn missing_sections_are_structured_errors() {
        let snap = Snapshot::new();
        assert!(matches!(
            TrainCheckpoint::from_snapshot(&snap),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn due_fires_on_interval_and_final_step() {
        let p = CheckpointPolicy::new("/tmp/x", 3);
        assert!(!p.due(1, 10));
        assert!(p.due(3, 10));
        assert!(!p.due(4, 10));
        assert!(p.due(10, 10)); // final step always saves
        let final_only = CheckpointPolicy::new("/tmp/x", 0);
        assert!(!final_only.due(3, 10));
        assert!(final_only.due(10, 10));
    }

    #[test]
    fn resolve_latest_errors_on_empty_dir() {
        let dir =
            std::env::temp_dir().join(format!("pipefisher-resume-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = resolve_resume(&ResumeFrom::Latest(dir.clone())).unwrap_err();
        assert!(matches!(err, CkptError::Malformed { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
