//! Synthetic language with Markov-bigram structure and topic clusters.

use rand::Rng;

/// A synthetic language for masked-LM + NSP pretraining.
///
/// The regular vocabulary is split into `n_topics` equal clusters. Each
/// topic carries a sparse Markov bigram chain over its cluster: every token
/// has `branching` likely successors with a fixed decaying profile. A
/// sentence is a random walk in one topic's chain; a *consecutive* sentence
/// pair shares the topic, a *random* pair does not (with high probability).
///
/// * **MLM learnability**: masked tokens are predictable from neighbours
///   through the chain (conditional entropy ≈ `ln(branching)` ≪ `ln V`).
/// * **NSP learnability**: same-topic pairs share a vocabulary cluster.
#[derive(Debug, Clone)]
pub struct SyntheticLanguage {
    vocab_size: usize,
    n_topics: usize,
    branching: usize,
    first_regular: usize,
    seed: u64,
}

impl SyntheticLanguage {
    /// Creates a language over `vocab_size` tokens (the first
    /// [`crate::special_tokens::COUNT`] ids are reserved for specials) with
    /// `n_topics` clusters and `branching` successors per token.
    ///
    /// # Panics
    ///
    /// Panics if the regular vocabulary cannot host `n_topics` clusters of
    /// at least `branching + 1` tokens each.
    pub fn new(vocab_size: usize, n_topics: usize, branching: usize, seed: u64) -> Self {
        let first_regular = crate::special_tokens::COUNT;
        assert!(vocab_size > first_regular, "vocab too small for specials");
        let regular = vocab_size - first_regular;
        assert!(
            n_topics > 0 && regular / n_topics > branching,
            "need > {branching} tokens per topic, have {} / {n_topics}",
            regular
        );
        SyntheticLanguage {
            vocab_size,
            n_topics,
            branching,
            first_regular,
            seed,
        }
    }

    /// Vocabulary size including special tokens.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of topic clusters.
    pub fn n_topics(&self) -> usize {
        self.n_topics
    }

    /// Size of one topic's token cluster.
    pub fn cluster_size(&self) -> usize {
        (self.vocab_size - self.first_regular) / self.n_topics
    }

    /// First token id of `topic`'s cluster.
    fn cluster_start(&self, topic: usize) -> usize {
        self.first_regular + topic * self.cluster_size()
    }

    /// The `k`-th likely successor of `token` within `topic` — a fixed
    /// pseudorandom permutation derived from the language seed.
    fn successor(&self, topic: usize, token: usize, k: usize) -> usize {
        let cs = self.cluster_size();
        let start = self.cluster_start(topic);
        let local = token - start;
        // SplitMix-style hash for a deterministic successor table.
        let mut h = self
            .seed
            .wrapping_add((topic as u64) << 40)
            .wrapping_add((local as u64) << 16)
            .wrapping_add(k as u64);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        start + (h as usize % cs)
    }

    /// Samples one sentence of `len` tokens from `topic`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if `topic >= n_topics` or `len == 0`.
    pub fn sentence(&self, topic: usize, len: usize, rng: &mut impl Rng) -> Vec<usize> {
        assert!(topic < self.n_topics, "topic {topic} out of range");
        assert!(len > 0, "empty sentence");
        let cs = self.cluster_size();
        let start = self.cluster_start(topic);
        let mut out = Vec::with_capacity(len);
        let mut cur = start + rng.gen_range(0..cs);
        out.push(cur);
        for _ in 1..len {
            // Decaying successor profile: P(k-th successor) ∝ 2^{−k}.
            let r: f64 = rng.gen();
            let mut k = 0;
            let mut acc = 0.0;
            let norm: f64 = (0..self.branching).map(|i| 0.5f64.powi(i as i32 + 1)).sum();
            for i in 0..self.branching {
                acc += 0.5f64.powi(i as i32 + 1) / norm;
                if r < acc {
                    k = i;
                    break;
                }
                k = i;
            }
            cur = self.successor(topic, cur, k);
            out.push(cur);
        }
        out
    }

    /// Samples a sentence pair: `(sent_a, sent_b, is_random)` where
    /// `is_random` follows BERT's NSP setup (50 % consecutive same-topic,
    /// 50 % random different-topic).
    pub fn sentence_pair(
        &self,
        len_a: usize,
        len_b: usize,
        rng: &mut impl Rng,
    ) -> (Vec<usize>, Vec<usize>, bool) {
        let topic_a = rng.gen_range(0..self.n_topics);
        let is_random = rng.gen_bool(0.5) && self.n_topics > 1;
        let topic_b = if is_random {
            let mut t = rng.gen_range(0..self.n_topics);
            while t == topic_a {
                t = rng.gen_range(0..self.n_topics);
            }
            t
        } else {
            topic_a
        };
        (
            self.sentence(topic_a, len_a, rng),
            self.sentence(topic_b, len_b, rng),
            is_random,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lang() -> SyntheticLanguage {
        SyntheticLanguage::new(68, 4, 4, 7)
    }

    #[test]
    fn sentences_stay_in_cluster() {
        let l = lang();
        let mut rng = StdRng::seed_from_u64(1);
        for topic in 0..4 {
            let s = l.sentence(topic, 32, &mut rng);
            let start = crate::special_tokens::COUNT + topic * l.cluster_size();
            let end = start + l.cluster_size();
            assert!(
                s.iter().all(|&t| (start..end).contains(&t)),
                "topic {topic}"
            );
        }
    }

    #[test]
    fn chain_is_predictable() {
        // Successor distribution given a token must be concentrated: the
        // most common successor should appear ≫ 1/cluster_size of the time.
        let l = lang();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::<(usize, usize), usize>::new();
        let mut totals = std::collections::HashMap::<usize, usize>::new();
        for _ in 0..200 {
            let s = l.sentence(0, 64, &mut rng);
            for w in s.windows(2) {
                *counts.entry((w[0], w[1])).or_default() += 1;
                *totals.entry(w[0]).or_default() += 1;
            }
        }
        let (&(tok, _), &max_count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        let frac = max_count as f64 / totals[&tok] as f64;
        assert!(frac > 0.3, "chain too flat: top successor fraction {frac}");
    }

    #[test]
    fn random_pairs_cross_topics() {
        let l = lang();
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_random = false;
        let mut saw_consecutive = false;
        for _ in 0..50 {
            let (a, b, is_random) = l.sentence_pair(8, 8, &mut rng);
            let topic_of = |t: usize| (t - crate::special_tokens::COUNT) / l.cluster_size();
            if is_random {
                saw_random = true;
                assert_ne!(topic_of(a[0]), topic_of(b[0]));
            } else {
                saw_consecutive = true;
                assert_eq!(topic_of(a[0]), topic_of(b[0]));
            }
        }
        assert!(saw_random && saw_consecutive);
    }

    #[test]
    fn deterministic_given_seeds() {
        let l = lang();
        let a = l.sentence(1, 16, &mut StdRng::seed_from_u64(9));
        let b = l.sentence(1, 16, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tokens per topic")]
    fn too_many_topics_panics() {
        let _ = SyntheticLanguage::new(20, 8, 4, 0);
    }
}
