//! BERT-style pretraining batch construction.

use crate::SyntheticLanguage;
use pipefisher_nn::{PreTrainingBatch, IGNORE_INDEX};
use rand::Rng;

/// Reserved special-token ids.
pub mod special_tokens {
    /// Padding (unused with fixed-length sampling but reserved).
    pub const PAD: usize = 0;
    /// Classification token starting every sequence.
    pub const CLS: usize = 1;
    /// Separator between sentence A and B and at sequence end.
    pub const SEP: usize = 2;
    /// Mask token for MLM.
    pub const MASK: usize = 3;
    /// Number of reserved ids (regular tokens start here).
    pub const COUNT: usize = 4;
}

/// Samples fixed-length `[CLS] A… [SEP] B… [SEP]` sequences with BERT's
/// masking (15 % of tokens: 80 % → `[MASK]`, 10 % → random, 10 % → kept)
/// and 50 % random next-sentence pairs.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    language: SyntheticLanguage,
    seq_len: usize,
    mask_prob: f64,
}

impl BatchSampler {
    /// Creates a sampler emitting sequences of `seq_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 8` (too short to host both sentences + specials).
    pub fn new(language: SyntheticLanguage, seq_len: usize) -> Self {
        assert!(seq_len >= 8, "seq_len must be at least 8, got {seq_len}");
        BatchSampler {
            language,
            seq_len,
            mask_prob: 0.15,
        }
    }

    /// Overrides the masking probability (default 0.15).
    pub fn with_mask_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "mask prob out of range");
        self.mask_prob = p;
        self
    }

    /// The underlying language.
    pub fn language(&self) -> &SyntheticLanguage {
        &self.language
    }

    /// Sequence length of emitted batches.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Samples a batch of `batch_size` sequences.
    pub fn sample(&self, batch_size: usize, rng: &mut impl Rng) -> PreTrainingBatch {
        let s = self.seq_len;
        // Layout: [CLS] a…a [SEP] b…b [SEP]; split remaining tokens evenly.
        let content = s - 3;
        let len_a = content / 2;
        let len_b = content - len_a;
        let mut token_ids = Vec::with_capacity(batch_size * s);
        let mut segment_ids = Vec::with_capacity(batch_size * s);
        let mut mlm_targets = Vec::with_capacity(batch_size * s);
        let mut nsp_targets = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let (a, b, is_random) = self.language.sentence_pair(len_a, len_b, rng);
            nsp_targets.push(is_random as i64);
            let mut seq = Vec::with_capacity(s);
            let mut segs = Vec::with_capacity(s);
            seq.push(special_tokens::CLS);
            segs.push(0);
            for &t in &a {
                seq.push(t);
                segs.push(0);
            }
            seq.push(special_tokens::SEP);
            segs.push(0);
            for &t in &b {
                seq.push(t);
                segs.push(1);
            }
            seq.push(special_tokens::SEP);
            segs.push(1);
            debug_assert_eq!(seq.len(), s);
            // Masking.
            for (i, tok) in seq.iter_mut().enumerate() {
                let is_special = *tok < special_tokens::COUNT;
                if is_special || !rng.gen_bool(self.mask_prob) {
                    mlm_targets.push(IGNORE_INDEX);
                    continue;
                }
                mlm_targets.push(*tok as i64);
                let r: f64 = rng.gen();
                if r < 0.8 {
                    *tok = special_tokens::MASK;
                } else if r < 0.9 {
                    *tok = rng.gen_range(special_tokens::COUNT..self.language.vocab_size());
                } // else keep
                let _ = i;
            }
            token_ids.extend_from_slice(&seq);
            segment_ids.extend_from_slice(&segs);
        }
        PreTrainingBatch {
            token_ids,
            segment_ids,
            mlm_targets,
            nsp_targets,
            seq: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler() -> BatchSampler {
        BatchSampler::new(SyntheticLanguage::new(68, 4, 4, 7), 16)
    }

    #[test]
    fn batch_shapes() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(1);
        let b = s.sample(8, &mut rng);
        assert_eq!(b.token_ids.len(), 8 * 16);
        assert_eq!(b.segment_ids.len(), 8 * 16);
        assert_eq!(b.mlm_targets.len(), 8 * 16);
        assert_eq!(b.nsp_targets.len(), 8);
        assert_eq!(b.batch_size(), 8);
    }

    #[test]
    fn framing_is_correct() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(2);
        let b = s.sample(2, &mut rng);
        for seq in 0..2 {
            let toks = &b.token_ids[seq * 16..(seq + 1) * 16];
            let segs = &b.segment_ids[seq * 16..(seq + 1) * 16];
            assert_eq!(toks[0], special_tokens::CLS);
            assert_eq!(toks[15], special_tokens::SEP);
            assert_eq!(segs[0], 0);
            assert_eq!(segs[15], 1);
            // Segment boundary exists and is monotone 0→1.
            assert!(segs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn mask_rate_is_near_15_percent() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let b = s.sample(200, &mut rng);
        let masked = b.mlm_targets.iter().filter(|&&t| t != IGNORE_INDEX).count();
        let maskable = b
            .token_ids
            .len()
            // 3 specials per sequence are never masked.
            - 3 * b.batch_size();
        let rate = masked as f64 / maskable as f64;
        assert!((rate - 0.15).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn masked_positions_mostly_show_mask_token() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(4);
        let b = s.sample(300, &mut rng);
        let mut mask_tok = 0;
        let mut total = 0;
        for (i, &t) in b.mlm_targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            total += 1;
            if b.token_ids[i] == special_tokens::MASK {
                mask_tok += 1;
            }
        }
        let frac = mask_tok as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.05, "mask fraction {frac}");
    }

    #[test]
    fn nsp_labels_are_balanced() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(5);
        let b = s.sample(400, &mut rng);
        let pos: i64 = b.nsp_targets.iter().sum();
        let rate = pos as f64 / 400.0;
        assert!((rate - 0.5).abs() < 0.08, "nsp positive rate {rate}");
    }

    #[test]
    fn specials_never_have_mlm_targets() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(6);
        let b = s.sample(50, &mut rng);
        for (i, &t) in b.mlm_targets.iter().enumerate() {
            if t != IGNORE_INDEX {
                // Target is always a regular token.
                assert!(t as usize >= special_tokens::COUNT);
            }
            // CLS/SEP positions are ignored: position 0 and 15.
            if i % 16 == 0 || i % 16 == 15 {
                assert_eq!(t, IGNORE_INDEX);
            }
        }
    }
}
