//! Language-modeling workloads and pretraining loops.
//!
//! The paper pretrains BERT on 14 GB of English Wikipedia; this reproduction
//! substitutes a **synthetic language** with learnable structure (a
//! per-topic Markov bigram over clustered vocabularies) so the convergence
//! comparison — K-FAC reaches the first-order baseline's final loss in a
//! fraction of its steps — can run on CPU at tiny-BERT scale. See DESIGN.md
//! §2 for why this substitution preserves the claim being tested.
//!
//! * [`SyntheticLanguage`] — corpus generator with masked-LM and
//!   next-sentence-prediction learnability,
//! * [`BatchSampler`] — BERT-style batch maker (`[CLS]`/`[SEP]` framing, 15 %
//!   masking with the 80/10/10 rule, 50 % random NSP pairs),
//! * [`Trainer`] / [`TrainRun`] — optimizer-agnostic pretraining loops with
//!   loss histories, smoothing, and steps-to-target-loss extraction (the
//!   quantities Figure 6 plots),
//! * [`StepMetrics`] / [`to_jsonl`] — per-step metrics rows (loss, gradient
//!   norm, per-phase wall-clock, K-FAC refresh counters) with JSON Lines
//!   export.

mod causal;
mod checkpoint;
mod corpus;
mod data;
mod metrics;
pub mod parallel;
mod pipeline;
mod trainer;

pub use causal::{train_causal_lm, CausalSampler};
pub use checkpoint::{
    resolve_resume, CheckpointOptions, CheckpointPolicy, ResumeFrom, TrainCheckpoint,
};
pub use corpus::SyntheticLanguage;
pub use data::{special_tokens, BatchSampler};
pub use metrics::{to_jsonl, StepMetrics};
pub use pipeline::{
    default_watchdog, plan_for, ChaosHook, ExecError, PipelineOptions, PipelineOutcome, StepFault,
};
pub use trainer::{OptimizerChoice, TrainOptions, TrainRun, Trainer};
