//! Per-step training metrics — the reproduction's structured alternative to
//! eyeballing the loss curve.
//!
//! Each optimizer step of a [`crate::Trainer`] run appends one
//! [`StepMetrics`] row (loss, gradient norm, per-phase wall-clock
//! milliseconds, K-FAC refresh counters) to the returned
//! [`crate::TrainRun`]; [`to_jsonl`] serializes the rows as JSON Lines for
//! external analysis (`pipefisher train --metrics-out metrics.jsonl`).

use serde_json::{json, Value};

/// One optimizer step's recorded metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMetrics {
    /// Step index (0-based, strictly increasing within a run).
    pub step: usize,
    /// Total pretraining loss (MLM + NSP; micro-batch mean when
    /// accumulating).
    pub loss: f64,
    /// Global L2 norm of the gradient the optimizer consumed.
    pub grad_norm: f64,
    /// Learning rate applied this step.
    pub lr: f64,
    /// Wall-clock milliseconds spent sampling batches.
    pub data_ms: f64,
    /// Wall-clock milliseconds spent in forward + backward passes.
    pub forward_backward_ms: f64,
    /// Wall-clock milliseconds spent in the optimizer update.
    pub optimizer_ms: f64,
    /// Whether this step refreshed K-FAC curvature statistics.
    pub curvature_refreshed: bool,
    /// Cumulative K-FAC curvature refreshes up to and including this step.
    pub curvature_refreshes: u64,
    /// Cumulative K-FAC factor inversions up to and including this step.
    pub inversions: u64,
    /// Heap allocation calls during this step. Always `0` unless the binary
    /// was built with the `alloc-count` feature (which installs the counting
    /// allocator from `pipefisher-trace`).
    pub allocs: u64,
    /// Bytes requested by those allocation calls (`0` without `alloc-count`).
    pub alloc_bytes: u64,
    /// Wall-clock milliseconds spent writing a checkpoint at the end of
    /// this step (`0.0` on steps that did not checkpoint, and in runs
    /// without checkpointing).
    pub ckpt_write_ms: f64,
}

impl StepMetrics {
    /// This row as a JSON object (insertion-ordered keys).
    pub fn to_json(&self) -> Value {
        json!({
            "step": self.step,
            "loss": self.loss,
            "grad_norm": self.grad_norm,
            "lr": self.lr,
            "data_ms": self.data_ms,
            "forward_backward_ms": self.forward_backward_ms,
            "optimizer_ms": self.optimizer_ms,
            "curvature_refreshed": self.curvature_refreshed,
            "curvature_refreshes": self.curvature_refreshes,
            "inversions": self.inversions,
            "allocs": self.allocs,
            "alloc_bytes": self.alloc_bytes,
            "ckpt_write_ms": self.ckpt_write_ms,
        })
    }
}

/// Serializes rows as JSON Lines (one compact object per line, trailing
/// newline; empty input produces an empty string).
pub fn to_jsonl(rows: &[StepMetrics]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&serde_json::to_string(&row.to_json()).expect("json"));
        out.push('\n');
    }
    out
}

/// Accumulates [`StepMetrics`] rows over a run, tracking the cumulative
/// K-FAC counters.
#[derive(Debug, Default)]
pub(crate) struct MetricsRecorder {
    rows: Vec<StepMetrics>,
    curvature_refreshes: u64,
    inversions: u64,
}

/// Per-phase wall-clock timings of one step, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PhaseTimings {
    pub data_ms: f64,
    pub forward_backward_ms: f64,
    pub optimizer_ms: f64,
}

impl MetricsRecorder {
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        step: usize,
        loss: f64,
        grad_norm: f64,
        lr: f64,
        timings: PhaseTimings,
        curvature_refreshed: bool,
        inverted: bool,
        alloc: pipefisher_trace::AllocSnapshot,
        ckpt_write_ms: f64,
    ) {
        self.curvature_refreshes += u64::from(curvature_refreshed);
        self.inversions += u64::from(inverted);
        self.rows.push(StepMetrics {
            step,
            loss,
            grad_norm,
            lr,
            data_ms: timings.data_ms,
            forward_backward_ms: timings.forward_backward_ms,
            optimizer_ms: timings.optimizer_ms,
            curvature_refreshed,
            curvature_refreshes: self.curvature_refreshes,
            inversions: self.inversions,
            allocs: alloc.allocs,
            alloc_bytes: alloc.bytes,
            ckpt_write_ms,
        });
    }

    pub fn into_rows(self) -> Vec<StepMetrics> {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(step: usize) -> StepMetrics {
        StepMetrics {
            step,
            loss: 2.5,
            grad_norm: 1.0,
            lr: 1e-3,
            data_ms: 0.1,
            forward_backward_ms: 3.0,
            optimizer_ms: 0.5,
            curvature_refreshed: step == 0,
            curvature_refreshes: 1,
            inversions: 1,
            allocs: 0,
            alloc_bytes: 0,
            ckpt_write_ms: 0.0,
        }
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let rows = vec![row(0), row(1)];
        let jsonl = to_jsonl(&rows);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("step").unwrap().as_i64(), Some(i as i64));
            assert_eq!(v.get("loss").unwrap().as_f64(), Some(2.5));
        }
        assert!(to_jsonl(&[]).is_empty());
    }

    #[test]
    fn recorder_accumulates_refresh_counters() {
        let mut rec = MetricsRecorder::default();
        let t = PhaseTimings::default();
        let a = pipefisher_trace::AllocSnapshot::default();
        rec.record(0, 3.0, 1.0, 1e-3, t, true, true, a, 0.0);
        rec.record(1, 2.9, 1.0, 1e-3, t, false, false, a, 0.0);
        rec.record(2, 2.8, 1.0, 1e-3, t, true, false, a, 0.0);
        let rows = rec.into_rows();
        assert_eq!(rows[2].curvature_refreshes, 2);
        assert_eq!(rows[2].inversions, 1);
        assert!(!rows[1].curvature_refreshed);
    }
}
