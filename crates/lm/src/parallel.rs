//! Data-parallel training emulation (paper §3.2's collectives as math).
//!
//! PipeFisher's data+inversion parallelism relies on two collectives:
//! `sync-grad` (average gradients across a stage's replicas) and
//! `sync-curvature` (average Kronecker factors). This module emulates `W`
//! replicas explicitly — W copies of the model, each fed a shard of the
//! mini-batch, with the collectives implemented as parameter-wise averaging —
//! so the *semantic* claims can be tested: replicas stay bit-identical, and
//! the whole construction equals single-replica big-batch training.

use crate::BatchSampler;
use pipefisher_nn::{BertForPreTraining, ForwardCtx, Parameter, PreTrainingBatch};
use pipefisher_optim::{Lamb, LrSchedule, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Splits a batch into `w` equal shards (by sequence).
///
/// # Panics
///
/// Panics if the batch size is not divisible by `w`.
pub fn shard_batch(batch: &PreTrainingBatch, w: usize) -> Vec<PreTrainingBatch> {
    let total = batch.batch_size();
    assert!(
        w > 0 && total.is_multiple_of(w),
        "shard_batch: {total} sequences not divisible by {w}"
    );
    let per = total / w;
    let s = batch.seq;
    (0..w)
        .map(|r| {
            let rows = r * per * s..(r + 1) * per * s;
            PreTrainingBatch {
                token_ids: batch.token_ids[rows.clone()].to_vec(),
                segment_ids: batch.segment_ids[rows.clone()].to_vec(),
                mlm_targets: batch.mlm_targets[rows.clone()].to_vec(),
                nsp_targets: batch.nsp_targets[r * per..(r + 1) * per].to_vec(),
                seq: s,
            }
        })
        .collect()
}

/// Averages the gradients of all replicas in place (the `sync-grad`
/// allreduce). Requires structurally identical models.
///
/// # Panics
///
/// Panics if the replicas' parameter lists differ.
pub fn sync_grads(replicas: &mut [BertForPreTraining]) {
    let w = replicas.len();
    if w <= 1 {
        return;
    }
    // Gather.
    let mut sums: Vec<pipefisher_tensor::Matrix> = Vec::new();
    for (r, model) in replicas.iter_mut().enumerate() {
        let mut idx = 0;
        model.visit_params(&mut |p: &mut Parameter| {
            if r == 0 {
                sums.push(p.grad.clone());
            } else {
                assert!(idx < sums.len(), "sync_grads: replica structure mismatch");
                sums[idx].axpy(1.0, &p.grad);
            }
            idx += 1;
        });
    }
    let inv = 1.0 / w as f64;
    for s in &mut sums {
        s.scale_inplace(inv);
    }
    // Scatter.
    for model in replicas.iter_mut() {
        let mut idx = 0;
        model.visit_params(&mut |p: &mut Parameter| {
            p.grad = sums[idx].clone();
            idx += 1;
        });
    }
}

/// Checks that all replicas hold bit-identical parameters (the invariant
/// data parallelism must maintain).
pub fn replicas_in_sync(replicas: &mut [BertForPreTraining]) -> bool {
    if replicas.len() <= 1 {
        return true;
    }
    let mut reference: Vec<pipefisher_tensor::Matrix> = Vec::new();
    replicas[0].visit_params(&mut |p: &mut Parameter| reference.push(p.value.clone()));
    for model in replicas.iter_mut().skip(1) {
        let mut idx = 0;
        let mut ok = true;
        model.visit_params(&mut |p: &mut Parameter| {
            if p.value != reference[idx] {
                ok = false;
            }
            idx += 1;
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Runs `steps` of W-replica data-parallel LAMB training and returns the
/// per-step mean losses. Replicas start identical and remain identical
/// because the synced gradient is the only state-changing input.
#[allow(clippy::too_many_arguments)]
pub fn train_data_parallel(
    sampler: &BatchSampler,
    w: usize,
    global_batch: usize,
    steps: usize,
    schedule: &LrSchedule,
    weight_decay: f64,
    model_seed: u64,
    data_seed: u64,
) -> (Vec<f64>, Vec<BertForPreTraining>) {
    let mut rng = StdRng::seed_from_u64(model_seed);
    let proto = BertForPreTraining::new(
        pipefisher_nn::BertConfig::tiny(sampler.language().vocab_size(), sampler.seq_len()),
        0.0,
        &mut rng,
    );
    let mut replicas: Vec<BertForPreTraining> = (0..w).map(|_| proto.clone()).collect();
    // One optimizer per replica — their states stay identical because they
    // see identical (synced) gradients, mirroring real data parallelism.
    let mut opts: Vec<Lamb> = (0..w).map(|_| Lamb::new(weight_decay)).collect();
    let mut data_rng = StdRng::seed_from_u64(data_seed);
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let batch = sampler.sample(global_batch, &mut data_rng);
        let shards = shard_batch(&batch, w);
        let mut loss = 0.0;
        for (model, shard) in replicas.iter_mut().zip(shards.iter()) {
            model.zero_grad();
            loss += model.train_step(shard, &ForwardCtx::train()).total_loss;
        }
        losses.push(loss / w as f64);
        sync_grads(&mut replicas);
        let lr = schedule.lr_at(step);
        for (model, opt) in replicas.iter_mut().zip(opts.iter_mut()) {
            opt.begin_step();
            model.visit_params(&mut |p| opt.step_param(p, lr));
        }
    }
    (losses, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticLanguage;

    fn sampler() -> BatchSampler {
        BatchSampler::new(SyntheticLanguage::new(36, 2, 4, 5), 16)
    }

    #[test]
    fn shards_partition_the_batch() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = s.sample(8, &mut rng);
        let shards = shard_batch(&batch, 4);
        assert_eq!(shards.len(), 4);
        let rebuilt: Vec<usize> = shards
            .iter()
            .flat_map(|b| b.token_ids.iter().copied())
            .collect();
        assert_eq!(rebuilt, batch.token_ids);
        for sh in &shards {
            assert_eq!(sh.batch_size(), 2);
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let s = sampler();
        let (_losses, mut replicas) =
            train_data_parallel(&s, 2, 8, 5, &LrSchedule::Constant(1e-2), 0.01, 7, 8);
        assert!(replicas_in_sync(&mut replicas));
    }

    #[test]
    fn data_parallel_equals_gradient_accumulation() {
        // The §3.2 semantics: W replicas with averaged (mean-of-shard-mean)
        // gradients compute *exactly* the same update as single-replica
        // gradient accumulation over the same shards — the sampler draws
        // sequences from one stream, so a batch of 8 sharded in two equals
        // two accumulated batches of 4.
        let s = sampler();
        let (_l2, mut dp) =
            train_data_parallel(&s, 2, 8, 4, &LrSchedule::Constant(5e-3), 0.0, 7, 8);
        let mut trainer = crate::Trainer::new(sampler(), 4, LrSchedule::Constant(5e-3), 8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut single =
            BertForPreTraining::new(pipefisher_nn::BertConfig::tiny(36, 16), 0.0, &mut rng);
        let _ = trainer.run_with_options(
            &mut single,
            &crate::OptimizerChoice::Lamb { weight_decay: 0.0 },
            4,
            &crate::TrainOptions {
                accumulation_steps: 2,
                grad_delay: 0,
            },
        );
        let mut a = Vec::new();
        dp[0].visit_params(&mut |p| a.push(p.value.clone()));
        let mut max_diff = 0.0f64;
        let mut idx = 0;
        single.visit_params(&mut |p| {
            max_diff = max_diff.max((&p.value - &a[idx]).max_abs());
            idx += 1;
        });
        assert!(
            max_diff < 1e-10,
            "data-parallel diverged from accumulation: {max_diff}"
        );
    }

    #[test]
    fn data_parallel_loss_matches_big_batch_closely() {
        // Against true big-batch training the match is only approximate
        // (per-shard MLM means weight masked tokens differently), but the
        // training *trajectory* must stay close.
        let s = sampler();
        let (l2, _) = train_data_parallel(&s, 2, 8, 10, &LrSchedule::Constant(5e-3), 0.0, 7, 8);
        let (l1, _) = train_data_parallel(&s, 1, 8, 10, &LrSchedule::Constant(5e-3), 0.0, 7, 8);
        for (a, b) in l1.iter().zip(l2.iter()) {
            assert!((a - b).abs() < 0.15, "loss curves diverged: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_shard_count_panics() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = s.sample(6, &mut rng);
        let _ = shard_batch(&batch, 4);
    }
}
