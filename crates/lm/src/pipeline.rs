//! Wall-clock pipeline-parallel executor (the paper's Figure 1/3 made real).
//!
//! [`Trainer::run_pipelined`] partitions `BertForPreTraining` into `D`
//! contiguous stages, runs one persistent worker thread per simulated
//! device, and flows micro-batch activations forward / gradients backward
//! over bounded channels in the exact per-device order of a lowered
//! [`ExecutablePlan`]. While a worker waits for pipeline input (a bubble),
//! it pops the first *ready* K-FAC work unit — curvature fold or damped
//! inversion — from its plan's bubble-fill list, which is ordered by the
//! PipeFisher scheduler's placements.
//!
//! # Determinism
//!
//! The executor is bitwise-identical to the single-thread [`Trainer`] loop
//! (at `PIPEFISHER_THREADS=1`) for every stage count and scheme, because
//! floating-point work is never re-associated:
//!
//! - Each worker computes a micro-batch's gradient contribution on a
//!   zero-initialised slot replica, so each contribution is exactly the
//!   serial per-micro-batch gradient.
//! - The coordinator merges contributions via `axpy(1.0, ·)` in strict
//!   micro-batch order 0..N−1 — the serial accumulation order — and ×1.0
//!   is exact.
//! - K-FAC folds and inversions run on the capture replica with the same
//!   inputs, in the same per-layer order, as the inline `Kfac::step`; the
//!   optimizer then applies [`Kfac::step_preconditioned`], which is
//!   test-proven bitwise-equal to `step` given externally refreshed state.
//!
//! The only representational difference is the sign of zeros: the serial
//! loop accumulates onto `-0.0` slots left by `zero_grad`'s
//! `scale_inplace(0.0)`, while replicas accumulate onto `+0.0` pool
//! buffers, and `+0.0 + -0.0 == +0.0`. A sign-of-zero never changes a
//! loss, norm, or parameter value.
//!
//! # Robustness
//!
//! Channels are bounded; every blocking wait checks a shared abort flag
//! and a watchdog deadline. A panicking stage trips the abort with
//! [`ExecError::StagePanic`] and every thread unwinds to a join; a wedged
//! stage (or a coordinator starved of results) trips
//! [`ExecError::Wedged`]. Neither deadlocks.

use crate::checkpoint::{resolve_resume, CheckpointPolicy, ResumeFrom, TrainCheckpoint};
use crate::metrics::{MetricsRecorder, PhaseTimings};
use crate::trainer::AnyOpt;
use crate::{OptimizerChoice, TrainRun, Trainer};
use pipefisher_ckpt::CkptError;
use pipefisher_core::{assign, AuxKind, DevicePlan, ExecutablePlan, PipeFisherConfig, PlanOp};
use pipefisher_core::{AssignError, PipeFisherSchedule};
use pipefisher_nn::{
    BertForPreTraining, BertStage, ForwardCtx, PreTrainingBatch, StageOutput, StagedBert,
};
use pipefisher_optim::{fold_curvature_a, fold_curvature_b, refresh_inverses, LayerKfacState};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::KindCost;
use pipefisher_tensor::Matrix;
use serde_json::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Layer chunks each stage's fold/invert work is split into when no
/// PipeFisher schedule is available (it then dictates its own granularity).
const AUX_GRANULARITY: usize = 2;

/// A fault a [`ChaosHook`] injects at the start of a device's step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFault {
    /// Panic the worker (exercises the abort latch / `StagePanic` path).
    Panic,
    /// Wedge the worker — spin without progress until the watchdog (or an
    /// earlier fault) trips the abort latch.
    Stall,
}

/// Pluggable fault/clock injection for the pipeline executor.
///
/// Every callback is keyed on *logical* coordinates — `(device, step)`,
/// plan-op index, aux-pickup ordinal — never wall-clock time, so a hook
/// driven by a seeded plan (`pipefisher-harness`'s `FaultPlan`) injects the
/// same faults on every replay of the same seed. Hooks may perturb *timing*
/// (delays, skewed aux pickup order) or *liveness* (panics, stalls), but
/// have no access to data values: any run a hook does not abort must still
/// be bitwise-identical to the serial trainer.
pub trait ChaosHook: Send + Sync {
    /// Consulted once when `device` begins `step`; returning a fault panics
    /// or wedges the worker before any of the step's work runs.
    fn step_fault(&self, _device: usize, _step: usize) -> Option<StepFault> {
        None
    }

    /// Extra latency injected before `device` executes the `op_index`-th op
    /// of its plan in `step` (slow-stage skew).
    fn op_delay(&self, _device: usize, _step: usize, _op_index: usize) -> Option<Duration> {
        None
    }

    /// When true, the `pickup`-th K-FAC aux pickup of `device` in `step`
    /// skips the first *ready* unit and takes the next ready one instead
    /// (out-of-order aux pickup; readiness rules still hold, so the math is
    /// unchanged).
    fn aux_skip_first_ready(&self, _device: usize, _step: usize, _pickup: usize) -> bool {
        false
    }
}

/// How a pipelined run is laid out and supervised.
#[derive(Clone)]
pub struct PipelineOptions {
    /// Pipeline schedule shape (GPipe / 1F1B / Chimera; Chimera needs an
    /// even stage count and an even micro-batch count).
    pub scheme: PipelineScheme,
    /// Contiguous model stages = simulated devices.
    pub n_stages: usize,
    /// Micro-batches per optimizer step.
    pub n_micro: usize,
    /// Fill pipeline bubbles with K-FAC work (PipeFisher). When off, the
    /// same work runs serialized after the stage's pipeline work — the
    /// paper's "K-FAC on pipeline" baseline.
    pub fill_bubbles: bool,
    /// No worker (or the coordinator) may go this long without progress
    /// before the run aborts with [`ExecError::Wedged`]. Defaults to
    /// `PIPEFISHER_WATCHDOG_MS` (milliseconds) when set, else 30 s; raise
    /// it for chaos runs whose injected delays exceed the default.
    pub watchdog: Duration,
    /// Deterministic fault/clock injection (chaos testing); `None` runs
    /// clean.
    pub chaos: Option<Arc<dyn ChaosHook>>,
    /// Write checkpoints per this policy. The coordinator saves at step
    /// boundaries — after the gradient merge and optimizer update — so a
    /// pipelined checkpoint is byte-identical to the serial trainer's at
    /// the same step.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Restore state from here before the first step.
    pub resume: Option<ResumeFrom>,
}

impl std::fmt::Debug for PipelineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineOptions")
            .field("scheme", &self.scheme)
            .field("n_stages", &self.n_stages)
            .field("n_micro", &self.n_micro)
            .field("fill_bubbles", &self.fill_bubbles)
            .field("watchdog", &self.watchdog)
            .field("chaos", &self.chaos.as_ref().map(|_| "<hook>"))
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .finish()
    }
}

/// The default wedge-watchdog timeout: `PIPEFISHER_WATCHDOG_MS` when set to
/// a positive integer, else 30 seconds.
pub fn default_watchdog() -> Duration {
    std::env::var("PIPEFISHER_WATCHDOG_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30))
}

impl PipelineOptions {
    /// Bubble-filling defaults with the [`default_watchdog`] timeout.
    pub fn new(scheme: PipelineScheme, n_stages: usize, n_micro: usize) -> Self {
        PipelineOptions {
            scheme,
            n_stages,
            n_micro,
            fill_bubbles: true,
            watchdog: default_watchdog(),
            chaos: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Why a pipelined run stopped without finishing.
///
/// Every fault variant carries the number of optimizer steps that fully
/// completed (gradient merged, optimizer applied) before the abort — the
/// last checkpointable step. With checkpointing enabled, a supervisor can
/// resume from the newest generation at or below that step.
#[derive(Debug)]
pub enum ExecError {
    /// The schedule could not be lowered into an executable plan.
    Plan(AssignError),
    /// A stage worker panicked; the run aborted and every thread joined.
    StagePanic {
        /// Device whose step body panicked.
        device: usize,
        /// The panic payload, if it was a string.
        message: String,
        /// Optimizer steps fully completed before the abort.
        completed_steps: usize,
    },
    /// A worker (or the coordinator) made no progress for the watchdog
    /// duration; the run aborted rather than deadlocking.
    Wedged {
        /// The configured watchdog duration that elapsed without progress.
        waited: Duration,
        /// Who was stuck waiting for what.
        detail: String,
        /// Optimizer steps fully completed before the abort.
        completed_steps: usize,
    },
    /// Reading or writing a checkpoint failed.
    Checkpoint {
        /// The underlying checkpoint error.
        source: CkptError,
        /// Optimizer steps fully completed before the abort.
        completed_steps: usize,
    },
}

impl ExecError {
    /// Optimizer steps that fully completed before the run stopped — the
    /// last step a checkpoint could describe (`0` for plan errors, which
    /// fail before any step runs).
    pub fn completed_steps(&self) -> usize {
        match self {
            ExecError::Plan(_) => 0,
            ExecError::StagePanic {
                completed_steps, ..
            }
            | ExecError::Wedged {
                completed_steps, ..
            }
            | ExecError::Checkpoint {
                completed_steps, ..
            } => *completed_steps,
        }
    }

    /// Stamps the coordinator's completed-step count onto a fault. Workers
    /// record faults with `completed_steps: 0` (they cannot know how far
    /// the coordinator got); the coordinator patches the winning fault on
    /// the way out.
    fn with_completed(mut self, n: usize) -> Self {
        match &mut self {
            ExecError::Plan(_) => {}
            ExecError::StagePanic {
                completed_steps, ..
            }
            | ExecError::Wedged {
                completed_steps, ..
            }
            | ExecError::Checkpoint {
                completed_steps, ..
            } => *completed_steps = n,
        }
        self
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "pipeline plan error: {e}"),
            ExecError::StagePanic {
                device,
                message,
                completed_steps,
            } => {
                write!(
                    f,
                    "stage worker {device} panicked: {message} \
                     ({completed_steps} steps completed)"
                )
            }
            ExecError::Wedged {
                waited,
                detail,
                completed_steps,
            } => {
                write!(
                    f,
                    "pipeline wedged (no progress for {waited:?}): {detail} \
                     ({completed_steps} steps completed)"
                )
            }
            ExecError::Checkpoint {
                source,
                completed_steps,
            } => {
                write!(
                    f,
                    "checkpoint error: {source} ({completed_steps} steps completed)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A finished pipelined run: the loss/metrics history, the reassembled
/// model, and how the bubbles were spent.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Loss history and per-step metrics, exactly as `Trainer::run` shapes
    /// them.
    pub run: TrainRun,
    /// The trained model, reassembled from its stages.
    pub model: BertForPreTraining,
    /// Worker-thread milliseconds spent on K-FAC work *inside* bubbles
    /// (while waiting for pipeline input).
    pub bubble_aux_ms: f64,
    /// Worker-thread milliseconds spent blocked waiting for pipeline input
    /// with no runnable K-FAC work.
    pub bubble_idle_ms: f64,
    /// Worker-thread milliseconds spent on K-FAC work *after* the device's
    /// pipeline work finished (tail work that found no bubble).
    pub tail_aux_ms: f64,
}

type ParamSet = Vec<Matrix>;
type GradSet = Vec<Matrix>;

/// Per-step K-FAC parameters a worker needs to run fold/invert units.
#[derive(Debug, Clone)]
struct KfacStep {
    t: u64,
    ema_decay: f64,
    damping: f64,
    block_size: Option<usize>,
    refresh_curv: bool,
    refresh_inv: bool,
}

/// One step's marching orders for a device.
struct StepCmd {
    step: usize,
    batches: Arc<Vec<(PreTrainingBatch, ForwardCtx)>>,
    fill_bubbles: bool,
    /// Per hosted stage: canonical parameter values to load into every
    /// slot replica (the shuttle ping-pongs back in `StepDone`).
    params: Vec<(usize, ParamSet)>,
    /// Per hosted stage: zeroed gradient sets, one per backward this
    /// device runs for the stage (returned via `Grads`).
    grad_pool: Vec<(usize, Vec<GradSet>)>,
    kfac: Option<KfacStep>,
    /// Per capture-hosted stage: the optimizer's loaned layer states, in
    /// the stage's `visit_linears` order (returned via `StepDone`).
    kfac_states: Vec<(usize, Vec<LayerKfacState>)>,
}

enum Cmd {
    Step(Box<StepCmd>),
    Shutdown,
}

enum WorkerMsg {
    Loss {
        mb: usize,
        total_loss: f64,
    },
    Grads {
        device: usize,
        stage: usize,
        mb: usize,
        set: GradSet,
    },
    StepDone {
        device: usize,
        params: Vec<(usize, ParamSet)>,
        kfac_states: Vec<(usize, Vec<LayerKfacState>)>,
        bubble_aux_ms: f64,
        bubble_idle_ms: f64,
        tail_aux_ms: f64,
    },
    Fault {
        device: usize,
    },
}

/// Worker-to-worker payload: a boundary activation heading downstream or a
/// boundary gradient heading upstream, keyed by the stage that consumes it.
enum DataMsg {
    Act { stage: usize, mb: usize, m: Matrix },
    Grad { stage: usize, mb: usize, m: Matrix },
}

/// First-fault-wins abort latch shared by the coordinator and all workers.
#[derive(Default)]
struct Abort {
    flag: AtomicBool,
    fault: Mutex<Option<ExecError>>,
}

impl Abort {
    /// Records `err` if no earlier fault was recorded, then raises the flag.
    fn trip(&self, err: ExecError) {
        let mut slot = self.fault.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.flag.store(true, Ordering::SeqCst);
    }

    fn is_tripped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn take(&self) -> Option<ExecError> {
        self.fault.lock().unwrap().take()
    }
}

/// Worker-internal "stop this step now" marker; the cause (if this worker
/// is the one that failed) is already in the [`Abort`] latch.
struct Halt;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The canonical relative work-unit costs used to ask the PipeFisher
/// scheduler for a bubble placement (forward 1, backward 2, per the
/// paper's profile shape). Falls back to `None` when the scheme/shape has
/// no bubbles to place into (e.g. `D = 1`).
fn make_schedule(scheme: PipelineScheme, d: usize, n_micro: usize) -> Option<PipeFisherSchedule> {
    let mut costs = KindCost::standard(1.0, 2.0);
    costs.t_curv_a = 0.4;
    costs.t_curv_b = 0.4;
    costs.t_inv_a = 0.6;
    costs.t_inv_b = 0.6;
    costs.t_prec = 0.2;
    assign(&PipeFisherConfig {
        scheme,
        d,
        n_micro,
        w: 1,
        costs,
        max_steps: 16,
        chimera_pair_parallelism: false,
        recompute: false,
        granularity: AUX_GRANULARITY,
    })
    .ok()
}

/// The exact [`ExecutablePlan`] [`Trainer::run_pipelined`] executes for
/// `opts` — exposed so the conformance checker validates a run against the
/// very plan that drove it, not a reconstruction.
///
/// # Panics
///
/// Panics if the scheme's shape rules are violated (e.g. Chimera with odd
/// `n_stages` or `n_micro`), mirroring `run_pipelined`.
pub fn plan_for(opts: &PipelineOptions) -> Result<ExecutablePlan, ExecError> {
    let graph = opts.scheme.build(opts.n_stages, opts.n_micro);
    let schedule = make_schedule(opts.scheme, opts.n_stages, opts.n_micro);
    ExecutablePlan::lower(&graph, schedule.as_ref(), AUX_GRANULARITY).map_err(ExecError::Plan)
}

/// Global L2 gradient norm over a staged model (same parameter order as the
/// monolithic model, so the sum is bitwise the serial one).
fn staged_grad_norm(staged: &mut StagedBert) -> f64 {
    let mut sq = 0.0;
    staged.visit_params(&mut |p| {
        sq += p.grad.as_slice().iter().map(|v| v * v).sum::<f64>();
    });
    sq.sqrt()
}

struct WorkerHandle {
    cmd_tx: SyncSender<Cmd>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// Sends shutdown to every worker and joins them all. Safe on both the
/// success path and the abort path: every worker blocking point checks the
/// abort flag or notices the dropped/peer-closed channel.
fn shutdown_workers(workers: &mut Vec<WorkerHandle>) {
    for w in workers.iter() {
        let _ = w.cmd_tx.try_send(Cmd::Shutdown);
    }
    for mut w in workers.drain(..) {
        drop(w.cmd_tx);
        if let Some(join) = w.join.take() {
            let _ = join.join();
        }
    }
}

/// Trips the abort latch with `fallback` (first fault wins), tears the
/// worker fleet down, and returns the winning fault.
fn abort_run(workers: &mut Vec<WorkerHandle>, abort: &Abort, fallback: ExecError) -> ExecError {
    abort.trip(fallback);
    shutdown_workers(workers);
    abort.take().expect("abort latch tripped")
}

impl Trainer {
    /// Trains `model` for `steps` optimizer steps on a `D`-stage pipeline
    /// of worker threads, filling bubbles with K-FAC work per
    /// `opts.fill_bubbles`. Losses, metrics, and the returned model are
    /// bitwise-identical to the single-thread accumulated loop (see module
    /// docs); on error the model is consumed.
    ///
    /// # Panics
    ///
    /// Panics if `opts.n_stages == 0`, `opts.n_micro == 0`, the model has
    /// fewer blocks than stages need, or the scheme's own shape rules are
    /// violated (Chimera needs even `D` and even `N`).
    pub fn run_pipelined(
        &mut self,
        mut model: BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        opts: &PipelineOptions,
    ) -> Result<PipelineOutcome, ExecError> {
        assert!(
            opts.n_stages > 0,
            "run_pipelined: n_stages must be positive"
        );
        assert!(opts.n_micro > 0, "run_pipelined: n_micro must be positive");
        let (d, n_micro) = (opts.n_stages, opts.n_micro);
        let plan = plan_for(opts)?;
        let n_devices = plan.devices.len();

        // Checkpoint store / resume run before any worker exists, so a
        // failure here is a clean `Checkpoint` error with 0 completed steps.
        let ckpt_err0 = |source: CkptError| ExecError::Checkpoint {
            source,
            completed_steps: 0,
        };
        let mut opt = AnyOpt::new(choice);
        let store = match &opts.checkpoint {
            Some(policy) => Some((policy, policy.open().map_err(ckpt_err0)?)),
            None => None,
        };
        let mut start_step = 0usize;
        if let Some(resume) = &opts.resume {
            let path = resolve_resume(resume).map_err(ckpt_err0)?;
            let tc = TrainCheckpoint::load(&path).map_err(ckpt_err0)?;
            start_step = self
                .restore_checkpoint(&tc, &mut opt, |bytes| model.import_params(bytes))
                .map_err(ckpt_err0)?;
        }
        assert!(
            start_step <= steps,
            "resume checkpoint is past the requested step count \
             ({start_step} > {steps})"
        );

        let mut staged = StagedBert::from_model(model, d);
        // K-FAC layer names per stage, in `visit_linears` order — the index
        // contract for loaned state vectors.
        let layer_names: Vec<Vec<String>> = (0..d)
            .map(|s| {
                let mut names = Vec::new();
                staged
                    .stage_mut(s)
                    .visit_linears(&mut |lin| names.push(lin.name().to_string()));
                names
            })
            .collect();

        // --- Spawn one persistent worker per device. -------------------
        let abort = Arc::new(Abort::default());
        let (res_tx, res_rx) = mpsc::channel::<WorkerMsg>();
        let mut data_txs = Vec::with_capacity(n_devices);
        let mut data_rxs: Vec<Option<Receiver<DataMsg>>> = Vec::with_capacity(n_devices);
        for dev in 0..n_devices {
            let hosted = plan.devices[dev].hosted_stages().len().max(1);
            let (tx, rx) = mpsc::sync_channel::<DataMsg>(2 * n_micro * hosted + 4);
            data_txs.push(tx);
            data_rxs.push(Some(rx));
        }
        let mut workers: Vec<WorkerHandle> = Vec::with_capacity(n_devices);
        // Coordinator-held shuttles and pools, keyed by (device, stage).
        let mut shuttles: HashMap<(usize, usize), ParamSet> = HashMap::new();
        let mut pools: HashMap<(usize, usize), Vec<GradSet>> = HashMap::new();
        for (dev, data_rx_slot) in data_rxs.iter_mut().enumerate() {
            let dplan = plan.devices[dev].clone();
            let mut hosts = HashMap::new();
            for s in dplan.hosted_stages() {
                let mut replicas = Vec::with_capacity(dplan.n_slots[s]);
                for _ in 0..dplan.n_slots[s] {
                    let mut replica = staged.stage(s).clone();
                    replica.visit_params(&mut |p| p.grad.as_mut_slice().fill(0.0));
                    replica.visit_linears(&mut |lin| lin.kfac_stats_mut().clear());
                    replicas.push(replica);
                }
                let capture_slot = dplan.ops.iter().find_map(|op| match *op {
                    PlanOp::Forward {
                        stage, mb, slot, ..
                    } if stage == s && mb + 1 == n_micro => Some(slot),
                    _ => None,
                });
                hosts.insert(
                    s,
                    StageHost {
                        replicas,
                        capture_slot,
                    },
                );
                let mut pset = Vec::new();
                staged
                    .stage_mut(s)
                    .visit_params(&mut |p| pset.push(p.value.clone()));
                shuttles.insert((dev, s), pset);
                let backwards = dplan
                    .ops
                    .iter()
                    .filter(|op| matches!(op, PlanOp::Backward { stage, .. } if *stage == s))
                    .count();
                let mut pool = Vec::with_capacity(backwards);
                for _ in 0..backwards {
                    let mut set = Vec::new();
                    staged.stage_mut(s).visit_params(&mut |p| {
                        set.push(Matrix::zeros(p.grad.rows(), p.grad.cols()))
                    });
                    pool.push(set);
                }
                pools.insert((dev, s), pool);
            }
            let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Cmd>(2);
            let worker = Worker {
                device: dev,
                n_micro,
                last_stage: d - 1,
                plan: Arc::new(dplan),
                hosts,
                cmd_rx,
                data_rx: data_rx_slot.take().expect("receiver taken once"),
                peers: data_txs
                    .iter()
                    .enumerate()
                    .map(|(i, tx)| if i == dev { None } else { Some(tx.clone()) })
                    .collect(),
                results: res_tx.clone(),
                abort: Arc::clone(&abort),
                watchdog: opts.watchdog,
                chaos: opts.chaos.clone(),
                pending: HashMap::new(),
                shuttles: HashMap::new(),
                grad_pools: HashMap::new(),
                loaned: HashMap::new(),
                aux_done: Vec::new(),
                aux_pickups: 0,
                fwd_cap: vec![false; d],
                bwd_cap: vec![false; d],
                bubble_aux_ms: 0.0,
                bubble_idle_ms: 0.0,
                tail_aux_ms: 0.0,
                last_progress: Instant::now(),
            };
            let join = std::thread::Builder::new()
                .name(format!("dev{dev}"))
                .spawn(move || worker.run())
                .expect("spawn stage worker");
            workers.push(WorkerHandle {
                cmd_tx,
                join: Some(join),
            });
        }
        drop(res_tx);
        drop(data_txs);

        // --- Step loop (mirrors `run_accumulated` span for span). ------
        let scale = 1.0 / n_micro as f64;
        let mut losses = Vec::with_capacity(steps - start_step);
        let mut recorder = MetricsRecorder::default();
        let (mut bubble_aux_ms, mut bubble_idle_ms, mut tail_aux_ms) = (0.0, 0.0, 0.0);
        let total_backwards = d * n_micro;
        for step in start_step..steps {
            let _step_span = pipefisher_trace::span("step", "train");
            let alloc_before = pipefisher_trace::alloc_snapshot();
            staged.zero_grad();
            let refresh_curv = opt.refreshes_curvature_at(step);
            let refresh_inv = opt.inverts_at(step);
            let t0 = Instant::now();
            let batches = {
                let _span = pipefisher_trace::span("sample", "train");
                Arc::new(self.sample_micro_batches(n_micro, refresh_curv))
            };
            let t1 = Instant::now();
            let mut returned_states: Vec<(usize, Vec<LayerKfacState>)> = Vec::new();
            let loss = {
                let _span = pipefisher_trace::span("forward_backward", "train");
                // Dispatch.
                let kfac_step = opt.kfac_mut().map(|k| KfacStep {
                    t: k.step_count() + 1,
                    ema_decay: k.config().ema_decay,
                    damping: k.config().damping,
                    block_size: k.config().factor_block_size,
                    refresh_curv,
                    refresh_inv,
                });
                let loan = kfac_step.is_some() && (refresh_curv || refresh_inv);
                for (dev, w) in workers.iter().enumerate() {
                    let hosted = plan.devices[dev].hosted_stages();
                    let mut params = Vec::with_capacity(hosted.len());
                    let mut grad_pool = Vec::with_capacity(hosted.len());
                    let mut kfac_states = Vec::new();
                    for &s in &hosted {
                        let pset = shuttles.get_mut(&(dev, s)).expect("shuttle exists");
                        let mut i = 0;
                        staged.stage_mut(s).visit_params(&mut |p| {
                            pset[i].clone_from(&p.value);
                            i += 1;
                        });
                        params.push((s, shuttles.remove(&(dev, s)).expect("shuttle exists")));
                        grad_pool
                            .push((s, std::mem::take(pools.get_mut(&(dev, s)).expect("pool"))));
                        if loan && plan.capture_host[s] == dev {
                            let k = opt.kfac_mut().expect("loan implies K-FAC");
                            let states: Vec<LayerKfacState> = layer_names[s]
                                .iter()
                                .map(|name| k.take_state(name))
                                .collect();
                            kfac_states.push((s, states));
                        }
                    }
                    let cmd = StepCmd {
                        step,
                        batches: Arc::clone(&batches),
                        fill_bubbles: opts.fill_bubbles,
                        params,
                        grad_pool,
                        kfac: kfac_step.clone(),
                        kfac_states,
                    };
                    if w.cmd_tx.send(Cmd::Step(Box::new(cmd))).is_err() {
                        let fallback = ExecError::StagePanic {
                            device: dev,
                            message: "worker exited before the step was dispatched".to_string(),
                            completed_steps: step,
                        };
                        return Err(abort_run(&mut workers, &abort, fallback).with_completed(step));
                    }
                }
                // Collect.
                let mut loss_buf = vec![0.0f64; n_micro];
                let mut loss_got = vec![false; n_micro];
                let mut grad_sets: HashMap<(usize, usize), (usize, GradSet)> = HashMap::new();
                let mut done = 0usize;
                let mut last_msg = Instant::now();
                loop {
                    if done == n_devices
                        && grad_sets.len() == total_backwards
                        && loss_got.iter().all(|&g| g)
                    {
                        break;
                    }
                    match res_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(WorkerMsg::Loss { mb, total_loss }) => {
                            loss_buf[mb] = total_loss;
                            loss_got[mb] = true;
                            last_msg = Instant::now();
                        }
                        Ok(WorkerMsg::Grads {
                            device,
                            stage,
                            mb,
                            set,
                        }) => {
                            grad_sets.insert((stage, mb), (device, set));
                            last_msg = Instant::now();
                        }
                        Ok(WorkerMsg::StepDone {
                            device,
                            params,
                            kfac_states,
                            bubble_aux_ms: aux,
                            bubble_idle_ms: idle,
                            tail_aux_ms: tail,
                        }) => {
                            for (s, pset) in params {
                                shuttles.insert((device, s), pset);
                            }
                            returned_states.extend(kfac_states);
                            bubble_aux_ms += aux;
                            bubble_idle_ms += idle;
                            tail_aux_ms += tail;
                            done += 1;
                            last_msg = Instant::now();
                        }
                        Ok(WorkerMsg::Fault { device }) => {
                            let fallback = ExecError::StagePanic {
                                device,
                                message: "worker reported a fault".to_string(),
                                completed_steps: step,
                            };
                            return Err(
                                abort_run(&mut workers, &abort, fallback).with_completed(step)
                            );
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if abort.is_tripped() || last_msg.elapsed() > opts.watchdog {
                                let fallback = ExecError::Wedged {
                                    waited: opts.watchdog,
                                    detail: format!(
                                        "coordinator starved of step-{step} results \
                                         ({done}/{n_devices} devices done)"
                                    ),
                                    completed_steps: step,
                                };
                                return Err(
                                    abort_run(&mut workers, &abort, fallback).with_completed(step)
                                );
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            let fallback = ExecError::Wedged {
                                waited: opts.watchdog,
                                detail: "all workers exited mid-step".to_string(),
                                completed_steps: step,
                            };
                            return Err(
                                abort_run(&mut workers, &abort, fallback).with_completed(step)
                            );
                        }
                    }
                }
                // Merge gradient contributions in serial micro-batch order.
                for mb in 0..n_micro {
                    for s in 0..d {
                        let (device, mut set) =
                            grad_sets.remove(&(s, mb)).expect("backward coverage");
                        let mut i = 0;
                        staged.stage_mut(s).visit_params(&mut |p| {
                            p.grad.axpy(1.0, &set[i]);
                            i += 1;
                        });
                        for m in &mut set {
                            m.as_mut_slice().fill(0.0);
                        }
                        pools.get_mut(&(device, s)).expect("pool").push(set);
                    }
                }
                loss_buf.iter().sum::<f64>() * scale
            };
            staged.visit_params(&mut |p| p.grad.scale_inplace(scale));
            let t2 = Instant::now();
            losses.push(loss);
            pipefisher_trace::counter("loss", loss);
            let grad_norm = staged_grad_norm(&mut staged);
            let lr = self.schedule.lr_at(step);
            let t3 = Instant::now();
            {
                let _span = pipefisher_trace::span("optimizer_step", "train");
                if let Some(k) = opt.kfac_mut() {
                    for (s, states) in returned_states.drain(..) {
                        for (name, state) in layer_names[s].iter().zip(states) {
                            k.put_state(name, state);
                        }
                    }
                }
                opt.apply_preconditioned(&mut staged, lr);
            }
            let t4 = Instant::now();
            // Checkpoint at the step boundary: gradients are merged and the
            // optimizer applied, so the captured state is exactly what the
            // serial trainer would capture after the same step.
            let mut ckpt_write_ms = 0.0;
            if let Some((policy, dir)) = &store {
                if policy.due(step + 1, steps) {
                    let t5 = Instant::now();
                    let snap = self
                        .capture_checkpoint((step + 1) as u64, &opt, staged.export_params())
                        .to_snapshot();
                    if let Err(source) = dir.save((step + 1) as u64, &snap) {
                        let fallback = ExecError::Checkpoint {
                            source,
                            completed_steps: step + 1,
                        };
                        return Err(
                            abort_run(&mut workers, &abort, fallback).with_completed(step + 1)
                        );
                    }
                    ckpt_write_ms = t5.elapsed().as_secs_f64() * 1e3;
                }
            }
            recorder.record(
                step,
                loss,
                grad_norm,
                lr,
                PhaseTimings {
                    data_ms: (t1 - t0).as_secs_f64() * 1e3,
                    forward_backward_ms: (t2 - t1).as_secs_f64() * 1e3,
                    optimizer_ms: (t4 - t3).as_secs_f64() * 1e3,
                },
                refresh_curv,
                refresh_inv,
                pipefisher_trace::alloc_snapshot().since(&alloc_before),
                ckpt_write_ms,
            );
        }
        shutdown_workers(&mut workers);
        Ok(PipelineOutcome {
            run: TrainRun {
                losses,
                label: opt.label().to_string(),
                metrics: recorder.into_rows(),
            },
            model: staged.into_model(),
            bubble_aux_ms,
            bubble_idle_ms,
            tail_aux_ms,
        })
    }
}

// ===================== worker side =====================

/// A stage this device hosts: one replica per activation slot, plus which
/// slot runs the capture micro-batch `N−1` (if this device does).
struct StageHost {
    replicas: Vec<BertStage>,
    capture_slot: Option<usize>,
}

/// One device's worker: executes its `DevicePlan` ops in order each step,
/// popping ready K-FAC units while blocked on pipeline input.
struct Worker {
    device: usize,
    n_micro: usize,
    last_stage: usize,
    plan: Arc<DevicePlan>,
    hosts: HashMap<usize, StageHost>,
    cmd_rx: Receiver<Cmd>,
    data_rx: Receiver<DataMsg>,
    /// Per-device senders into each peer's `data_rx` (`None` at own index).
    peers: Vec<Option<SyncSender<DataMsg>>>,
    results: mpsc::Sender<WorkerMsg>,
    abort: Arc<Abort>,
    watchdog: Duration,
    chaos: Option<Arc<dyn ChaosHook>>,
    /// Arrived-but-unconsumed boundary tensors, keyed `(is_grad, stage, mb)`.
    pending: HashMap<(bool, usize, usize), Matrix>,
    /// Per-step loans from the coordinator, keyed by stage.
    shuttles: HashMap<usize, ParamSet>,
    grad_pools: HashMap<usize, Vec<GradSet>>,
    loaned: HashMap<usize, Vec<LayerKfacState>>,
    /// Per-step aux progress.
    aux_done: Vec<bool>,
    /// Aux units picked up so far this step (the chaos hook's pickup key).
    aux_pickups: usize,
    fwd_cap: Vec<bool>,
    bwd_cap: Vec<bool>,
    bubble_aux_ms: f64,
    bubble_idle_ms: f64,
    tail_aux_ms: f64,
    last_progress: Instant,
}

impl Worker {
    fn run(mut self) {
        loop {
            let cmd = match self.cmd_rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            };
            let mut step_cmd = match cmd {
                Cmd::Shutdown => break,
                Cmd::Step(c) => c,
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_step(&mut step_cmd)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(Halt)) => {
                    let _ = self.results.send(WorkerMsg::Fault {
                        device: self.device,
                    });
                    break;
                }
                Err(payload) => {
                    self.abort.trip(ExecError::StagePanic {
                        device: self.device,
                        message: panic_message(payload),
                        completed_steps: 0,
                    });
                    let _ = self.results.send(WorkerMsg::Fault {
                        device: self.device,
                    });
                    break;
                }
            }
        }
    }

    fn run_step(&mut self, cmd: &mut StepCmd) -> Result<(), Halt> {
        match self
            .chaos
            .as_ref()
            .and_then(|c| c.step_fault(self.device, cmd.step))
        {
            Some(StepFault::Panic) => panic!(
                "injected fault: device {} at step {}",
                self.device, cmd.step
            ),
            Some(StepFault::Stall) => {
                // Wedge without progress until someone (the watchdog) aborts.
                while !self.abort.is_tripped() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return Err(Halt);
            }
            None => {}
        }
        self.begin_step(cmd);
        let plan = Arc::clone(&self.plan);
        for (op_index, op) in plan.ops.iter().enumerate() {
            if self.abort.is_tripped() {
                return Err(Halt);
            }
            if let Some(delay) = self
                .chaos
                .as_ref()
                .and_then(|c| c.op_delay(self.device, cmd.step, op_index))
            {
                self.chaos_sleep(delay)?;
            }
            match *op {
                PlanOp::Forward {
                    stage,
                    mb,
                    slot,
                    send_to,
                } => self.do_forward(cmd, stage, mb, slot, send_to)?,
                PlanOp::Backward {
                    stage,
                    mb,
                    slot,
                    send_to,
                } => self.do_backward(cmd, stage, mb, slot, send_to)?,
            }
        }
        self.finish_step(cmd)
    }

    /// Loads the step's loans into worker state and resets per-step
    /// progress tracking. Slot replicas re-sync to the canonical
    /// parameters here, so every micro-batch computes on the exact
    /// serial-step weights.
    fn begin_step(&mut self, cmd: &mut StepCmd) {
        for (stage, pset) in cmd.params.drain(..) {
            let host = self.hosts.get_mut(&stage).expect("params for hosted stage");
            for replica in &mut host.replicas {
                let mut i = 0;
                replica.visit_params(&mut |p| {
                    p.value.clone_from(&pset[i]);
                    i += 1;
                });
            }
            self.shuttles.insert(stage, pset);
        }
        for (stage, pool) in cmd.grad_pool.drain(..) {
            self.grad_pools.insert(stage, pool);
        }
        for (stage, states) in cmd.kfac_states.drain(..) {
            self.loaned.insert(stage, states);
        }
        self.aux_done.clear();
        self.aux_done.resize(self.plan.aux.len(), false);
        self.aux_pickups = 0;
        self.fwd_cap.iter_mut().for_each(|f| *f = false);
        self.bwd_cap.iter_mut().for_each(|f| *f = false);
        self.bubble_aux_ms = 0.0;
        self.bubble_idle_ms = 0.0;
        self.tail_aux_ms = 0.0;
        self.last_progress = Instant::now();
    }

    /// Sleeps out an injected delay in abort-aware slices. The wait is
    /// intentional, so the worker's own progress clock resets afterwards;
    /// peers blocked on this device's output still see the skew and wedge
    /// if it exceeds their watchdog.
    fn chaos_sleep(&mut self, delay: Duration) -> Result<(), Halt> {
        let until = Instant::now() + delay;
        loop {
            if self.abort.is_tripped() {
                return Err(Halt);
            }
            let now = Instant::now();
            if now >= until {
                self.last_progress = Instant::now();
                return Ok(());
            }
            std::thread::sleep((until - now).min(Duration::from_millis(2)));
        }
    }

    fn do_forward(
        &mut self,
        cmd: &StepCmd,
        stage: usize,
        mb: usize,
        slot: usize,
        send_to: Option<usize>,
    ) -> Result<(), Halt> {
        let input = if stage == 0 {
            None
        } else {
            Some(self.wait_for(false, stage, mb, cmd)?)
        };
        let (batch, ctx) = &cmd.batches[mb];
        let out = {
            let device = self.device;
            let _span = pipefisher_trace::span_with("forward", "pipeline", || {
                vec![
                    ("step".to_string(), json!(cmd.step)),
                    ("device".to_string(), json!(device)),
                    ("stage".to_string(), json!(stage)),
                    ("mb".to_string(), json!(mb)),
                    ("slot".to_string(), json!(slot)),
                ]
            });
            let host = self.hosts.get_mut(&stage).expect("forward on hosted stage");
            host.replicas[slot].forward(input, batch, ctx)
        };
        if mb + 1 == self.n_micro {
            self.fwd_cap[stage] = true;
        }
        match out {
            StageOutput::Boundary(m) => {
                let dest = send_to.expect("interior forward routes downstream");
                self.send_data(
                    dest,
                    DataMsg::Act {
                        stage: stage + 1,
                        mb,
                        m,
                    },
                )?;
            }
            StageOutput::Losses(out) => {
                self.results
                    .send(WorkerMsg::Loss {
                        mb,
                        total_loss: out.total_loss,
                    })
                    .map_err(|_| Halt)?;
            }
        }
        self.last_progress = Instant::now();
        Ok(())
    }

    fn do_backward(
        &mut self,
        cmd: &StepCmd,
        stage: usize,
        mb: usize,
        slot: usize,
        send_to: Option<usize>,
    ) -> Result<(), Halt> {
        let dout = if stage == self.last_stage {
            None
        } else {
            Some(self.wait_for(true, stage, mb, cmd)?)
        };
        let (batch, _ctx) = &cmd.batches[mb];
        let upstream = {
            let device = self.device;
            let _span = pipefisher_trace::span_with("backward", "pipeline", || {
                vec![
                    ("step".to_string(), json!(cmd.step)),
                    ("device".to_string(), json!(device)),
                    ("stage".to_string(), json!(stage)),
                    ("mb".to_string(), json!(mb)),
                    ("slot".to_string(), json!(slot)),
                ]
            });
            let host = self
                .hosts
                .get_mut(&stage)
                .expect("backward on hosted stage");
            host.replicas[slot].backward(dout, batch)
        };
        if mb + 1 == self.n_micro {
            self.bwd_cap[stage] = true;
        }
        if let (Some(m), Some(dest)) = (upstream, send_to) {
            self.send_data(
                dest,
                DataMsg::Grad {
                    stage: stage - 1,
                    mb,
                    m,
                },
            )?;
        }
        // Hand this micro-batch's contribution to the coordinator: swap the
        // replica's accumulated grads with a zeroed set from the pool, so
        // the replica is clean for its slot's next micro-batch.
        let mut set = self
            .grad_pools
            .get_mut(&stage)
            .expect("grad pool for hosted stage")
            .pop()
            .expect("grad pool sized to backward count");
        {
            let host = self.hosts.get_mut(&stage).expect("hosted stage");
            let mut i = 0;
            host.replicas[slot].visit_params(&mut |p| {
                std::mem::swap(&mut p.grad, &mut set[i]);
                i += 1;
            });
        }
        self.results
            .send(WorkerMsg::Grads {
                device: self.device,
                stage,
                mb,
                set,
            })
            .map_err(|_| Halt)?;
        self.last_progress = Instant::now();
        Ok(())
    }

    /// Runs remaining K-FAC units (tail work that found no bubble), clears
    /// the capture replicas' statistics, and returns the loans.
    fn finish_step(&mut self, cmd: &StepCmd) -> Result<(), Halt> {
        let tail_t = Instant::now();
        while self.try_aux_one(cmd) {
            if self.abort.is_tripped() {
                return Err(Halt);
            }
        }
        self.tail_aux_ms = tail_t.elapsed().as_secs_f64() * 1e3;
        if cmd.kfac.as_ref().is_some_and(|k| k.refresh_curv) {
            for host in self.hosts.values_mut() {
                if let Some(slot) = host.capture_slot {
                    host.replicas[slot].visit_linears(&mut |lin| lin.kfac_stats_mut().clear());
                }
            }
        }
        let mut params: Vec<(usize, ParamSet)> = self.shuttles.drain().collect();
        params.sort_by_key(|(s, _)| *s);
        let mut kfac_states: Vec<(usize, Vec<LayerKfacState>)> = self.loaned.drain().collect();
        kfac_states.sort_by_key(|(s, _)| *s);
        self.results
            .send(WorkerMsg::StepDone {
                device: self.device,
                params,
                kfac_states,
                bubble_aux_ms: self.bubble_aux_ms,
                bubble_idle_ms: self.bubble_idle_ms,
                tail_aux_ms: self.tail_aux_ms,
            })
            .map_err(|_| Halt)
    }

    /// Blocks until the boundary tensor keyed `(is_grad, stage, mb)`
    /// arrives, filling the wait with ready K-FAC units (the bubbles the
    /// paper targets) and honoring abort/watchdog.
    fn wait_for(
        &mut self,
        is_grad: bool,
        stage: usize,
        mb: usize,
        cmd: &StepCmd,
    ) -> Result<Matrix, Halt> {
        let key = (is_grad, stage, mb);
        loop {
            while let Ok(msg) = self.data_rx.try_recv() {
                self.stash(msg);
            }
            if let Some(m) = self.pending.remove(&key) {
                self.last_progress = Instant::now();
                return Ok(m);
            }
            if cmd.fill_bubbles && self.try_aux_one(cmd) {
                continue;
            }
            let idle_t = Instant::now();
            match self.data_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(msg) => {
                    self.bubble_idle_ms += idle_t.elapsed().as_secs_f64() * 1e3;
                    self.stash(msg);
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.bubble_idle_ms += idle_t.elapsed().as_secs_f64() * 1e3;
                    if self.abort.is_tripped() {
                        return Err(Halt);
                    }
                    if self.last_progress.elapsed() > self.watchdog {
                        let what = if is_grad { "gradient" } else { "activation" };
                        self.abort.trip(ExecError::Wedged {
                            waited: self.watchdog,
                            detail: format!(
                                "device {} stuck waiting for the {what} of stage {stage} \
                                 micro-batch {mb}",
                                self.device
                            ),
                            completed_steps: 0,
                        });
                        return Err(Halt);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(Halt),
            }
        }
    }

    fn stash(&mut self, msg: DataMsg) {
        let (key, m) = match msg {
            DataMsg::Act { stage, mb, m } => ((false, stage, mb), m),
            DataMsg::Grad { stage, mb, m } => ((true, stage, mb), m),
        };
        self.pending.insert(key, m);
        self.last_progress = Instant::now();
    }

    /// Routes a boundary tensor to the device hosting its consumer; a
    /// self-send short-circuits into `pending`.
    fn send_data(&mut self, dest: usize, msg: DataMsg) -> Result<(), Halt> {
        if dest == self.device {
            self.stash(msg);
            return Ok(());
        }
        let mut msg = msg;
        loop {
            let tx = self.peers[dest].as_ref().expect("peer sender");
            match tx.try_send(msg) {
                Ok(()) => {
                    self.last_progress = Instant::now();
                    return Ok(());
                }
                Err(TrySendError::Full(back)) => {
                    msg = back;
                    if self.abort.is_tripped() {
                        return Err(Halt);
                    }
                    if self.last_progress.elapsed() > self.watchdog {
                        self.abort.trip(ExecError::Wedged {
                            waited: self.watchdog,
                            detail: format!(
                                "device {} stuck sending to device {dest} (full channel)",
                                self.device
                            ),
                            completed_steps: 0,
                        });
                        return Err(Halt);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(TrySendError::Disconnected(_)) => return Err(Halt),
            }
        }
    }

    /// Runs the first K-FAC unit whose inputs are ready (or, under a chaos
    /// hook's out-of-order pickup, the second ready one); returns whether
    /// any work was done. Units for phases the step does not refresh are
    /// marked done without running (there is nothing to compute).
    ///
    /// Reordering among *ready* units is bitwise-safe: ready units touch
    /// disjoint per-layer state, and an inversion only becomes ready once
    /// every fold of its stage is done.
    fn try_aux_one(&mut self, cmd: &StepCmd) -> bool {
        let Some(kfac) = cmd.kfac.clone() else {
            return false;
        };
        if !kfac.refresh_curv && !kfac.refresh_inv {
            return false;
        }
        let plan = Arc::clone(&self.plan);
        let mut first_ready = None;
        let mut second_ready = None;
        for (i, op) in plan.aux.iter().enumerate() {
            if self.aux_done[i] {
                continue;
            }
            let applicable = match op.kind {
                AuxKind::FoldA | AuxKind::FoldB => kfac.refresh_curv,
                AuxKind::Invert => kfac.refresh_inv,
            };
            if !applicable {
                self.aux_done[i] = true;
                continue;
            }
            let ready = match op.kind {
                AuxKind::FoldA => self.fwd_cap[op.stage],
                AuxKind::FoldB => self.bwd_cap[op.stage],
                // Inversion consumes the stage's folded factors: on a
                // curvature-refresh step it waits for every fold of the
                // stage; on a pure inversion step the factors are already
                // current.
                AuxKind::Invert => {
                    !kfac.refresh_curv
                        || plan.aux.iter().enumerate().all(|(j, other)| {
                            other.stage != op.stage
                                || !matches!(other.kind, AuxKind::FoldA | AuxKind::FoldB)
                                || self.aux_done[j]
                        })
                }
            };
            if !ready {
                continue;
            }
            if first_ready.is_none() {
                first_ready = Some(i);
            } else {
                second_ready = Some(i);
                break;
            }
        }
        let Some(first) = first_ready else {
            return false;
        };
        let skip = self
            .chaos
            .as_ref()
            .is_some_and(|c| c.aux_skip_first_ready(self.device, cmd.step, self.aux_pickups));
        let chosen = if skip {
            second_ready.unwrap_or(first)
        } else {
            first
        };
        self.aux_pickups += 1;
        self.aux_done[chosen] = true;
        let op = plan.aux[chosen];
        let t = Instant::now();
        self.run_aux(cmd.step, op.stage, op.kind, op.chunk, op.chunks, &kfac);
        self.bubble_aux_ms += t.elapsed().as_secs_f64() * 1e3;
        self.last_progress = Instant::now();
        true
    }

    /// Executes one fold/invert unit over the chunk's slice of the stage's
    /// K-FAC layers, on the capture replica's statistics, against the
    /// optimizer's loaned layer states.
    fn run_aux(
        &mut self,
        step: usize,
        stage: usize,
        kind: AuxKind,
        chunk: usize,
        chunks: usize,
        kfac: &KfacStep,
    ) {
        let device = self.device;
        let Some(states) = self.loaned.get_mut(&stage) else {
            return; // no loan (e.g. another device's refresh already has it)
        };
        let host = self.hosts.get_mut(&stage).expect("aux on hosted stage");
        let slot = host.capture_slot.expect("aux runs on the capture host");
        let replica = &mut host.replicas[slot];
        let k_total = states.len();
        let lo = chunk * k_total / chunks;
        let hi = (chunk + 1) * k_total / chunks;
        let aux_args = || {
            vec![
                ("step".to_string(), json!(step)),
                ("device".to_string(), json!(device)),
                ("stage".to_string(), json!(stage)),
                ("chunk".to_string(), json!(chunk)),
                ("chunks".to_string(), json!(chunks)),
            ]
        };
        match kind {
            AuxKind::FoldA => {
                let _span = pipefisher_trace::span_with("curvature_a", "kfac", aux_args);
                let mut i = 0;
                replica.visit_linears(&mut |lin| {
                    if i >= lo && i < hi {
                        fold_curvature_a(&mut states[i], lin, kfac.ema_decay, kfac.t);
                    }
                    i += 1;
                });
            }
            AuxKind::FoldB => {
                let _span = pipefisher_trace::span_with("curvature_b", "kfac", aux_args);
                let mut i = 0;
                replica.visit_linears(&mut |lin| {
                    if i >= lo && i < hi {
                        fold_curvature_b(&mut states[i], lin, kfac.ema_decay, kfac.t);
                    }
                    i += 1;
                });
            }
            AuxKind::Invert => {
                let _span = pipefisher_trace::span_with("inversion", "kfac", aux_args);
                for state in &mut states[lo..hi] {
                    refresh_inverses(state, kfac.damping, kfac.block_size, kfac.t);
                }
            }
        }
    }
}
