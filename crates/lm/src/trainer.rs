//! Pretraining loops with loss tracking (the Figure 6 machinery) and
//! per-step metrics/trace instrumentation.

use crate::checkpoint::{resolve_resume, CheckpointOptions, TrainCheckpoint};
use crate::metrics::{MetricsRecorder, PhaseTimings};
use crate::{BatchSampler, StepMetrics};
use pipefisher_ckpt::{CkptError, SectionReader, SectionWriter};
use pipefisher_nn::{BertForPreTraining, ForwardCtx, PreTrainingBatch};
use pipefisher_optim::{
    Kfac, KfacConfig, KfacModel, Lamb, LrSchedule, Optimizer, Shampoo, ShampooConfig, StateSnapshot,
};
use pipefisher_tensor::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which optimizer a [`Trainer`] runs — the paper's two contenders.
#[derive(Debug, Clone)]
pub enum OptimizerChoice {
    /// NVLAMB (the baseline).
    Lamb {
        /// Decoupled weight decay (paper: 0.01).
        weight_decay: f64,
    },
    /// K-FAC preconditioning on top of NVLAMB (the paper's "K-FAC").
    Kfac {
        /// Decoupled weight decay of the underlying LAMB.
        weight_decay: f64,
        /// K-FAC hyperparameters; set `curvature_interval`/
        /// `inversion_interval` to the refresh interval PipeFisher achieves
        /// for the target pipeline (the whole point of the paper: the bubble
        /// schedule determines how fresh the curvature can be).
        kfac: KfacConfig,
    },
    /// Shampoo (paper §5's other bubble-fillable second-order method).
    Shampoo {
        /// Shampoo hyperparameters; `root_interval` plays the role of the
        /// PipeFisher refresh interval.
        shampoo: ShampooConfig,
    },
}

/// A completed training run's loss history and per-step metrics.
#[derive(Debug, Clone)]
pub struct TrainRun {
    /// Per-step total pretraining loss (MLM + NSP), as Figure 6 plots.
    pub losses: Vec<f64>,
    /// Optimizer label for reports.
    pub label: String,
    /// One [`StepMetrics`] row per step, in step order (serialize with
    /// [`crate::to_jsonl`]).
    pub metrics: Vec<StepMetrics>,
}

impl TrainRun {
    /// Centered moving average with the given window (the stand-in for the
    /// paper's Butterworth `filtfilt` smoothing).
    pub fn smoothed(&self, window: usize) -> Vec<f64> {
        let w = window.max(1);
        let n = self.losses.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(w / 2);
                let hi = (i + w / 2 + 1).min(n);
                self.losses[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// Final smoothed loss.
    pub fn final_loss(&self, window: usize) -> f64 {
        *self.smoothed(window).last().expect("empty run")
    }

    /// First step whose smoothed loss reaches `target` and stays there for
    /// the rest of the window-smoothed curve's local neighbourhood; `None`
    /// if never reached. Mirrors the paper's "steps for K-FAC to reach
    /// NVLAMB's final loss" extraction (ignoring early fluctuations).
    pub fn steps_to_reach(&self, target: f64, window: usize) -> Option<usize> {
        let sm = self.smoothed(window);
        sm.iter().position(|&l| l <= target)
    }
}

/// Extra training-loop options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Micro-batch gradient accumulation: each optimizer step averages the
    /// gradients of this many sampled batches (the paper's App. B.2
    /// simulates its 8,192 mini-batch on 32 GPUs this way).
    pub accumulation_steps: usize,
    /// Asynchronous-pipeline emulation (App. C.1): apply the gradient
    /// computed this many steps *ago* (`θ_{t+1} = θ_t − η·g_{t−m}`). Zero =
    /// synchronous. Only meaningful for first-order optimizers.
    pub grad_delay: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            accumulation_steps: 1,
            grad_delay: 0,
        }
    }
}

/// Runs BERT pretraining on synthetic data with a chosen optimizer.
#[derive(Debug)]
pub struct Trainer {
    sampler: BatchSampler,
    batch_size: usize,
    pub(crate) schedule: LrSchedule,
    data_rng: StdRng,
}

impl Trainer {
    /// Creates a trainer drawing `batch_size`-sequence batches.
    pub fn new(sampler: BatchSampler, batch_size: usize, schedule: LrSchedule, seed: u64) -> Self {
        Trainer {
            sampler,
            batch_size,
            schedule,
            data_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Trains `model` for `steps` steps with gradient accumulation and/or
    /// stale-gradient application.
    ///
    /// # Panics
    ///
    /// Panics if `opts.accumulation_steps == 0`, or if `grad_delay > 0` is
    /// combined with the K-FAC optimizer (stale-gradient emulation models
    /// asynchronous *first-order* pipelines, App. C.1).
    pub fn run_with_options(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        opts: &TrainOptions,
    ) -> TrainRun {
        assert!(
            opts.accumulation_steps > 0,
            "accumulation_steps must be positive"
        );
        if opts.grad_delay > 0 {
            assert!(
                matches!(choice, OptimizerChoice::Lamb { .. }),
                "grad_delay models asynchronous first-order pipelines; use Lamb"
            );
            return self.run_stale_lamb(model, choice, steps, opts);
        }
        self.run_accumulated(model, choice, steps, opts.accumulation_steps)
    }

    /// Samples the step's micro-batches up front (serially, preserving the
    /// data RNG stream) with the forward context each one should use.
    pub(crate) fn sample_micro_batches(
        &mut self,
        accumulation: usize,
        capture_last: bool,
    ) -> Vec<(PreTrainingBatch, ForwardCtx)> {
        (0..accumulation)
            .map(|acc| {
                // Capture curvature statistics on the last micro-batch of a
                // refresh step (a fresh sample of the same distribution, as
                // PipeFisher's per-step curvature uses one step's
                // micro-batches).
                let ctx = if capture_last && acc == accumulation - 1 {
                    ForwardCtx::train_with_capture()
                } else {
                    ForwardCtx::train()
                };
                (
                    self.sampler.sample(self.batch_size, &mut self.data_rng),
                    ctx,
                )
            })
            .collect()
    }

    /// One optimizer-agnostic accumulated-step loop: sample → accumulate
    /// micro-batch gradients → scale to the mean → update, with trace spans
    /// and a [`StepMetrics`] row per step. `accumulation == 1` reproduces
    /// the plain per-step loop bitwise (`scale_inplace(1.0)` is exact).
    fn run_accumulated(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        accumulation: usize,
    ) -> TrainRun {
        self.run_accumulated_ckpt(model, choice, steps, accumulation, None)
            .expect("no checkpointing requested, so no checkpoint errors")
    }

    /// The accumulated loop with optional checkpoint save/resume. With
    /// `ckpt == None` (or an empty [`CheckpointOptions`]) the loop body is
    /// unchanged, so plain runs are bitwise identical to the historical
    /// ones.
    fn run_accumulated_ckpt(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        accumulation: usize,
        ckpt: Option<&CheckpointOptions>,
    ) -> Result<TrainRun, CkptError> {
        let scale = 1.0 / accumulation as f64;
        let mut opt = AnyOpt::new(choice);
        let mut start_step = 0usize;
        let store = match ckpt.and_then(|c| c.save.as_ref()) {
            Some(policy) => Some((policy, policy.open()?)),
            None => None,
        };
        if let Some(resume) = ckpt.and_then(|c| c.resume.as_ref()) {
            let path = resolve_resume(resume)?;
            let tc = TrainCheckpoint::load(&path)?;
            start_step =
                self.restore_checkpoint(&tc, &mut opt, |bytes| model.import_params(bytes))?;
        }
        let mut losses = Vec::with_capacity(steps.saturating_sub(start_step));
        let mut recorder = MetricsRecorder::default();
        for step in start_step..steps {
            let _step_span = pipefisher_trace::span("step", "train");
            let alloc_before = pipefisher_trace::alloc_snapshot();
            model.zero_grad();
            let refresh = opt.refreshes_curvature_at(step);
            let t0 = Instant::now();
            let batches = {
                let _span = pipefisher_trace::span("sample", "train");
                self.sample_micro_batches(accumulation, refresh)
            };
            let t1 = Instant::now();
            let loss = {
                let _span = pipefisher_trace::span("forward_backward", "train");
                let total: f64 = accumulate_micro_batches(model, &batches).iter().sum();
                total * scale
            };
            model.visit_params(&mut |p| p.grad.scale_inplace(scale));
            let t2 = Instant::now();
            losses.push(loss);
            pipefisher_trace::counter("loss", loss);
            let grad_norm = global_grad_norm(model);
            let lr = self.schedule.lr_at(step);
            let t3 = Instant::now();
            {
                let _span = pipefisher_trace::span("optimizer_step", "train");
                opt.apply(model, lr);
            }
            let t4 = Instant::now();
            let mut ckpt_write_ms = 0.0;
            if let Some((policy, dir)) = &store {
                if policy.due(step + 1, steps) {
                    let tw = Instant::now();
                    let snap = self
                        .capture_checkpoint((step + 1) as u64, &opt, model.export_params())
                        .to_snapshot();
                    dir.save((step + 1) as u64, &snap)?;
                    ckpt_write_ms = tw.elapsed().as_secs_f64() * 1e3;
                }
            }
            recorder.record(
                step,
                loss,
                grad_norm,
                lr,
                PhaseTimings {
                    data_ms: (t1 - t0).as_secs_f64() * 1e3,
                    forward_backward_ms: (t2 - t1).as_secs_f64() * 1e3,
                    optimizer_ms: (t4 - t3).as_secs_f64() * 1e3,
                },
                refresh,
                opt.inverts_at(step),
                pipefisher_trace::alloc_snapshot().since(&alloc_before),
                ckpt_write_ms,
            );
        }
        Ok(TrainRun {
            losses,
            label: opt.label().to_string(),
            metrics: recorder.into_rows(),
        })
    }

    fn run_stale_lamb(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        opts: &TrainOptions,
    ) -> TrainRun {
        let OptimizerChoice::Lamb { weight_decay } = choice else {
            unreachable!()
        };
        let mut opt = Lamb::new(*weight_decay);
        let mut losses = Vec::with_capacity(steps);
        let mut recorder = MetricsRecorder::default();
        // Queue of delayed gradients: (name → grad) snapshots.
        let mut queue: std::collections::VecDeque<Vec<pipefisher_tensor::Matrix>> =
            std::collections::VecDeque::new();
        for step in 0..steps {
            let _step_span = pipefisher_trace::span("step", "train");
            let alloc_before = pipefisher_trace::alloc_snapshot();
            let t0 = Instant::now();
            let batch = {
                let _span = pipefisher_trace::span("sample", "train");
                self.sampler.sample(self.batch_size, &mut self.data_rng)
            };
            let t1 = Instant::now();
            model.zero_grad();
            let out = {
                let _span = pipefisher_trace::span("forward_backward", "train");
                model.train_step(&batch, &ForwardCtx::train())
            };
            let t2 = Instant::now();
            losses.push(out.total_loss);
            pipefisher_trace::counter("loss", out.total_loss);
            // Snapshot the fresh gradient, then apply the one from m steps ago.
            let mut snapshot = Vec::new();
            model.visit_params(&mut |p| snapshot.push(p.grad.clone()));
            queue.push_back(snapshot);
            let mut lr = 0.0;
            let t3 = Instant::now();
            if queue.len() > opts.grad_delay {
                let _span = pipefisher_trace::span("optimizer_step", "train");
                let stale = queue.pop_front().expect("queue nonempty");
                let mut idx = 0;
                model.visit_params(&mut |p| {
                    p.grad = stale[idx].clone();
                    idx += 1;
                });
                lr = self.schedule.lr_at(step);
                opt.begin_step();
                model.visit_params(&mut |p| opt.step_param(p, lr));
            }
            let t4 = Instant::now();
            // Gradient norm of the gradient the optimizer consumed (the
            // stale one once the queue is full; the fresh one before).
            let grad_norm = global_grad_norm(model);
            recorder.record(
                step,
                out.total_loss,
                grad_norm,
                lr,
                PhaseTimings {
                    data_ms: (t1 - t0).as_secs_f64() * 1e3,
                    forward_backward_ms: (t2 - t1).as_secs_f64() * 1e3,
                    optimizer_ms: (t4 - t3).as_secs_f64() * 1e3,
                },
                false,
                false,
                pipefisher_trace::alloc_snapshot().since(&alloc_before),
                0.0,
            );
        }
        TrainRun {
            losses,
            label: format!("NVLAMB (grad delay {})", opts.grad_delay),
            metrics: recorder.into_rows(),
        }
    }

    /// Trains `model` for `steps` steps, returning the loss history.
    ///
    /// Runs the accumulated loop with a single micro-batch per step, which
    /// is bitwise identical to the historical dedicated per-step loop (the
    /// mean-scaling multiplies by exactly 1.0).
    pub fn run(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
    ) -> TrainRun {
        self.run_accumulated(model, choice, steps, 1)
    }

    /// Like [`Trainer::run_with_options`] with crash-safe checkpointing:
    /// saves per `ckpt.save` (atomically, after the optimizer update of a
    /// due step) and/or resumes from `ckpt.resume` before the first step.
    ///
    /// A resumed run is *bitwise-invisible*: its per-step losses and final
    /// parameters equal the corresponding tail of an uninterrupted run,
    /// because the checkpoint captures every piece of mutable loop state —
    /// parameters, optimizer state (including the K-FAC/Shampoo cadence
    /// counters), and the data-RNG stream. The returned [`TrainRun`] covers
    /// steps `next_step..steps` (its metric rows carry absolute step
    /// indices).
    ///
    /// # Errors
    ///
    /// Any checkpoint I/O, validation, or compatibility failure (corrupt
    /// file, shape mismatch, optimizer mismatch) is a structured
    /// [`CkptError`]; nothing is trained on a partially restored state.
    ///
    /// # Panics
    ///
    /// Panics if `opts.accumulation_steps == 0` or `opts.grad_delay > 0`
    /// (stale-gradient emulation keeps an in-flight gradient queue that is
    /// deliberately not checkpointable).
    pub fn run_checkpointed(
        &mut self,
        model: &mut BertForPreTraining,
        choice: &OptimizerChoice,
        steps: usize,
        opts: &TrainOptions,
        ckpt: &CheckpointOptions,
    ) -> Result<TrainRun, CkptError> {
        assert!(
            opts.accumulation_steps > 0,
            "accumulation_steps must be positive"
        );
        assert!(
            opts.grad_delay == 0,
            "checkpointing does not support grad_delay (in-flight stale-gradient queue)"
        );
        self.run_accumulated_ckpt(model, choice, steps, opts.accumulation_steps, Some(ckpt))
    }

    /// Raw xoshiro state of the data RNG — the complete data-loader cursor,
    /// since batch sampling is a pure function of this stream.
    pub fn rng_state(&self) -> [u64; 4] {
        self.data_rng.state()
    }

    /// Restores the data-RNG stream captured by [`Trainer::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.data_rng = StdRng::from_state(state);
    }

    /// Builds the full checkpoint for a loop about to run step `next_step`,
    /// given the already-exported model section.
    pub(crate) fn capture_checkpoint(
        &self,
        next_step: u64,
        opt: &AnyOpt,
        model: Vec<u8>,
    ) -> TrainCheckpoint {
        TrainCheckpoint {
            next_step,
            optimizer_label: opt.label().to_string(),
            model,
            optim: opt.export_state(),
            rng: self.rng_state(),
        }
    }

    /// Restores a loaded checkpoint into this trainer and `opt`, importing
    /// the model section through `import_model` (monolithic or staged).
    /// Returns the step index to resume the loop at.
    pub(crate) fn restore_checkpoint(
        &mut self,
        tc: &TrainCheckpoint,
        opt: &mut AnyOpt,
        import_model: impl FnOnce(&[u8]) -> Result<(), CkptError>,
    ) -> Result<usize, CkptError> {
        if tc.optimizer_label != opt.label() {
            return Err(CkptError::OptimizerMismatch {
                expected: opt.label().to_string(),
                found: tc.optimizer_label.clone(),
            });
        }
        import_model(&tc.model)?;
        opt.import_state(&tc.optim)?;
        self.set_rng_state(tc.rng);
        Ok(tc.next_step as usize)
    }
}

/// Global L2 norm over every parameter gradient.
fn global_grad_norm(model: &mut BertForPreTraining) -> f64 {
    let mut sq = 0.0;
    model.visit_params(&mut |p| {
        sq += p.grad.as_slice().iter().map(|v| v * v).sum::<f64>();
    });
    sq.sqrt()
}

/// The trainer's optimizer dispatch: one enum instead of three copies of
/// the step loop, carrying what the metrics recorder needs (labels and the
/// K-FAC refresh cadence). Crate-visible so the pipeline executor reuses
/// the identical dispatch (and K-FAC state plumbing) for its steps.
pub(crate) enum AnyOpt {
    Lamb(Lamb),
    Kfac { opt: Kfac<Lamb>, config: KfacConfig },
    Shampoo(Shampoo),
}

impl AnyOpt {
    pub(crate) fn new(choice: &OptimizerChoice) -> AnyOpt {
        match choice {
            OptimizerChoice::Lamb { weight_decay } => AnyOpt::Lamb(Lamb::new(*weight_decay)),
            OptimizerChoice::Kfac { weight_decay, kfac } => AnyOpt::Kfac {
                opt: Kfac::new(kfac.clone(), Lamb::new(*weight_decay)),
                config: kfac.clone(),
            },
            OptimizerChoice::Shampoo { shampoo } => AnyOpt::Shampoo(Shampoo::new(shampoo.clone())),
        }
    }

    pub(crate) fn label(&self) -> &'static str {
        match self {
            AnyOpt::Lamb(_) => "NVLAMB",
            AnyOpt::Kfac { .. } => "K-FAC",
            AnyOpt::Shampoo(_) => "Shampoo",
        }
    }

    /// Whether step `step` captures activations/errors and folds them into
    /// the Kronecker factors (what PipeFisher's bubble schedule computes).
    pub(crate) fn refreshes_curvature_at(&self, step: usize) -> bool {
        match self {
            AnyOpt::Kfac { config, .. } => {
                (step as u64).is_multiple_of(config.curvature_interval as u64)
            }
            _ => false,
        }
    }

    /// Whether step `step` recomputes the damped factor inverses (mirrors
    /// [`Kfac::step`]'s internal cadence).
    pub(crate) fn inverts_at(&self, step: usize) -> bool {
        match self {
            AnyOpt::Kfac { config, .. } => {
                (step as u64).is_multiple_of(config.inversion_interval as u64)
            }
            _ => false,
        }
    }

    /// Applies one optimizer update to the accumulated gradients. Takes the
    /// model through [`KfacModel`] so the pipeline executor can drive the
    /// same dispatch on a staged model; for `BertForPreTraining` the
    /// `visit_all_params` traversal is `visit_params`, so the monolithic
    /// trainer's behaviour is bitwise unchanged.
    fn apply(&mut self, model: &mut dyn KfacModel, lr: f64) {
        match self {
            AnyOpt::Lamb(opt) => {
                opt.begin_step();
                model.visit_all_params(&mut |p| opt.step_param(p, lr));
            }
            AnyOpt::Kfac { opt, .. } => opt.step(model, lr),
            AnyOpt::Shampoo(opt) => {
                opt.begin_step();
                model.visit_all_params(&mut |p| opt.step_param(p, lr));
            }
        }
    }

    /// Like [`AnyOpt::apply`], but assumes the K-FAC curvature folds and
    /// inverse refreshes for this step already ran externally (in pipeline
    /// bubbles) against the optimizer's loaned-out layer states. For
    /// NVLAMB/Shampoo there is no external work, so this is `apply`.
    pub(crate) fn apply_preconditioned(&mut self, model: &mut dyn KfacModel, lr: f64) {
        match self {
            AnyOpt::Kfac { opt, .. } => opt.step_preconditioned(model, lr),
            _ => self.apply(model, lr),
        }
    }

    /// The wrapped K-FAC optimizer, when this is the K-FAC arm — the
    /// executor loans layer states out of it and returns them each refresh
    /// step.
    pub(crate) fn kfac_mut(&mut self) -> Option<&mut Kfac<Lamb>> {
        match self {
            AnyOpt::Kfac { opt, .. } => Some(opt),
            _ => None,
        }
    }

    /// Serializes the wrapped optimizer's mutable state, tagged by kind so
    /// a checkpoint can never be restored into the wrong optimizer.
    pub(crate) fn export_state(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        let (tag, blob) = match self {
            AnyOpt::Lamb(o) => (0u8, o.export_state()),
            AnyOpt::Kfac { opt, .. } => (1u8, opt.export_state()),
            AnyOpt::Shampoo(o) => (2u8, o.export_state()),
        };
        w.u8(tag);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&blob);
        bytes
    }

    /// Restores state captured by [`AnyOpt::export_state`]. A tag for a
    /// different optimizer kind is [`CkptError::OptimizerMismatch`].
    pub(crate) fn import_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = SectionReader::new("optim", bytes);
        let tag = r.u8()?;
        let found = match tag {
            0 => "NVLAMB",
            1 => "K-FAC",
            2 => "Shampoo",
            other => {
                return Err(CkptError::Malformed {
                    detail: format!("unknown optimizer tag {other} in optim section"),
                })
            }
        };
        if found != self.label() {
            return Err(CkptError::OptimizerMismatch {
                expected: self.label().to_string(),
                found: found.to_string(),
            });
        }
        let blob = &bytes[1..];
        match self {
            AnyOpt::Lamb(o) => o.import_state(blob),
            AnyOpt::Kfac { opt, .. } => opt.import_state(blob),
            AnyOpt::Shampoo(o) => o.import_state(blob),
        }
    }
}

/// Runs one step's micro-batches, accumulating gradients into `model`, and
/// returns each micro-batch's total loss in micro-batch index order.
///
/// With a single worker lane (`PIPEFISHER_THREADS=1`, one available core, or
/// a single micro-batch) this is exactly the serial loop the trainer has
/// always run, so single-threaded results are bitwise unchanged. With more
/// lanes the micro-batches split into contiguous blocks, each block runs on
/// a clone of `model`, and the replica gradients merge back into `model` in
/// block order via `axpy(1.0, ·)` (a ×1.0 multiply is exact, so the merge
/// adds no rounding beyond its summation order). Runs are deterministic for
/// a fixed thread count, but the block-wise gradient association differs
/// from the serial order, so multi-thread runs are not bitwise equal to
/// single-thread runs. Dropout must be inactive (p = 0, as the pretraining
/// reproduction uses) — active dropout would draw from per-replica RNG
/// streams and diverge from the serial stream.
fn accumulate_micro_batches(
    model: &mut BertForPreTraining,
    batches: &[(PreTrainingBatch, ForwardCtx)],
) -> Vec<f64> {
    let n = batches.len();
    let lanes = par::max_threads().min(n);
    if lanes <= 1 {
        return batches
            .iter()
            .map(|(batch, ctx)| model.train_step(batch, ctx).total_loss)
            .collect();
    }
    // Lane w runs micro-batches [bounds[w], bounds[w+1]). Lane 0 uses
    // `model` itself; lanes 1.. use clones taken now, after `zero_grad`, so
    // every replica's grads start at zero and end holding its block's sum.
    let bounds: Vec<usize> = (0..=lanes).map(|w| w * n / lanes).collect();
    let mut replicas: Vec<BertForPreTraining> = (1..lanes).map(|_| model.clone()).collect();
    let mut losses = vec![0.0; n];
    {
        let mut lane_models: Vec<&mut BertForPreTraining> = Vec::with_capacity(lanes);
        lane_models.push(&mut *model);
        lane_models.extend(replicas.iter_mut());
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(lanes);
        let mut loss_rest: &mut [f64] = &mut losses;
        for (w, m) in lane_models.into_iter().enumerate() {
            let (start, end) = (bounds[w], bounds[w + 1]);
            let (block_losses, rest) = loss_rest.split_at_mut(end - start);
            loss_rest = rest;
            let block = &batches[start..end];
            tasks.push(Box::new(move || {
                for ((batch, ctx), slot) in block.iter().zip(block_losses.iter_mut()) {
                    *slot = m.train_step(batch, ctx).total_loss;
                }
            }));
        }
        par::run_tasks(tasks);
    }
    // Merge replica gradients into the primary model in block order.
    for replica in replicas.iter_mut() {
        let mut grads: Vec<pipefisher_tensor::Matrix> = Vec::new();
        replica.visit_params(&mut |p| grads.push(std::mem::take(&mut p.grad)));
        let mut idx = 0;
        model.visit_params(&mut |p| {
            p.grad.axpy(1.0, &grads[idx]);
            idx += 1;
        });
    }
    // K-FAC statistics captured by a replica's block must move to the
    // primary model (lane 0's captures already live there).
    for (w, replica) in replicas.iter_mut().enumerate() {
        let block = &batches[bounds[w + 1]..bounds[w + 2]];
        if !block.iter().any(|(_, ctx)| ctx.capture_kfac) {
            continue;
        }
        let mut stats = Vec::new();
        replica.visit_linears(&mut |l| stats.push(std::mem::take(l.kfac_stats_mut())));
        let mut idx = 0;
        model.visit_linears(&mut |l| {
            *l.kfac_stats_mut() = std::mem::take(&mut stats[idx]);
            idx += 1;
        });
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticLanguage;
    use pipefisher_nn::BertConfig;

    fn quick_setup(seed: u64) -> (Trainer, BertForPreTraining) {
        let lang = SyntheticLanguage::new(36, 2, 4, 11);
        let sampler = BatchSampler::new(lang, 16);
        let trainer = Trainer::new(sampler, 8, LrSchedule::Constant(5e-3), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = BertForPreTraining::new(BertConfig::tiny(36, 16), 0.0, &mut rng);
        (trainer, model)
    }

    #[test]
    fn lamb_training_reduces_loss() {
        let (mut trainer, mut model) = quick_setup(1);
        let run = trainer.run(
            &mut model,
            &OptimizerChoice::Lamb { weight_decay: 0.01 },
            30,
        );
        assert_eq!(run.losses.len(), 30);
        let first = run.smoothed(5)[2];
        let last = run.final_loss(5);
        assert!(last < first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn kfac_training_reduces_loss() {
        let (mut trainer, mut model) = quick_setup(2);
        let choice = OptimizerChoice::Kfac {
            weight_decay: 0.01,
            kfac: KfacConfig {
                damping: 1e-2,
                curvature_interval: 2,
                inversion_interval: 2,
                ..Default::default()
            },
        };
        let run = trainer.run(&mut model, &choice, 30);
        let first = run.smoothed(5)[2];
        let last = run.final_loss(5);
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert_eq!(run.label, "K-FAC");
    }

    #[test]
    fn shampoo_training_reduces_loss() {
        let (mut trainer, mut model) = quick_setup(9);
        let choice = OptimizerChoice::Shampoo {
            shampoo: pipefisher_optim::ShampooConfig {
                root_interval: 2,
                ..Default::default()
            },
        };
        let run = trainer.run(&mut model, &choice, 30);
        assert_eq!(run.label, "Shampoo");
        let first = run.smoothed(5)[2];
        let last = run.final_loss(5);
        assert!(last < first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn smoothing_and_target_extraction() {
        let run = TrainRun {
            losses: vec![5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0],
            label: "x".into(),
            metrics: Vec::new(),
        };
        let sm = run.smoothed(3);
        assert_eq!(sm.len(), 7);
        assert!(sm[1] <= 4.0 + 1e-12);
        assert_eq!(run.steps_to_reach(2.5, 1), Some(3));
        assert_eq!(run.steps_to_reach(0.5, 1), None);
    }

    #[test]
    fn accumulation_matches_big_batch_direction() {
        // Accumulating 2 batches of 8 behaves like (and learns like) a
        // batch of 16: losses drop and stay finite.
        let (mut trainer, mut model) = quick_setup(4);
        let run = trainer.run_with_options(
            &mut model,
            &OptimizerChoice::Lamb { weight_decay: 0.01 },
            20,
            &crate::TrainOptions {
                accumulation_steps: 2,
                grad_delay: 0,
            },
        );
        assert_eq!(run.losses.len(), 20);
        assert!(run.losses.iter().all(|l| l.is_finite()));
        assert!(run.final_loss(5) < run.smoothed(5)[2]);
    }

    #[test]
    fn accumulated_kfac_also_learns() {
        let (mut trainer, mut model) = quick_setup(5);
        let choice = OptimizerChoice::Kfac {
            weight_decay: 0.01,
            kfac: KfacConfig {
                damping: 1e-2,
                curvature_interval: 2,
                inversion_interval: 2,
                ..Default::default()
            },
        };
        let run = trainer.run_with_options(
            &mut model,
            &choice,
            20,
            &crate::TrainOptions {
                accumulation_steps: 2,
                grad_delay: 0,
            },
        );
        assert!(run.final_loss(5) < run.smoothed(5)[2]);
    }

    #[test]
    fn stale_gradients_still_learn_but_trail_fresh() {
        // App. C.1: asynchronous pipelines trade bubble-free throughput for
        // stale gradients. A modest delay must still converge…
        let (mut t_fresh, mut m_fresh) = quick_setup(6);
        let fresh = t_fresh.run(
            &mut m_fresh,
            &OptimizerChoice::Lamb { weight_decay: 0.0 },
            40,
        );
        let (mut t_stale, mut m_stale) = quick_setup(6);
        let stale = t_stale.run_with_options(
            &mut m_stale,
            &OptimizerChoice::Lamb { weight_decay: 0.0 },
            40,
            &crate::TrainOptions {
                accumulation_steps: 1,
                grad_delay: 4,
            },
        );
        assert!(
            stale.final_loss(7) < stale.smoothed(7)[3],
            "stale run did not learn"
        );
        // …but not faster than the synchronous baseline.
        assert!(stale.final_loss(7) >= fresh.final_loss(7) - 0.05);
        assert!(stale.label.contains("delay 4"));
    }

    #[test]
    #[should_panic(expected = "asynchronous first-order")]
    fn stale_kfac_is_rejected() {
        let (mut trainer, mut model) = quick_setup(7);
        let choice = OptimizerChoice::Kfac {
            weight_decay: 0.0,
            kfac: KfacConfig::default(),
        };
        let _ = trainer.run_with_options(
            &mut model,
            &choice,
            5,
            &crate::TrainOptions {
                accumulation_steps: 1,
                grad_delay: 2,
            },
        );
    }

    /// Serializes tests that mutate the process-wide worker-pool settings.
    fn par_settings_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(|| std::sync::Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn parallel_accumulation_first_step_loss_matches_serial() {
        let _guard = par_settings_lock();
        // Within one step no parameters change between micro-batches, so
        // every lane computes exactly the loss the serial loop would, and
        // the index-order sum makes step 0's loss bitwise equal across
        // thread counts. (Later steps may drift in the last bits: the
        // block-order gradient merge changes the FP association.)
        let run_at = |threads: usize| {
            par::set_max_threads(threads);
            let (mut trainer, mut model) = quick_setup(12);
            let run = trainer.run_with_options(
                &mut model,
                &OptimizerChoice::Lamb { weight_decay: 0.01 },
                1,
                &crate::TrainOptions {
                    accumulation_steps: 4,
                    grad_delay: 0,
                },
            );
            par::set_max_threads(0);
            run.losses[0]
        };
        let serial = run_at(1);
        let parallel = run_at(2);
        assert!(
            serial.to_bits() == parallel.to_bits(),
            "step-0 loss differs: {serial:?} vs {parallel:?}"
        );
    }

    #[test]
    fn parallel_accumulated_runs_are_deterministic() {
        let _guard = par_settings_lock();
        // Two identical multi-step accumulated runs at a fixed thread count
        // must agree exactly, K-FAC capture included.
        let run_once = || {
            let (mut trainer, mut model) = quick_setup(13);
            let choice = OptimizerChoice::Kfac {
                weight_decay: 0.01,
                kfac: KfacConfig {
                    damping: 1e-2,
                    curvature_interval: 2,
                    inversion_interval: 2,
                    ..Default::default()
                },
            };
            trainer.run_with_options(
                &mut model,
                &choice,
                6,
                &crate::TrainOptions {
                    accumulation_steps: 3,
                    grad_delay: 0,
                },
            )
        };
        par::set_max_threads(2);
        let r1 = run_once();
        let r2 = run_once();
        par::set_max_threads(0);
        assert_eq!(r1.losses, r2.losses);
        assert!(r1.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn metrics_rows_track_steps_and_refreshes() {
        let (mut trainer, mut model) = quick_setup(3);
        let choice = OptimizerChoice::Kfac {
            weight_decay: 0.01,
            kfac: KfacConfig {
                damping: 1e-2,
                curvature_interval: 2,
                inversion_interval: 4,
                ..Default::default()
            },
        };
        let run = trainer.run(&mut model, &choice, 5);
        assert_eq!(run.metrics.len(), 5);
        for (i, m) in run.metrics.iter().enumerate() {
            assert_eq!(m.step, i);
            assert_eq!(m.loss, run.losses[i]);
            assert!(m.loss.is_finite() && m.grad_norm.is_finite());
            assert!(m.grad_norm >= 0.0 && m.lr > 0.0);
            assert!(m.data_ms >= 0.0 && m.forward_backward_ms >= 0.0 && m.optimizer_ms >= 0.0);
            // Curvature every 2 steps, inversion every 4.
            assert_eq!(m.curvature_refreshed, i % 2 == 0);
        }
        assert_eq!(run.metrics[4].curvature_refreshes, 3); // steps 0, 2, 4
        assert_eq!(run.metrics[4].inversions, 2); // steps 0, 4
        let jsonl = crate::to_jsonl(&run.metrics);
        assert_eq!(jsonl.lines().count(), 5);
    }

    #[test]
    fn lamb_metrics_have_no_kfac_refreshes() {
        let (mut trainer, mut model) = quick_setup(8);
        let run = trainer.run(&mut model, &OptimizerChoice::Lamb { weight_decay: 0.01 }, 3);
        assert!(run.metrics.iter().all(|m| m.curvature_refreshes == 0));
        assert!(run.metrics.iter().all(|m| m.inversions == 0));
    }

    #[test]
    fn runs_are_deterministic() {
        let (mut t1, mut m1) = quick_setup(7);
        let (mut t2, mut m2) = quick_setup(7);
        let r1 = t1.run(&mut m1, &OptimizerChoice::Lamb { weight_decay: 0.0 }, 5);
        let r2 = t2.run(&mut m2, &OptimizerChoice::Lamb { weight_decay: 0.0 }, 5);
        assert_eq!(r1.losses, r2.losses);
    }
}
