//! Pointwise activation layers (GELU, ReLU, Tanh).

use crate::{ForwardCtx, Layer, ParamVisitor};
use pipefisher_tensor::Matrix;

/// Which nonlinearity an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// Gaussian Error Linear Unit (tanh approximation, as in BERT).
    Gelu,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (used by BERT's pooler).
    Tanh,
}

/// A stateless-parameter pointwise activation layer.
///
/// # Example
///
/// ```
/// use pipefisher_nn::{Activation, ActivationKind, ForwardCtx, Layer};
/// use pipefisher_tensor::Matrix;
///
/// let mut relu = Activation::new(ActivationKind::Relu);
/// let y = relu.forward(&Matrix::from_rows(&[&[-1.0, 2.0]]), &ForwardCtx::eval());
/// assert_eq!(y[(0, 0)], 0.0);
/// assert_eq!(y[(0, 1)], 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    input: Option<Matrix>,
}

const SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
const GELU_COEFF: f64 = 0.044715;

/// Tanh-approximate GELU (the BERT variant), exposed as a plain `fn` so it
/// can be fused into a GEMM store epilogue
/// ([`Matrix::matmul_bias_act_into`](pipefisher_tensor::Matrix::matmul_bias_act_into)).
/// Identical to what [`Activation`] applies for [`ActivationKind::Gelu`].
pub fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x)).tanh())
}

fn gelu_grad(x: f64) -> f64 {
    let inner = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * x * x)
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation { kind, input: None }
    }

    /// The nonlinearity this layer applies.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(&self, x: f64) -> f64 {
        match self.kind {
            ActivationKind::Gelu => gelu(x),
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
        }
    }

    /// Takes the cached pre-activation input buffer (empty if this layer
    /// has not run yet), for reuse as fused-GEMM scratch. Callers that
    /// compute the activation inside a GEMM epilogue hand the filled
    /// buffer back via [`Activation::set_cached_input`] so
    /// [`Layer::backward`] still finds the input it differentiates at.
    pub fn take_cached_input(&mut self) -> Matrix {
        self.input.take().unwrap_or_default()
    }

    /// Stores `pre` as this layer's cached forward input, as if
    /// [`Layer::forward`] had just run on it.
    pub fn set_cached_input(&mut self, pre: Matrix) {
        self.input = Some(pre);
    }

    fn grad(&self, x: f64) -> f64 {
        match self.kind {
            ActivationKind::Gelu => gelu_grad(x),
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Matrix, _ctx: &ForwardCtx) -> Matrix {
        self.input = Some(x.clone());
        x.map(|v| self.apply(v))
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let x = self
            .input
            .as_ref()
            .expect("Activation::backward before forward");
        assert_eq!(x.shape(), dout.shape(), "Activation: dout shape");
        x.zip_with(dout, |xv, dv| self.grad(xv) * dv)
    }

    fn visit_params(&mut self, _f: ParamVisitor<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_reference_values() {
        // Values from the tanh-approximate GELU used by BERT.
        assert!((gelu(0.0)).abs() < 1e-12);
        assert!((gelu(1.0) - 0.841192).abs() < 1e-5);
        assert!((gelu(-1.0) + 0.158808).abs() < 1e-5);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let eps = 1e-6;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((gelu_grad(x) - num).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Activation::new(ActivationKind::Relu);
        let x = Matrix::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let _ = relu.forward(&x, &ForwardCtx::train());
        let dx = relu.backward(&Matrix::from_rows(&[&[5.0, 5.0, 5.0]]));
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn tanh_backward() {
        let mut t = Activation::new(ActivationKind::Tanh);
        let x = Matrix::from_rows(&[&[0.7]]);
        let _ = t.forward(&x, &ForwardCtx::train());
        let dx = t.backward(&Matrix::from_rows(&[&[1.0]]));
        let expected = 1.0 - 0.7_f64.tanh().powi(2);
        assert!((dx[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn has_no_params() {
        let mut g = Activation::new(ActivationKind::Gelu);
        assert_eq!(g.num_params(), 0);
    }
}
