//! Multi-head scaled-dot-product self-attention.

use crate::{Dropout, ForwardCtx, Layer, Linear, ParamVisitor};
use pipefisher_tensor::{softmax_scaled_inplace, Matrix};
use rand::Rng;

/// Cached forward state for the attention backward pass.
#[derive(Debug, Clone)]
struct AttnCache {
    batch: usize,
    seq: usize,
    q_out: Matrix,
    k_out: Matrix,
    v_out: Matrix,
    /// Attention probabilities, one `seq × seq` matrix per `(batch, head)`,
    /// indexed `b * n_heads + h` (post-dropout values are what multiply V).
    probs: Vec<Matrix>,
}

/// Per-layer scratch reused across forward/backward passes so the
/// per-`(batch, head)` loops allocate nothing once warmed up. Every buffer
/// is fully overwritten before use.
#[derive(Debug, Clone, Default)]
struct AttnScratch {
    qb: Matrix,
    kb: Matrix,
    vb: Matrix,
    dob: Matrix,
    dp: Matrix,
    dvb: Matrix,
    ds: Matrix,
    dqb: Matrix,
    dkb: Matrix,
    /// Recycled storage for the cache's `probs` vector (backward returns
    /// the emptied vector here; forward withdraws it).
    probs_pool: Vec<Matrix>,
}

/// Multi-head self-attention as in BERT (bidirectional, no causal mask).
///
/// The four projections (`q`, `k`, `v`, `o`) are [`Linear`] layers and
/// therefore participate in K-FAC capture — the paper applies K-FAC to all
/// fully-connected layers of the transformer, which includes these.
///
/// Padding masks are not modeled: the synthetic workloads in this
/// reproduction use fixed-length sequences (matching the paper's fixed
/// `S = 128` Phase-1 setting), so every position attends to every position.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    n_heads: usize,
    d_model: usize,
    d_head: usize,
    causal: bool,
    attn_dropout: Dropout,
    cache: Option<AttnCache>,
    scratch: AttnScratch,
}

impl MultiHeadAttention {
    /// Creates an attention layer with `n_heads` heads over `d_model`
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new(
        name: &str,
        d_model: usize,
        n_heads: usize,
        dropout_p: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            n_heads > 0 && d_model.is_multiple_of(n_heads),
            "MultiHeadAttention: d_model {d_model} not divisible by n_heads {n_heads}"
        );
        MultiHeadAttention {
            q: Linear::new_bert(&format!("{name}.q"), d_model, d_model, rng),
            k: Linear::new_bert(&format!("{name}.k"), d_model, d_model, rng),
            v: Linear::new_bert(&format!("{name}.v"), d_model, d_model, rng),
            o: Linear::new_bert(&format!("{name}.o"), d_model, d_model, rng),
            n_heads,
            d_model,
            d_head: d_model / n_heads,
            causal: false,
            attn_dropout: Dropout::new(dropout_p, 0xA77E_0001),
            cache: None,
            scratch: AttnScratch::default(),
        }
    }

    /// Makes the attention causal (decoder-style: position `i` attends only
    /// to positions `≤ i`), as in OPT's decoder layers (paper Table 3).
    pub fn causal(mut self) -> Self {
        self.causal = true;
        self
    }

    /// Whether this layer applies a causal mask.
    pub fn is_causal(&self) -> bool {
        self.causal
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Model (feature) dimensionality.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Visits the four projection [`Linear`] layers (for K-FAC).
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.q);
        f(&mut self.k);
        f(&mut self.v);
        f(&mut self.o);
    }

    /// Copies the `(rows b·seq.., cols h·d_head..)` sub-block for one
    /// `(batch, head)` pair out of a `(batch·seq) × d_model` matrix into a
    /// caller-provided (re-dimensioned, fully overwritten) output matrix.
    fn head_block_into(
        m: &Matrix,
        b: usize,
        h: usize,
        seq: usize,
        d_head: usize,
        out: &mut Matrix,
    ) {
        out.reset_shape(seq, d_head);
        for s in 0..seq {
            let src = &m.row(b * seq + s)[h * d_head..(h + 1) * d_head];
            out.row_mut(s).copy_from_slice(src);
        }
    }

    /// Shared forward body: projections, per-head scaled-dot-product
    /// attention, and the head concatenation — everything up to (but not
    /// including) the output projection. Caches backward state.
    fn forward_concat(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        assert_eq!(x.cols(), self.d_model, "MultiHeadAttention: input dim");
        let seq = ctx.effective_seq_len(x.rows());
        let batch = x.rows() / seq;
        let (dh, nh) = (self.d_head, self.n_heads);
        let scale = 1.0 / (dh as f64).sqrt();

        let q_out = self.q.forward(x, ctx);
        let k_out = self.k.forward(x, ctx);
        let v_out = self.v.forward(x, ctx);

        let mut scr = std::mem::take(&mut self.scratch);
        let mut concat = Matrix::zeros(x.rows(), self.d_model);
        // Reuse the probs vector backward handed back last step.
        let mut probs = std::mem::take(&mut scr.probs_pool);
        probs.clear();
        probs.reserve(batch * nh);
        for b in 0..batch {
            for h in 0..nh {
                Self::head_block_into(&q_out, b, h, seq, dh, &mut scr.qb);
                Self::head_block_into(&k_out, b, h, seq, dh, &mut scr.kb);
                Self::head_block_into(&v_out, b, h, seq, dh, &mut scr.vb);
                let (qb, kb, vb) = (&scr.qb, &scr.kb, &scr.vb);
                let mut scores = qb.matmul_nt(kb);
                if self.causal {
                    for r in 0..seq {
                        let row = scores.row_mut(r);
                        for x in row.iter_mut().skip(r + 1) {
                            *x = f64::NEG_INFINITY;
                        }
                    }
                }
                // The 1/√d_k scale is folded into the softmax's max/exp
                // pass (one fewer sweep over the seq × seq scores).
                // Masking before scaling is bitwise-neutral: the mask
                // writes -∞, and scale·(-∞) = -∞ for any positive scale.
                softmax_scaled_inplace(&mut scores, scale);
                let scores = self.attn_dropout.forward(&scores, ctx);
                let ob = scores.matmul(vb);
                Self::add_head_block(&mut concat, &ob, b, h, seq, dh);
                probs.push(scores);
            }
        }
        self.scratch = scr;
        self.cache = Some(AttnCache {
            batch,
            seq,
            q_out,
            k_out,
            v_out,
            probs,
        });
        concat
    }

    /// Forward pass returning `Attention(x) + residual`, with the residual
    /// add fused into the output projection's GEMM store epilogue. Bitwise
    /// identical to [`Layer::forward`] plus a separate elementwise add; the
    /// caller routes `dout` both into [`Layer::backward`] and down the
    /// residual branch, exactly as for the unfused sum.
    pub fn forward_residual(&mut self, x: &Matrix, residual: &Matrix, ctx: &ForwardCtx) -> Matrix {
        let concat = self.forward_concat(x, ctx);
        self.o.forward_residual(&concat, residual, ctx)
    }

    /// Adds `block` into the `(b, h)` sub-block of `m`.
    fn add_head_block(
        m: &mut Matrix,
        block: &Matrix,
        b: usize,
        h: usize,
        seq: usize,
        d_head: usize,
    ) {
        for s in 0..seq {
            let dst = &mut m.row_mut(b * seq + s)[h * d_head..(h + 1) * d_head];
            for (d, &x) in dst.iter_mut().zip(block.row(s).iter()) {
                *d += x;
            }
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        let concat = self.forward_concat(x, ctx);
        self.o.forward(&concat, ctx)
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward before forward");
        let AttnCache {
            batch,
            seq,
            q_out,
            k_out,
            v_out,
            mut probs,
        } = cache;
        let (dh, nh) = (self.d_head, self.n_heads);
        let scale = 1.0 / (dh as f64).sqrt();

        let dconcat = self.o.backward(dout);
        let mut scr = std::mem::take(&mut self.scratch);
        let mut dq_full = Matrix::zeros(dconcat.rows(), self.d_model);
        let mut dk_full = Matrix::zeros(dconcat.rows(), self.d_model);
        let mut dv_full = Matrix::zeros(dconcat.rows(), self.d_model);

        for b in 0..batch {
            for h in 0..nh {
                let p = &probs[b * nh + h];
                Self::head_block_into(&dconcat, b, h, seq, dh, &mut scr.dob);
                Self::head_block_into(&q_out, b, h, seq, dh, &mut scr.qb);
                Self::head_block_into(&k_out, b, h, seq, dh, &mut scr.kb);
                Self::head_block_into(&v_out, b, h, seq, dh, &mut scr.vb);
                let AttnScratch {
                    qb,
                    kb,
                    vb,
                    dob,
                    dp,
                    dvb,
                    ds,
                    dqb,
                    dkb,
                    ..
                } = &mut scr;

                // O = P·V  ⇒  dP = dO·Vᵀ, dV = Pᵀ·dO.
                dob.matmul_nt_into(vb, dp);
                p.matmul_tn_into(dob, dvb);
                // Softmax backward row-wise: dS = P ⊙ (dP − rowdot(dP, P)).
                // Dropout on P is folded in because `probs` stores the
                // post-dropout values: dropped entries have P=0 so their dS
                // contribution vanishes, and kept entries carry the 1/keep
                // scale inside P — matching the forward computation exactly
                // for the P·V product. The softmax Jacobian itself is applied
                // to the pre-dropout distribution, which we recover only when
                // dropout is disabled; training with attention dropout in
                // this reproduction uses p = 0 on the scores path (BERT's
                // hidden-state dropout is kept), so backward is exact.
                ds.reset_shape(seq, seq);
                for r in 0..seq {
                    let prow = p.row(r);
                    let dprow = dp.row(r);
                    let dot: f64 = prow.iter().zip(dprow.iter()).map(|(&a, &b)| a * b).sum();
                    let dsrow = ds.row_mut(r);
                    for c in 0..seq {
                        dsrow[c] = prow[c] * (dprow[c] - dot);
                    }
                }
                ds.scale_inplace(scale);
                // S = scale·Q·Kᵀ ⇒ dQ = dS·K, dK = dSᵀ·Q.
                ds.matmul_into(kb, dqb);
                ds.matmul_tn_into(qb, dkb);

                Self::add_head_block(&mut dq_full, dqb, b, h, seq, dh);
                Self::add_head_block(&mut dk_full, dkb, b, h, seq, dh);
                Self::add_head_block(&mut dv_full, dvb, b, h, seq, dh);
            }
        }
        // Hand the emptied probs vector back to the scratch so the next
        // forward reuses its storage.
        probs.clear();
        scr.probs_pool = probs;
        self.scratch = scr;

        let mut dx = self.q.backward(&dq_full);
        dx += &self.k.backward(&dk_full);
        dx += &self.v.backward(&dv_full);
        dx
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.q.visit_params(f);
        self.k.visit_params(f);
        self.v.visit_params(f);
        self.o.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attn(d_model: usize, heads: usize) -> MultiHeadAttention {
        let mut rng = StdRng::seed_from_u64(11);
        MultiHeadAttention::new("attn", d_model, heads, 0.0, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut a = attn(8, 2);
        let x = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(1));
        let y = a.forward(&x, &ForwardCtx::train().with_seq_len(3));
        assert_eq!(y.shape(), (6, 8));
        assert!(y.all_finite());
    }

    #[test]
    fn backward_shape_and_finiteness() {
        let mut a = attn(8, 4);
        let x = init::normal(4, 8, 1.0, &mut StdRng::seed_from_u64(2));
        let _ = a.forward(&x, &ForwardCtx::train().with_seq_len(4));
        let dx = a.backward(&Matrix::full(4, 8, 0.1));
        assert_eq!(dx.shape(), (4, 8));
        assert!(dx.all_finite());
    }

    #[test]
    fn batches_are_independent() {
        // Two identical sequences in one batch must produce identical outputs
        // (no cross-sequence attention leakage).
        let mut a = attn(4, 2);
        let seq = init::normal(3, 4, 1.0, &mut StdRng::seed_from_u64(3));
        let x = Matrix::vcat(&[&seq, &seq]);
        let y = a.forward(&x, &ForwardCtx::eval().with_seq_len(3));
        let y1 = y.slice_rows(0, 3);
        let y2 = y.slice_rows(3, 6);
        assert!((&y1 - &y2).max_abs() < 1e-12);
    }

    #[test]
    fn forward_residual_matches_forward_plus_add_bitwise() {
        let mut a1 = attn(8, 2);
        let mut a2 = attn(8, 2);
        let x = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(7));
        let res = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(8));
        let ctx = ForwardCtx::eval().with_seq_len(3);
        let yf = a1.forward_residual(&x, &res, &ctx);
        let yref = &res + &a2.forward(&x, &ctx);
        for (a, b) in yf.as_slice().iter().zip(yref.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kfac_capture_reaches_projections() {
        let mut a = attn(4, 2);
        let x = init::normal(2, 4, 1.0, &mut StdRng::seed_from_u64(4));
        let _ = a.forward(&x, &ForwardCtx::train_with_capture().with_seq_len(2));
        let dx = Matrix::full(2, 4, 1.0);
        let _ = a.backward(&dx);
        let mut complete = 0;
        a.visit_linears(&mut |l: &mut Linear| {
            if l.kfac_stats().is_complete() {
                complete += 1;
            }
        });
        assert_eq!(complete, 4); // q, k, v, o all captured
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        // Changing a *later* token must not change an earlier position's
        // output under causal attention.
        let mut a = attn(4, 2).causal();
        let x1 = init::normal(4, 4, 1.0, &mut StdRng::seed_from_u64(5));
        let mut x2 = x1.clone();
        for c in 0..4 {
            x2[(3, c)] += 1.0; // perturb the last position only
        }
        let ctx = ForwardCtx::eval().with_seq_len(4);
        let y1 = a.forward(&x1, &ctx);
        let y2 = a.forward(&x2, &ctx);
        for r in 0..3 {
            for c in 0..4 {
                assert!((y1[(r, c)] - y2[(r, c)]).abs() < 1e-12, "pos {r} leaked");
            }
        }
        // …while the perturbed position itself does change.
        assert!((0..4).any(|c| (y1[(3, c)] - y2[(3, c)]).abs() > 1e-9));
    }

    #[test]
    fn causal_backward_is_finite_and_respects_mask() {
        let mut a = attn(4, 2).causal();
        let x = init::normal(4, 4, 1.0, &mut StdRng::seed_from_u64(6));
        let _ = a.forward(&x, &ForwardCtx::train().with_seq_len(4));
        // Gradient flowing only into the FIRST position's output must not
        // touch later inputs except through... actually position 0 attends
        // only to itself, so dx rows 1..3 get contributions only via the
        // k/v projections of position 0's attention — which are masked out.
        let mut dout = Matrix::zeros(4, 4);
        for c in 0..4 {
            dout[(0, c)] = 1.0;
        }
        let dx = a.backward(&dout);
        assert!(dx.all_finite());
        for r in 1..4 {
            for c in 0..4 {
                assert!(dx[(r, c)].abs() < 1e-12, "future input {r} got gradient");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_seq_len_panics() {
        let mut a = attn(4, 2);
        let x = Matrix::zeros(5, 4);
        let _ = a.forward(&x, &ForwardCtx::eval().with_seq_len(3));
    }
}
