//! BERT encoder and the pretraining model (MLM + NSP heads).

use crate::{
    cross_entropy_backward, cross_entropy_loss, Activation, ActivationKind, Embedding, ForwardCtx,
    Layer, LayerNorm, Linear, ParamVisitor,
};
use pipefisher_tensor::Matrix;
use rand::Rng;

/// Hyperparameters of a BERT encoder.
///
/// The presets mirror the paper: `base`/`large` match Table 3's dimensions
/// and are used by the *cost model*; `tiny`/`mini` are CPU-trainable models
/// used by the *convergence* experiments (the scheduling results depend only
/// on dimensions, not weights — see DESIGN.md §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BertConfig {
    /// Vocabulary size (30,522 for real BERT).
    pub vocab_size: usize,
    /// Maximum sequence length for the position table.
    pub max_seq: usize,
    /// Hidden size `d_model`.
    pub d_model: usize,
    /// Feed-forward intermediate size `d_ff`.
    pub d_ff: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Number of encoder blocks `L`.
    pub n_layers: usize,
}

impl BertConfig {
    /// BERT-Base: L=12, d_model=768, d_ff=3072, h=12 (Table 3).
    pub fn base() -> Self {
        BertConfig {
            vocab_size: 30_522,
            max_seq: 512,
            d_model: 768,
            d_ff: 3072,
            n_heads: 12,
            n_layers: 12,
        }
    }

    /// BERT-Large: L=24, d_model=1024, d_ff=4096, h=16 (Table 3).
    pub fn large() -> Self {
        BertConfig {
            vocab_size: 30_522,
            max_seq: 512,
            d_model: 1024,
            d_ff: 4096,
            n_heads: 16,
            n_layers: 24,
        }
    }

    /// A CPU-trainable model for convergence experiments.
    pub fn tiny(vocab_size: usize, max_seq: usize) -> Self {
        BertConfig {
            vocab_size,
            max_seq,
            d_model: 32,
            d_ff: 64,
            n_heads: 2,
            n_layers: 2,
        }
    }

    /// A slightly larger CPU-trainable model.
    pub fn mini(vocab_size: usize, max_seq: usize) -> Self {
        BertConfig {
            vocab_size,
            max_seq,
            d_model: 64,
            d_ff: 128,
            n_heads: 4,
            n_layers: 4,
        }
    }

    /// Parameters per encoder block (attention q/k/v/o + FFN + 2 LayerNorms).
    pub fn params_per_block(&self) -> usize {
        let attn = 4 * (self.d_model * self.d_model + self.d_model);
        let ffn = self.d_model * self.d_ff + self.d_ff + self.d_ff * self.d_model + self.d_model;
        let ln = 2 * 2 * self.d_model;
        attn + ffn + ln
    }
}

/// A stack of transformer encoder blocks over BERT embeddings.
#[derive(Debug, Clone)]
pub struct BertModel {
    config: BertConfig,
    embedding: Embedding,
    blocks: Vec<crate::TransformerBlock>,
}

impl BertModel {
    /// Builds a randomly initialized encoder.
    pub fn new(config: BertConfig, dropout_p: f64, rng: &mut impl Rng) -> Self {
        let embedding = Embedding::new(
            "bert.emb",
            config.vocab_size,
            config.max_seq,
            config.d_model,
            dropout_p,
            rng,
        );
        let blocks = (0..config.n_layers)
            .map(|i| {
                crate::TransformerBlock::new(
                    &format!("bert.block{i}"),
                    config.d_model,
                    config.d_ff,
                    config.n_heads,
                    dropout_p,
                    rng,
                )
            })
            .collect();
        BertModel {
            config,
            embedding,
            blocks,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Encodes token/segment ids into hidden states (`batch·seq × d_model`).
    pub fn forward(
        &mut self,
        token_ids: &[usize],
        segment_ids: &[usize],
        seq: usize,
        ctx: &ForwardCtx,
    ) -> Matrix {
        let ctx = ctx.with_seq_len(seq);
        let mut h = self.embedding.forward(token_ids, segment_ids, seq, &ctx);
        for block in &mut self.blocks {
            h = block.forward(&h, &ctx);
        }
        h
    }

    /// Backpropagates hidden-state gradients through blocks and embeddings.
    pub fn backward(&mut self, dhidden: &Matrix) {
        let mut d = dhidden.clone();
        for block in self.blocks.iter_mut().rev() {
            d = block.backward(&d);
        }
        self.embedding.backward(&d);
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.embedding.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
    }

    /// Visits every K-FAC-eligible [`Linear`] layer in the encoder.
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for block in &mut self.blocks {
            block.visit_linears(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.scale_inplace(0.0));
    }

    /// Total trainable scalar parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

/// A pretraining mini-batch (token-major flattened sequences).
#[derive(Debug, Clone)]
pub struct PreTrainingBatch {
    /// `batch·seq` token ids.
    pub token_ids: Vec<usize>,
    /// `batch·seq` segment ids (0 = sentence A, 1 = sentence B).
    pub segment_ids: Vec<usize>,
    /// `batch·seq` MLM targets ([`crate::IGNORE_INDEX`] on unmasked tokens).
    pub mlm_targets: Vec<i64>,
    /// `batch` NSP targets (0 = consecutive, 1 = random pair).
    pub nsp_targets: Vec<i64>,
    /// Sequence length.
    pub seq: usize,
}

impl PreTrainingBatch {
    /// Number of sequences in the batch.
    pub fn batch_size(&self) -> usize {
        self.token_ids.len().checked_div(self.seq).unwrap_or(0)
    }
}

/// Losses of a pretraining forward pass.
#[derive(Debug, Clone, Copy)]
pub struct PreTrainingOutput {
    /// `mlm_loss + nsp_loss` (the quantity Figure 6 plots).
    pub total_loss: f64,
    /// Masked-language-modeling loss.
    pub mlm_loss: f64,
    /// Next-sentence-prediction loss.
    pub nsp_loss: f64,
    /// Number of masked tokens contributing to the MLM loss.
    pub mlm_count: usize,
}

/// The constituent layers of a [`BertForPreTraining`], exposed so the
/// pipeline-stage partitioner ([`crate::StagedBert`]) can split a model
/// into contiguous stages and reassemble it losslessly.
#[derive(Debug, Clone)]
pub struct PreTrainingParts {
    /// Encoder hyperparameters.
    pub config: BertConfig,
    /// Input embedding stack (always stage 0).
    pub embedding: Embedding,
    /// Encoder blocks, in depth order.
    pub blocks: Vec<crate::TransformerBlock>,
    /// MLM head transform dense layer.
    pub mlm_transform: Linear,
    /// MLM head activation (GELU).
    pub mlm_act: Activation,
    /// MLM head LayerNorm.
    pub mlm_ln: LayerNorm,
    /// MLM vocabulary decoder (K-FAC excluded).
    pub mlm_decoder: Linear,
    /// NSP pooler dense layer.
    pub nsp_pooler: Linear,
    /// NSP activation (tanh).
    pub nsp_act: Activation,
    /// NSP classifier (K-FAC excluded).
    pub nsp_classifier: Linear,
}

/// BERT with the two pretraining heads: masked LM and next-sentence
/// prediction.
///
/// Following the paper (§4): the MLM *transform* dense layer participates in
/// K-FAC, but the final vocabulary-sized *decoder* is excluded ("the
/// Kronecker factor `B_L` will be too large to construct/invert"), as is the
/// NSP classifier which sits on a pooled single token.
#[derive(Debug, Clone)]
pub struct BertForPreTraining {
    bert: BertModel,
    mlm_transform: Linear,
    mlm_act: Activation,
    mlm_ln: LayerNorm,
    mlm_decoder: Linear,
    nsp_pooler: Linear,
    nsp_act: Activation,
    nsp_classifier: Linear,
    seq: usize,
}

impl BertForPreTraining {
    /// Builds the pretraining model.
    pub fn new(config: BertConfig, dropout_p: f64, rng: &mut impl Rng) -> Self {
        let d = config.d_model;
        let v = config.vocab_size;
        let bert = BertModel::new(config, dropout_p, rng);
        let mut mlm_decoder = Linear::new_bert("head.mlm.decoder", d, v, rng);
        mlm_decoder.set_kfac_enabled(false);
        let mut nsp_classifier = Linear::new_bert("head.nsp.classifier", d, 2, rng);
        nsp_classifier.set_kfac_enabled(false);
        BertForPreTraining {
            bert,
            mlm_transform: Linear::new_bert("head.mlm.transform", d, d, rng),
            mlm_act: Activation::new(ActivationKind::Gelu),
            mlm_ln: LayerNorm::new("head.mlm.ln", d),
            mlm_decoder,
            nsp_pooler: Linear::new_bert("head.nsp.pooler", d, d, rng),
            nsp_act: Activation::new(ActivationKind::Tanh),
            nsp_classifier,
            seq: 0,
        }
    }

    /// Decomposes the model into its constituent layers for pipeline-stage
    /// partitioning (see [`crate::StagedBert`]); [`Self::from_parts`] is the
    /// exact inverse.
    pub fn into_parts(self) -> PreTrainingParts {
        let BertForPreTraining {
            bert,
            mlm_transform,
            mlm_act,
            mlm_ln,
            mlm_decoder,
            nsp_pooler,
            nsp_act,
            nsp_classifier,
            seq: _,
        } = self;
        let BertModel {
            config,
            embedding,
            blocks,
        } = bert;
        PreTrainingParts {
            config,
            embedding,
            blocks,
            mlm_transform,
            mlm_act,
            mlm_ln,
            mlm_decoder,
            nsp_pooler,
            nsp_act,
            nsp_classifier,
        }
    }

    /// Reassembles a model from [`Self::into_parts`] output.
    pub fn from_parts(parts: PreTrainingParts) -> Self {
        let PreTrainingParts {
            config,
            embedding,
            blocks,
            mlm_transform,
            mlm_act,
            mlm_ln,
            mlm_decoder,
            nsp_pooler,
            nsp_act,
            nsp_classifier,
        } = parts;
        BertForPreTraining {
            bert: BertModel {
                config,
                embedding,
                blocks,
            },
            mlm_transform,
            mlm_act,
            mlm_ln,
            mlm_decoder,
            nsp_pooler,
            nsp_act,
            nsp_classifier,
            seq: 0,
        }
    }

    /// Borrows the underlying encoder.
    pub fn bert(&self) -> &BertModel {
        &self.bert
    }

    /// Mutably borrows the underlying encoder.
    pub fn bert_mut(&mut self) -> &mut BertModel {
        &mut self.bert
    }

    /// Runs forward + backward for one batch, accumulating all gradients,
    /// and returns the losses.
    pub fn train_step(&mut self, batch: &PreTrainingBatch, ctx: &ForwardCtx) -> PreTrainingOutput {
        self.seq = batch.seq;
        let ctx = ctx.with_seq_len(batch.seq);
        let hidden = self
            .bert
            .forward(&batch.token_ids, &batch.segment_ids, batch.seq, &ctx);
        let batch_size = batch.batch_size();

        // MLM head over all tokens.
        let t = self.mlm_transform.forward(&hidden, &ctx);
        let t = self.mlm_act.forward(&t, &ctx);
        let t = self.mlm_ln.forward(&t, &ctx);
        let mlm_logits = self.mlm_decoder.forward(&t, &ctx);
        let mlm = cross_entropy_loss(&mlm_logits, &batch.mlm_targets);

        // NSP head over the first token of each sequence.
        let mut first_tokens = Matrix::zeros(batch_size, hidden.cols());
        for b in 0..batch_size {
            first_tokens
                .row_mut(b)
                .copy_from_slice(hidden.row(b * batch.seq));
        }
        let p = self.nsp_pooler.forward(&first_tokens, &ctx);
        let p = self.nsp_act.forward(&p, &ctx);
        let nsp_logits = self.nsp_classifier.forward(&p, &ctx);
        let nsp = cross_entropy_loss(&nsp_logits, &batch.nsp_targets);

        // Backward.
        let dmlm_logits = cross_entropy_backward(&mlm_logits, &batch.mlm_targets);
        let dt = self.mlm_decoder.backward(&dmlm_logits);
        let dt = self.mlm_ln.backward(&dt);
        let dt = self.mlm_act.backward(&dt);
        let mut dhidden = self.mlm_transform.backward(&dt);

        let dnsp_logits = cross_entropy_backward(&nsp_logits, &batch.nsp_targets);
        let dp = self.nsp_classifier.backward(&dnsp_logits);
        let dp = self.nsp_act.backward(&dp);
        let dfirst = self.nsp_pooler.backward(&dp);
        for b in 0..batch_size {
            let dst = dhidden.row_mut(b * batch.seq);
            for (d, &g) in dst.iter_mut().zip(dfirst.row(b).iter()) {
                *d += g;
            }
        }

        self.bert.backward(&dhidden);

        PreTrainingOutput {
            total_loss: mlm.loss + nsp.loss,
            mlm_loss: mlm.loss,
            nsp_loss: nsp.loss,
            mlm_count: mlm.count,
        }
    }

    /// Evaluates losses without touching gradients.
    pub fn eval_loss(&mut self, batch: &PreTrainingBatch) -> PreTrainingOutput {
        let ctx = ForwardCtx::eval().with_seq_len(batch.seq);
        let hidden = self
            .bert
            .forward(&batch.token_ids, &batch.segment_ids, batch.seq, &ctx);
        let batch_size = batch.batch_size();
        let t = self.mlm_transform.forward(&hidden, &ctx);
        let t = self.mlm_act.forward(&t, &ctx);
        let t = self.mlm_ln.forward(&t, &ctx);
        let mlm_logits = self.mlm_decoder.forward(&t, &ctx);
        let mlm = cross_entropy_loss(&mlm_logits, &batch.mlm_targets);
        let mut first_tokens = Matrix::zeros(batch_size, hidden.cols());
        for b in 0..batch_size {
            first_tokens
                .row_mut(b)
                .copy_from_slice(hidden.row(b * batch.seq));
        }
        let p = self.nsp_pooler.forward(&first_tokens, &ctx);
        let p = self.nsp_act.forward(&p, &ctx);
        let nsp_logits = self.nsp_classifier.forward(&p, &ctx);
        let nsp = cross_entropy_loss(&nsp_logits, &batch.nsp_targets);
        PreTrainingOutput {
            total_loss: mlm.loss + nsp.loss,
            mlm_loss: mlm.loss,
            nsp_loss: nsp.loss,
            mlm_count: mlm.count,
        }
    }

    /// Visits every trainable parameter (encoder + heads).
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.bert.visit_params(f);
        self.mlm_transform.visit_params(f);
        self.mlm_ln.visit_params(f);
        self.mlm_decoder.visit_params(f);
        self.nsp_pooler.visit_params(f);
        self.nsp_classifier.visit_params(f);
    }

    /// Visits every K-FAC-eligible [`Linear`] layer (encoder + MLM transform
    /// + NSP pooler; the vocab decoder and NSP classifier are excluded).
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.bert.visit_linears(f);
        f(&mut self.mlm_transform);
        f(&mut self.nsp_pooler);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.scale_inplace(0.0));
    }

    /// Total trainable scalar parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IGNORE_INDEX;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch(seq: usize, batch: usize, vocab: usize) -> PreTrainingBatch {
        let n = seq * batch;
        let token_ids: Vec<usize> = (0..n).map(|i| i % vocab).collect();
        let segment_ids: Vec<usize> = (0..n).map(|i| ((i % seq) >= seq / 2) as usize).collect();
        let mlm_targets: Vec<i64> = (0..n)
            .map(|i| {
                if i % 5 == 0 {
                    (i % vocab) as i64
                } else {
                    IGNORE_INDEX
                }
            })
            .collect();
        let nsp_targets: Vec<i64> = (0..batch).map(|b| (b % 2) as i64).collect();
        PreTrainingBatch {
            token_ids,
            segment_ids,
            mlm_targets,
            nsp_targets,
            seq,
        }
    }

    #[test]
    fn train_step_produces_finite_losses_and_grads() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut model = BertForPreTraining::new(BertConfig::tiny(20, 8), 0.0, &mut rng);
        let batch = toy_batch(8, 2, 20);
        let out = model.train_step(&batch, &ForwardCtx::train());
        assert!(out.total_loss.is_finite());
        assert!(out.mlm_loss > 0.0);
        assert!(out.nsp_loss > 0.0);
        let mut any_grad = 0.0;
        model.visit_params(&mut |p| any_grad += p.grad.max_abs());
        assert!(any_grad > 0.0);
    }

    #[test]
    fn initial_mlm_loss_near_uniform() {
        let mut rng = StdRng::seed_from_u64(78);
        let vocab = 50;
        let mut model = BertForPreTraining::new(BertConfig::tiny(vocab, 8), 0.0, &mut rng);
        let batch = toy_batch(8, 4, vocab);
        let out = model.eval_loss(&batch);
        let uniform = (vocab as f64).ln();
        assert!(
            (out.mlm_loss - uniform).abs() < 1.0,
            "mlm {} vs ln V {}",
            out.mlm_loss,
            uniform
        );
    }

    #[test]
    fn kfac_linears_count() {
        let mut rng = StdRng::seed_from_u64(79);
        let mut model = BertForPreTraining::new(BertConfig::tiny(20, 8), 0.0, &mut rng);
        let mut n = 0;
        model.visit_linears(&mut |_l| n += 1);
        // 2 blocks × 6 linears + transform + pooler.
        assert_eq!(n, 14);
    }

    #[test]
    fn decoder_is_kfac_excluded() {
        let mut rng = StdRng::seed_from_u64(80);
        let mut model = BertForPreTraining::new(BertConfig::tiny(20, 8), 0.0, &mut rng);
        let batch = toy_batch(8, 2, 20);
        let _ = model.train_step(&batch, &ForwardCtx::train_with_capture());
        assert!(!model.mlm_decoder.kfac_enabled());
        assert!(model.mlm_decoder.kfac_stats().activations.is_none());
        // But eligible layers did capture.
        let mut captured = 0;
        model.visit_linears(&mut |l| {
            if l.kfac_stats().is_complete() {
                captured += 1;
            }
        });
        assert_eq!(captured, 14);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut model = BertForPreTraining::new(BertConfig::tiny(12, 4), 0.0, &mut rng);
        let batch = toy_batch(4, 4, 12);
        let first = model.eval_loss(&batch).total_loss;
        for _ in 0..30 {
            model.zero_grad();
            let _ = model.train_step(&batch, &ForwardCtx::train());
            model.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.5, &g);
            });
        }
        let last = model.eval_loss(&batch).total_loss;
        assert!(last < first * 0.8, "loss did not drop: {first} -> {last}");
    }
}
