//! BERT-style transformer encoder block.

use crate::{
    Dropout, FeedForward, ForwardCtx, Layer, LayerNorm, Linear, MultiHeadAttention, ParamVisitor,
};
use pipefisher_tensor::Matrix;
use rand::Rng;

/// One BERT encoder layer (post-LayerNorm, as in the original BERT):
///
/// ```text
/// h = LayerNorm(x + Dropout(Attention(x)))
/// y = LayerNorm(h + Dropout(FeedForward(h)))
/// ```
///
/// In the paper's pipeline experiments, each pipeline *stage* holds one or
/// more of these blocks (e.g. Fig. 3 uses 3 blocks/stage for BERT-Base with
/// 4 stages).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    drop1: Dropout,
    drop2: Dropout,
}

impl TransformerBlock {
    /// Creates a block with the given dims and hidden-dropout probability.
    pub fn new(
        name: &str,
        d_model: usize,
        d_ff: usize,
        n_heads: usize,
        dropout_p: f64,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), d_model, n_heads, 0.0, rng),
            ff: FeedForward::new(&format!("{name}.ff"), d_model, d_ff, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), d_model),
            ln2: LayerNorm::new(&format!("{name}.ln2"), d_model),
            drop1: Dropout::new(dropout_p, 0xB10C_0001),
            drop2: Dropout::new(dropout_p, 0xB10C_0002),
        }
    }

    /// Visits the six K-FAC-eligible [`Linear`] layers (q, k, v, o, fc1, fc2).
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.attn.visit_linears(f);
        self.ff.visit_linears(f);
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        // When a dropout is a no-op (p = 0 ⇒ identity, and it records no
        // mask), the residual add fuses into the preceding projection's
        // GEMM store epilogue. Bitwise identical to the unfused path:
        // x + a equals (a + x) bit for bit (IEEE addition is commutative).
        // With p > 0 the sub-layer output must pass through the mask
        // before the add, so the separate-pass path is kept.
        let sum1 = if self.drop1.p() == 0.0 {
            self.attn.forward_residual(x, x, ctx)
        } else {
            let a = self.attn.forward(x, ctx);
            let a = self.drop1.forward(&a, ctx);
            x + &a
        };
        let h = self.ln1.forward(&sum1, ctx);
        let sum2 = if self.drop2.p() == 0.0 {
            self.ff.forward_residual(&h, &h, ctx)
        } else {
            let f = self.ff.forward(&h, ctx);
            let f = self.drop2.forward(&f, ctx);
            &h + &f
        };
        self.ln2.forward(&sum2, ctx)
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let dsum2 = self.ln2.backward(dout);
        // dsum2 splits into the residual path (into h) and the FF path.
        let df = self.drop2.backward(&dsum2);
        let dh_ff = self.ff.backward(&df);
        let dh = &dsum2 + &dh_ff;
        let dsum1 = self.ln1.backward(&dh);
        let da = self.drop1.backward(&dsum1);
        let dx_attn = self.attn.backward(&da);
        &dsum1 + &dx_attn
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ff.visit_params(f);
        self.ln2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block() -> TransformerBlock {
        let mut rng = StdRng::seed_from_u64(21);
        TransformerBlock::new("b0", 8, 16, 2, 0.0, &mut rng)
    }

    #[test]
    fn forward_backward_shapes() {
        let mut b = block();
        let x = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(1));
        let y = b.forward(&x, &ForwardCtx::train().with_seq_len(3));
        assert_eq!(y.shape(), (6, 8));
        let dx = b.backward(&Matrix::full(6, 8, 0.5));
        assert_eq!(dx.shape(), (6, 8));
        assert!(dx.all_finite());
    }

    #[test]
    fn six_kfac_linears() {
        let mut b = block();
        let mut n = 0;
        b.visit_linears(&mut |_l: &mut Linear| n += 1);
        assert_eq!(n, 6);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut b = block();
        let x = init::normal(2, 8, 1.0, &mut StdRng::seed_from_u64(2));
        let _ = b.forward(&x, &ForwardCtx::train().with_seq_len(2));
        let _ = b.backward(&Matrix::full(2, 8, 1.0));
        b.zero_grad();
        let mut total = 0.0;
        b.visit_params(&mut |p: &mut crate::Parameter| total += p.grad.max_abs());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn fused_residual_path_matches_unfused_bitwise() {
        // dropout_p = 0 routes through the fused residual epilogues; any
        // p > 0 keeps the separate-pass path. In eval mode both compute the
        // same function, and the fusion contract says bit-for-bit the same.
        // Construction draws the same RNG stream either way, so the two
        // blocks share weights.
        let mut fused = TransformerBlock::new("b", 8, 16, 2, 0.0, &mut StdRng::seed_from_u64(33));
        let mut plain = TransformerBlock::new("b", 8, 16, 2, 0.5, &mut StdRng::seed_from_u64(33));
        let x = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(34));
        let ctx = ForwardCtx::eval().with_seq_len(3);
        let yf = fused.forward(&x, &ctx);
        let yp = plain.forward(&x, &ctx);
        for (a, b) in yf.as_slice().iter().zip(yp.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Backward through the fused forward must match too (the fused
        // epilogues change nothing the backward pass reads).
        let dout = init::normal(6, 8, 1.0, &mut StdRng::seed_from_u64(35));
        let dxf = fused.backward(&dout);
        let dxp = plain.backward(&dout);
        for (a, b) in dxf.as_slice().iter().zip(dxp.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn output_is_layernormed() {
        let mut b = block();
        let x = init::normal(4, 8, 3.0, &mut StdRng::seed_from_u64(3));
        let y = b.forward(&x, &ForwardCtx::eval().with_seq_len(4));
        for r in 0..4 {
            let mean: f64 = y.row(r).iter().sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-9);
        }
    }
}
