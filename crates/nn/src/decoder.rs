//! Decoder-style transformer blocks and a causal language model.
//!
//! The paper's Table 3 evaluates three block classes: `BertLayer` (post-LN
//! encoder — [`crate::TransformerBlock`]), `T5Block`, and `OPTDecoderLayer`.
//! This module provides the decoder family: a **pre-LN causal block**
//! matching OPT's layer structure, and [`GptForCausalLm`], a small
//! decoder-only LM used by the causal-LM workloads.

use crate::{
    cross_entropy_backward, cross_entropy_loss, Dropout, Embedding, FeedForward, ForwardCtx, Layer,
    LayerNorm, Linear, MultiHeadAttention, ParamVisitor, IGNORE_INDEX,
};
use pipefisher_tensor::Matrix;
use rand::Rng;

/// An OPT-style decoder layer (pre-LayerNorm, causal self-attention):
///
/// ```text
/// h = x + Dropout(Attention(LayerNorm(x)))   // causal
/// y = h + Dropout(FeedForward(LayerNorm(h)))
/// ```
#[derive(Debug, Clone)]
pub struct DecoderBlock {
    attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    drop1: Dropout,
    drop2: Dropout,
}

impl DecoderBlock {
    /// Creates a pre-LN causal decoder block (OPT's `OPTDecoderLayer`).
    pub fn new(
        name: &str,
        d_model: usize,
        d_ff: usize,
        n_heads: usize,
        dropout_p: f64,
        rng: &mut impl Rng,
    ) -> Self {
        DecoderBlock {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), d_model, n_heads, 0.0, rng)
                .causal(),
            ff: FeedForward::new(&format!("{name}.ff"), d_model, d_ff, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), d_model),
            ln2: LayerNorm::new(&format!("{name}.ln2"), d_model),
            drop1: Dropout::new(dropout_p, 0xDEC0_0001),
            drop2: Dropout::new(dropout_p, 0xDEC0_0002),
        }
    }

    /// Creates a pre-LN **bidirectional** block — the structure of a T5
    /// encoder layer (`T5Block` in Table 3), modulo T5's relative position
    /// bias, which this reproduction substitutes with the shared absolute
    /// position embeddings (the K-FAC-relevant layers are identical).
    pub fn new_t5(
        name: &str,
        d_model: usize,
        d_ff: usize,
        n_heads: usize,
        dropout_p: f64,
        rng: &mut impl Rng,
    ) -> Self {
        DecoderBlock {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), d_model, n_heads, 0.0, rng),
            ff: FeedForward::new(&format!("{name}.ff"), d_model, d_ff, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), d_model),
            ln2: LayerNorm::new(&format!("{name}.ln2"), d_model),
            drop1: Dropout::new(dropout_p, 0xDEC0_0003),
            drop2: Dropout::new(dropout_p, 0xDEC0_0004),
        }
    }

    /// Visits the six K-FAC-eligible [`Linear`] layers.
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.attn.visit_linears(f);
        self.ff.visit_linears(f);
    }
}

impl Layer for DecoderBlock {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        let n = self.ln1.forward(x, ctx);
        let a = self.attn.forward(&n, ctx);
        let a = self.drop1.forward(&a, ctx);
        let h = x + &a;
        let n2 = self.ln2.forward(&h, ctx);
        let f = self.ff.forward(&n2, ctx);
        let f = self.drop2.forward(&f, ctx);
        &h + &f
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        // y = h + Dropout(FF(LN2(h)))
        let df = self.drop2.backward(dout);
        let dn2 = self.ff.backward(&df);
        let mut dh = self.ln2.backward(&dn2);
        dh += dout;
        // h = x + Dropout(Attn(LN1(x)))
        let da = self.drop1.backward(&dh);
        let dn1 = self.attn.backward(&da);
        let mut dx = self.ln1.backward(&dn1);
        dx += &dh;
        dx
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.ff.visit_params(f);
    }
}

/// Losses of a causal-LM training step.
#[derive(Debug, Clone, Copy)]
pub struct CausalLmOutput {
    /// Mean next-token cross-entropy.
    pub loss: f64,
    /// Tokens contributing to the loss.
    pub count: usize,
}

/// A small decoder-only (GPT/OPT-style) language model: embeddings,
/// pre-LN causal blocks, a final LayerNorm, and an LM head (K-FAC-excluded,
/// like BERT's vocab head).
#[derive(Debug, Clone)]
pub struct GptForCausalLm {
    embedding: Embedding,
    blocks: Vec<DecoderBlock>,
    final_ln: LayerNorm,
    lm_head: Linear,
    vocab_size: usize,
}

impl GptForCausalLm {
    /// Builds a randomly initialized model.
    pub fn new(
        vocab_size: usize,
        max_seq: usize,
        d_model: usize,
        d_ff: usize,
        n_heads: usize,
        n_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let embedding = Embedding::new("gpt.emb", vocab_size, max_seq, d_model, 0.0, rng);
        let blocks = (0..n_layers)
            .map(|i| DecoderBlock::new(&format!("gpt.block{i}"), d_model, d_ff, n_heads, 0.0, rng))
            .collect();
        let mut lm_head = Linear::new_bert("gpt.lm_head", d_model, vocab_size, rng);
        lm_head.set_kfac_enabled(false);
        GptForCausalLm {
            embedding,
            blocks,
            final_ln: LayerNorm::new("gpt.final_ln", d_model),
            lm_head,
            vocab_size,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Runs forward + backward on next-token prediction for flattened
    /// sequences of length `seq`, accumulating gradients.
    ///
    /// # Panics
    ///
    /// Panics if `token_ids.len()` is not a multiple of `seq`.
    pub fn train_step(
        &mut self,
        token_ids: &[usize],
        seq: usize,
        ctx: &ForwardCtx,
    ) -> CausalLmOutput {
        let ctx = ctx.with_seq_len(seq);
        let segments = vec![0usize; token_ids.len()];
        let mut h = self.embedding.forward(token_ids, &segments, seq, &ctx);
        for b in &mut self.blocks {
            h = b.forward(&h, &ctx);
        }
        let h = self.final_ln.forward(&h, &ctx);
        let logits = self.lm_head.forward(&h, &ctx);

        // Next-token targets: position i predicts token i+1; the last
        // position of each sequence is ignored.
        let targets: Vec<i64> = token_ids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if (i + 1) % seq == 0 {
                    IGNORE_INDEX
                } else {
                    token_ids[i + 1] as i64
                }
            })
            .collect();
        let result = cross_entropy_loss(&logits, &targets);
        let dlogits = cross_entropy_backward(&logits, &targets);
        let dh = self.lm_head.backward(&dlogits);
        let mut dh = self.final_ln.backward(&dh);
        for b in self.blocks.iter_mut().rev() {
            dh = b.backward(&dh);
        }
        self.embedding.backward(&dh);
        CausalLmOutput {
            loss: result.loss,
            count: result.count,
        }
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.embedding.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.final_ln.visit_params(f);
        self.lm_head.visit_params(f);
    }

    /// Visits every K-FAC-eligible [`Linear`] layer.
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for b in &mut self.blocks {
            b.visit_linears(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.scale_inplace(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decoder_block_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = DecoderBlock::new("d", 8, 16, 2, 0.0, &mut rng);
        let x = init::normal(6, 8, 1.0, &mut rng);
        let y = b.forward(&x, &ForwardCtx::train().with_seq_len(3));
        assert_eq!(y.shape(), (6, 8));
        let dx = b.backward(&Matrix::full(6, 8, 0.3));
        assert_eq!(dx.shape(), (6, 8));
        assert!(dx.all_finite());
    }

    #[test]
    fn decoder_block_is_causal_end_to_end() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = DecoderBlock::new("d", 8, 16, 2, 0.0, &mut rng);
        let x1 = init::normal(4, 8, 1.0, &mut rng);
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2[(3, c)] = -x2[(3, c)];
        }
        let ctx = ForwardCtx::eval().with_seq_len(4);
        let y1 = b.forward(&x1, &ctx);
        let y2 = b.forward(&x2, &ctx);
        for r in 0..3 {
            for c in 0..8 {
                assert!((y1[(r, c)] - y2[(r, c)]).abs() < 1e-10, "leak at ({r},{c})");
            }
        }
    }

    #[test]
    fn t5_block_is_bidirectional() {
        // Unlike the causal block, perturbing the last position must change
        // earlier positions' outputs (full attention).
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = DecoderBlock::new_t5("t", 8, 16, 2, 0.0, &mut rng);
        let x1 = init::normal(4, 8, 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Non-uniform perturbation: a constant shift would be cancelled by
        // the pre-LN normalization (LayerNorm is shift-invariant).
        for c in 0..8 {
            x2[(3, c)] = -x2[(3, c)];
        }
        let ctx = ForwardCtx::eval().with_seq_len(4);
        let y1 = b.forward(&x1, &ctx);
        let y2 = b.forward(&x2, &ctx);
        let early_diff: f64 = (0..3)
            .map(|r| (0..8).map(|c| (y1[(r, c)] - y2[(r, c)]).abs()).sum::<f64>())
            .sum();
        assert!(early_diff > 1e-9, "t5 block behaved causally");
    }

    #[test]
    fn causal_lm_trains() {
        // Deterministic cyclic sequence: next-token prediction is fully
        // learnable, so a few gradient steps must cut the loss sharply.
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = GptForCausalLm::new(12, 8, 16, 32, 2, 2, &mut rng);
        let seq = 8;
        let tokens: Vec<usize> = (0..4 * seq).map(|i| 4 + (i % 7)).collect();
        let first = model.train_step(&tokens, seq, &ForwardCtx::eval()).loss;
        for _ in 0..40 {
            model.zero_grad();
            let _ = model.train_step(&tokens, seq, &ForwardCtx::train());
            model.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.5, &g);
            });
        }
        model.zero_grad();
        let last = model.train_step(&tokens, seq, &ForwardCtx::eval()).loss;
        assert!(
            last < first * 0.5,
            "causal LM did not learn: {first} -> {last}"
        );
    }

    #[test]
    fn lm_head_excluded_from_kfac() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = GptForCausalLm::new(12, 8, 16, 32, 2, 2, &mut rng);
        let tokens: Vec<usize> = (0..16).map(|i| 4 + (i % 7)).collect();
        let _ = model.train_step(&tokens, 8, &ForwardCtx::train_with_capture());
        let mut captured = 0;
        model.visit_linears(&mut |l| {
            if l.kfac_stats().is_complete() {
                captured += 1;
            }
        });
        assert_eq!(captured, 12); // 2 blocks × 6 linears, head excluded
    }

    #[test]
    fn gradcheck_decoder_block() {
        use crate::gradcheck::{assert_grads_close, check_layer_grads};
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = DecoderBlock::new("d", 6, 12, 2, 0.0, &mut rng);
        let x = init::normal(4, 6, 1.0, &mut rng);
        let proj = init::normal(6, 3, 0.7, &mut StdRng::seed_from_u64(6));
        let targets = vec![0i64, 1, 2, 0];

        let (x1, p1, t1) = (x.clone(), proj.clone(), targets.clone());
        let reports = check_layer_grads(
            &mut b,
            move |l| {
                let y = l.forward(&x1, &ForwardCtx::train().with_seq_len(2));
                let logits = y.matmul(&p1);
                let d = cross_entropy_backward(&logits, &t1);
                let _ = l.backward(&d.matmul_nt(&p1));
                cross_entropy_loss(&logits, &t1).loss
            },
            move |l| {
                let y = l.forward(&x, &ForwardCtx::train().with_seq_len(2));
                cross_entropy_loss(&y.matmul(&proj), &targets).loss
            },
            1e-5,
            3,
        );
        assert_grads_close(&reports, 1e-3);
    }
}
