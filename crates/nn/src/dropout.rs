//! Inverted dropout.

use crate::{ForwardCtx, Layer, ParamVisitor};
use pipefisher_tensor::Matrix;

/// Inverted dropout: active only when `ctx.training` is set; scales kept
/// activations by `1/(1-p)` so inference needs no rescaling.
///
/// The mask is generated from an internal counter-based xorshift stream so
/// the layer stays deterministic given its construction seed — important for
/// replaying training runs in tests.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f64,
    state: u64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "Dropout: p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            state: seed | 1,
            mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    fn next_uniform(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state as f64 / u64::MAX as f64
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        if !ctx.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        for v in mask.as_mut_slice() {
            *v = if self.next_uniform() < keep {
                scale
            } else {
                0.0
            };
        }
        let out = x.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => dout.hadamard(mask),
            None => dout.clone(),
        }
    }

    fn visit_params(&mut self, _f: ParamVisitor<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 7);
        let x = Matrix::full(3, 3, 2.0);
        let y = d.forward(&x, &ForwardCtx::eval());
        assert_eq!(y, x);
        let dx = d.backward(&x);
        assert_eq!(dx, x);
    }

    #[test]
    fn train_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 7);
        let x = Matrix::full(50, 50, 1.0);
        let y = d.forward(&x, &ForwardCtx::train());
        let kept = y.as_slice().iter().filter(|&&v| v > 0.0).count();
        // All kept values are scaled by 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
        // Keep rate ≈ 0.5.
        let rate = kept as f64 / 2500.0;
        assert!((rate - 0.5).abs() < 0.05, "keep rate {rate}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 9);
        let x = Matrix::full(10, 10, 1.0);
        let y = d.forward(&x, &ForwardCtx::train());
        let dx = d.backward(&Matrix::full(10, 10, 1.0));
        assert_eq!(y, dx); // identical mask and scale
    }

    #[test]
    fn zero_p_is_identity_even_training() {
        let mut d = Dropout::new(0.0, 1);
        let x = Matrix::full(2, 2, 3.0);
        assert_eq!(d.forward(&x, &ForwardCtx::train()), x);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_p_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
