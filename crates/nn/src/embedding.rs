//! BERT input embeddings (word + position + segment).

use crate::{Dropout, ForwardCtx, Layer, LayerNorm, ParamVisitor, Parameter};
use pipefisher_tensor::{init, Matrix};
use rand::Rng;

/// BERT's input embedding stack: the sum of word, position, and segment
/// lookups followed by LayerNorm and dropout.
///
/// Unlike the other layers this is not a [`Layer`]: its input is token ids,
/// not a matrix. The paper *excludes* embedding tables from K-FAC (they are
/// not fully-connected layers), so no capture hooks exist here; the fallback
/// optimizer (NVLAMB) trains these parameters.
#[derive(Debug, Clone)]
pub struct Embedding {
    word: Parameter,
    position: Parameter,
    segment: Parameter,
    ln: LayerNorm,
    dropout: Dropout,
    cache: Option<(Vec<usize>, Vec<usize>)>,
    cached_seq: usize,
    /// Per-table scatter scratch (word, position, segment): the backward
    /// pass scatters into these zeroed buffers and lands in each table's
    /// gradient through a single `accumulate_grad`, so micro-batch
    /// contributions associate the same way as every other layer's.
    grad_scratch: [Matrix; 3],
}

impl Embedding {
    /// Creates embedding tables for `vocab_size` tokens, up to `max_seq`
    /// positions, and 2 segments, over `d_model` features.
    pub fn new(
        name: &str,
        vocab_size: usize,
        max_seq: usize,
        d_model: usize,
        dropout_p: f64,
        rng: &mut impl Rng,
    ) -> Self {
        Embedding {
            word: Parameter::new(
                format!("{name}.word"),
                init::bert_normal(vocab_size, d_model, rng),
            ),
            position: Parameter::new(
                format!("{name}.position"),
                init::bert_normal(max_seq, d_model, rng),
            ),
            segment: Parameter::new(
                format!("{name}.segment"),
                init::bert_normal(2, d_model, rng),
            ),
            ln: LayerNorm::new(&format!("{name}.ln"), d_model),
            dropout: Dropout::new(dropout_p, 0xE4B_0001),
            cache: None,
            cached_seq: 0,
            grad_scratch: [Matrix::default(), Matrix::default(), Matrix::default()],
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.word.value.rows()
    }

    /// Feature dimensionality.
    pub fn d_model(&self) -> usize {
        self.word.value.cols()
    }

    /// Maximum sequence length supported by the position table.
    pub fn max_seq(&self) -> usize {
        self.position.value.rows()
    }

    /// Borrows the word-embedding table (the MLM head ties to it).
    pub fn word_table(&self) -> &Parameter {
        &self.word
    }

    /// Embeds `token_ids` with `segment_ids`, both of length `batch·seq`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, ids are out of range, or `seq` exceeds the
    /// position table.
    pub fn forward(
        &mut self,
        token_ids: &[usize],
        segment_ids: &[usize],
        seq: usize,
        ctx: &ForwardCtx,
    ) -> Matrix {
        assert_eq!(token_ids.len(), segment_ids.len(), "Embedding: id lengths");
        assert!(
            seq > 0 && token_ids.len().is_multiple_of(seq),
            "Embedding: rows not multiple of seq"
        );
        assert!(
            seq <= self.max_seq(),
            "Embedding: seq {} > max {}",
            seq,
            self.max_seq()
        );
        let n = token_ids.len();
        let d = self.d_model();
        let mut x = Matrix::zeros(n, d);
        for (i, (&tok, &segid)) in token_ids.iter().zip(segment_ids.iter()).enumerate() {
            assert!(
                tok < self.vocab_size(),
                "Embedding: token id {tok} out of range"
            );
            assert!(segid < 2, "Embedding: segment id {segid} out of range");
            let pos = i % seq;
            let row = x.row_mut(i);
            let w = self.word.value.row(tok);
            let p = self.position.value.row(pos);
            let s = self.segment.value.row(segid);
            for c in 0..d {
                row[c] = w[c] + p[c] + s[c];
            }
        }
        self.cache = Some((token_ids.to_vec(), segment_ids.to_vec()));
        self.cached_seq = seq;
        let x = self.ln.forward(&x, ctx);
        self.dropout.forward(&x, ctx)
    }

    /// Backpropagates into the three tables.
    ///
    /// Each call scatters into zeroed per-table scratch buffers and then
    /// adds every table's contribution through one `accumulate_grad`, so a
    /// batch contributes to `grad` with a single addition — the invariant
    /// the pipeline executor's micro-batch merge relies on.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::forward`].
    pub fn backward(&mut self, dout: &Matrix) {
        let dout = self.dropout.backward(dout);
        let dsum = self.ln.backward(&dout);
        let (token_ids, segment_ids) = self
            .cache
            .take()
            .expect("Embedding::backward before forward");
        let seq = self.cached_seq;
        let d = self.d_model();
        let [word_s, pos_s, seg_s] = &mut self.grad_scratch;
        for (scratch, table) in [
            (&mut *word_s, &self.word),
            (&mut *pos_s, &self.position),
            (&mut *seg_s, &self.segment),
        ] {
            scratch.reset_shape(table.value.rows(), table.value.cols());
            scratch.as_mut_slice().fill(0.0);
        }
        for (i, (&tok, &segid)) in token_ids.iter().zip(segment_ids.iter()).enumerate() {
            let pos = i % seq;
            let g = dsum.row(i);
            let wrow = word_s.row_mut(tok);
            for c in 0..d {
                wrow[c] += g[c];
            }
            let prow = pos_s.row_mut(pos);
            for c in 0..d {
                prow[c] += g[c];
            }
            let srow = seg_s.row_mut(segid);
            for c in 0..d {
                srow[c] += g[c];
            }
        }
        self.word.accumulate_grad(word_s);
        self.position.accumulate_grad(pos_s);
        self.segment.accumulate_grad(seg_s);
    }

    /// Visits the embedding tables and LayerNorm parameters.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.word);
        f(&mut self.position);
        f(&mut self.segment);
        self.ln.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn emb() -> Embedding {
        let mut rng = StdRng::seed_from_u64(31);
        Embedding::new("emb", 10, 4, 6, 0.0, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut e = emb();
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let segs = [0usize, 0, 1, 1, 0, 0, 1, 1];
        let x = e.forward(&ids, &segs, 4, &ForwardCtx::eval());
        assert_eq!(x.shape(), (8, 6));
        assert!(x.all_finite());
    }

    #[test]
    fn same_token_same_position_same_embedding() {
        let mut e = emb();
        let ids = [3usize, 3, 3, 3];
        let segs = [0usize; 4];
        let x = e.forward(&ids, &segs, 2, &ForwardCtx::eval());
        // Rows 0 and 2 are both (token 3, position 0, segment 0).
        for c in 0..6 {
            assert!((x[(0, c)] - x[(2, c)]).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_scatters_gradients() {
        let mut e = emb();
        let ids = [1usize, 2];
        let segs = [0usize, 1];
        let _ = e.forward(&ids, &segs, 2, &ForwardCtx::train());
        e.backward(&Matrix::full(2, 6, 1.0));
        assert!(e.word.grad.row(1).iter().any(|&v| v != 0.0));
        assert!(e.word.grad.row(2).iter().any(|&v| v != 0.0));
        assert!(e.word.grad.row(0).iter().all(|&v| v == 0.0)); // untouched token
        assert!(e.segment.grad.row(0).iter().any(|&v| v != 0.0));
        assert!(e.segment.grad.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_token_panics() {
        let mut e = emb();
        let _ = e.forward(&[99], &[0], 1, &ForwardCtx::eval());
    }
}
