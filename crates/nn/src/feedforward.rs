//! Position-wise feed-forward network (the transformer MLP).

use crate::{Activation, ActivationKind, ForwardCtx, Layer, Linear, ParamVisitor};
use pipefisher_tensor::Matrix;
use rand::Rng;

/// The transformer MLP: `Linear(d_model → d_ff) → GELU → Linear(d_ff → d_model)`.
///
/// Both linears participate in K-FAC capture; the intermediate `d_ff`
/// expansion is where most of a transformer block's FLOPs (and K-FAC
/// curvature cost) live.
#[derive(Debug, Clone)]
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
    act: Activation,
}

impl FeedForward {
    /// Creates a feed-forward block with GELU activation.
    pub fn new(name: &str, d_model: usize, d_ff: usize, rng: &mut impl Rng) -> Self {
        FeedForward {
            fc1: Linear::new_bert(&format!("{name}.fc1"), d_model, d_ff, rng),
            fc2: Linear::new_bert(&format!("{name}.fc2"), d_ff, d_model, rng),
            act: Activation::new(ActivationKind::Gelu),
        }
    }

    /// Intermediate (expanded) dimensionality.
    pub fn d_ff(&self) -> usize {
        self.fc1.d_out()
    }

    /// Visits the two [`Linear`] layers (for K-FAC).
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.fc1);
        f(&mut self.fc2);
    }

    /// Runs `act(fc1(x))` with the GELU fused into fc1's GEMM store
    /// epilogue. The pre-activation lands in the [`Activation`] layer's
    /// cached-input buffer (recycled across steps), so its backward pass is
    /// unchanged. Bitwise identical to `act.forward(&fc1.forward(x))`.
    fn forward_hidden(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        if self.act.kind() == ActivationKind::Gelu {
            let mut pre = self.act.take_cached_input();
            let h = self
                .fc1
                .forward_bias_act(x, crate::activation::gelu, &mut pre, ctx);
            self.act.set_cached_input(pre);
            h
        } else {
            let h = self.fc1.forward(x, ctx);
            self.act.forward(&h, ctx)
        }
    }

    /// Forward pass returning `fc2(act(fc1(x))) + residual`, with the
    /// residual add fused into fc2's GEMM store epilogue (bitwise identical
    /// to [`Layer::forward`] plus a separate elementwise add). The caller
    /// routes `dout` both into [`Layer::backward`] and down the residual
    /// branch, exactly as for the unfused sum.
    pub fn forward_residual(&mut self, x: &Matrix, residual: &Matrix, ctx: &ForwardCtx) -> Matrix {
        let h = self.forward_hidden(x, ctx);
        self.fc2.forward_residual(&h, residual, ctx)
    }
}

impl Layer for FeedForward {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        let h = self.forward_hidden(x, ctx);
        self.fc2.forward(&h, ctx)
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let dh = self.fc2.backward(dout);
        let dh = self.act.backward(&dh);
        self.fc1.backward(&dh)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ff = FeedForward::new("ff", 6, 24, &mut rng);
        assert_eq!(ff.d_ff(), 24);
        let x = init::normal(4, 6, 1.0, &mut rng);
        let y = ff.forward(&x, &ForwardCtx::train());
        assert_eq!(y.shape(), (4, 6));
        let dx = ff.backward(&Matrix::full(4, 6, 1.0));
        assert_eq!(dx.shape(), (4, 6));
    }

    #[test]
    fn fused_gelu_matches_separate_passes_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ff = FeedForward::new("ff", 6, 24, &mut rng);
        let x = init::normal(5, 6, 1.0, &mut rng);
        let y = ff.forward(&x, &ForwardCtx::train());
        // Separate-pass reference on the same weights.
        let mut h = x.matmul(&ff.fc1.weight().value);
        h.add_row_broadcast(ff.fc1.bias().value.row(0));
        let ha = h.map(crate::activation::gelu);
        let mut yref = ha.matmul(&ff.fc2.weight().value);
        yref.add_row_broadcast(ff.fc2.bias().value.row(0));
        for (a, b) in y.as_slice().iter().zip(yref.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Backward still sees the correct pre-activation via the cached
        // input handoff: the activation gradient is evaluated at fc1's
        // pre-activation, not at the GELU output.
        let dx = ff.backward(&Matrix::full(5, 6, 1.0));
        assert_eq!(dx.shape(), (5, 6));
        assert!(dx.all_finite());
    }

    #[test]
    fn has_two_kfac_linears() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ff = FeedForward::new("ff", 4, 8, &mut rng);
        let mut count = 0;
        ff.visit_linears(&mut |_l: &mut Linear| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ff = FeedForward::new("ff", 4, 8, &mut rng);
        // fc1: 4*8 + 8, fc2: 8*4 + 4
        assert_eq!(ff.num_params(), 32 + 8 + 32 + 4);
    }
}
