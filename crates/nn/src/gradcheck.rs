//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate (and downstream crates) to verify
//! that every hand-written backward pass computes the exact gradient of its
//! forward pass. The convention: perturb one parameter entry, re-run the
//! scalar loss, compare the central difference against the accumulated
//! analytic gradient.

use crate::{Layer, Parameter};
use pipefisher_tensor::Matrix;

/// Report for a single checked parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f64,
    /// Maximum relative difference (normalized by magnitude, floor 1e-6).
    pub max_rel_diff: f64,
    /// Number of entries compared.
    pub entries: usize,
}

/// Checks the analytic parameter gradients of `layer` for the scalar loss
/// `loss_fn` (which must run a fresh forward pass each call).
///
/// `loss_and_backward` must zero grads, run forward + backward once, and
/// return the loss; `loss_only` must run forward and return the loss without
/// touching grads. `stride` subsamples entries of large parameters.
///
/// Returns one report per parameter.
pub fn check_layer_grads<L: Layer>(
    layer: &mut L,
    mut loss_and_backward: impl FnMut(&mut L) -> f64,
    mut loss_only: impl FnMut(&mut L) -> f64,
    eps: f64,
    stride: usize,
) -> Vec<GradCheckReport> {
    let stride = stride.max(1);
    // Collect analytic gradients.
    layer.zero_grad();
    let _ = loss_and_backward(layer);
    let mut grads: Vec<(String, Matrix)> = Vec::new();
    layer.visit_params(&mut |p: &mut Parameter| grads.push((p.name.clone(), p.grad.clone())));

    let mut reports = Vec::new();
    for (name, analytic) in grads {
        let mut max_abs = 0.0_f64;
        let mut max_rel = 0.0_f64;
        let mut entries = 0;
        let n = analytic.len();
        let mut idx = 0;
        while idx < n {
            let nudge = |layer: &mut L, delta: f64| {
                layer.visit_params(&mut |p: &mut Parameter| {
                    if p.name == name {
                        p.value.as_mut_slice()[idx] += delta;
                    }
                });
            };
            nudge(layer, eps);
            let lp = loss_only(layer);
            nudge(layer, -2.0 * eps);
            let lm = loss_only(layer);
            nudge(layer, eps); // restore
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-6);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
            entries += 1;
            idx += stride;
        }
        reports.push(GradCheckReport {
            name,
            max_abs_diff: max_abs,
            max_rel_diff: max_rel,
            entries,
        });
    }
    reports
}

/// Asserts that all reports are within `tol` relative error.
///
/// # Panics
///
/// Panics with a descriptive message if any parameter fails.
pub fn assert_grads_close(reports: &[GradCheckReport], tol: f64) {
    for r in reports {
        assert!(
            r.max_rel_diff < tol,
            "gradient check failed for {}: rel diff {} (abs {}) over {} entries",
            r.name,
            r.max_rel_diff,
            r.max_abs_diff,
            r.entries
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cross_entropy_backward, cross_entropy_loss, ForwardCtx, Linear};
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut lin = Linear::new("fc", 4, 3, &mut rng);
        let x = init::normal(5, 4, 1.0, &mut rng);
        let targets = vec![0i64, 1, 2, 0, 1];

        let x2 = x.clone();
        let t2 = targets.clone();
        let reports = check_layer_grads(
            &mut lin,
            move |l| {
                let logits = l.forward(&x, &ForwardCtx::train());
                let dlogits = cross_entropy_backward(&logits, &targets);
                let _ = l.backward(&dlogits);
                cross_entropy_loss(&logits, &targets).loss
            },
            move |l| {
                let logits = l.forward(&x2, &ForwardCtx::eval());
                cross_entropy_loss(&logits, &t2).loss
            },
            1e-5,
            1,
        );
        assert_grads_close(&reports, 1e-5);
    }
}
