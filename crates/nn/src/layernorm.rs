//! Layer normalization with learnable gain and bias.

use crate::{ForwardCtx, Layer, ParamVisitor, Parameter};
use pipefisher_tensor::Matrix;

/// Layer normalization over the last (feature) dimension.
///
/// For each row `x`: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`, with per-feature
/// learnable `γ` (gain) and `β` (bias). The backward pass uses the standard
/// fused expression so it is exact, which the gradient-check tests verify.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: Parameter,
    bias: Parameter,
    eps: f64,
    /// Cached normalized input `x̂` and per-row inverse std for backward.
    cache: Option<(Matrix, Vec<f64>)>,
    /// Scratch rows (`dγ`, `dβ`, `dx̂`) reused across backward passes.
    grad_scratch: (Matrix, Matrix, Matrix),
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features with `γ = 1`, `β = 0`,
    /// `ε = 1e-12` (BERT's default).
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gain: Parameter::new(format!("{name}.gain"), Matrix::full(1, dim, 1.0)),
            bias: Parameter::new(format!("{name}.bias"), Matrix::zeros(1, dim)),
            eps: 1e-12,
            cache: None,
            grad_scratch: Default::default(),
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.gain.value.cols()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix, _ctx: &ForwardCtx) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "LayerNorm: input dim");
        let (n, d) = x.shape();
        // Reuse last pass's cache buffers; both are fully overwritten.
        let (mut xhat, mut inv_std) = self.cache.take().unwrap_or_default();
        xhat.reset_shape(n, d);
        inv_std.clear();
        inv_std.reserve(n);
        let gamma = self.gain.value.row(0);
        let beta = self.bias.value.row(0);
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f64>() / d as f64;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            let xh = xhat.row_mut(r);
            let o = out.row_mut(r);
            for c in 0..d {
                let h = (row[c] - mean) * istd;
                xh[c] = h;
                o[c] = gamma[c] * h + beta[c];
            }
        }
        self.cache = Some((xhat, inv_std));
        out
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let (xhat, inv_std) = self
            .cache
            .as_ref()
            .expect("LayerNorm::backward before forward");
        let (n, d) = xhat.shape();
        assert_eq!(dout.shape(), (n, d), "LayerNorm: dout shape");
        let gamma = self.gain.value.row(0);
        // Per-layer scratch rows: dγ/dβ accumulate across rows, dx̂ is
        // fully rewritten per row (hoisted out of the row loop so the hot
        // path allocates nothing).
        let (dgamma_m, dbeta_m, dxhat_m) = &mut self.grad_scratch;
        dgamma_m.reset_shape(1, d);
        dbeta_m.reset_shape(1, d);
        dxhat_m.reset_shape(1, d);
        let dgamma = dgamma_m.as_mut_slice();
        let dbeta = dbeta_m.as_mut_slice();
        let dxhat = dxhat_m.as_mut_slice();
        dgamma.fill(0.0);
        dbeta.fill(0.0);
        let mut dx = Matrix::zeros(n, d);
        for (r, &istd) in inv_std.iter().enumerate() {
            let xh = xhat.row(r);
            let dy = dout.row(r);
            // dŷ projected through γ.
            for c in 0..d {
                dxhat[c] = dy[c] * gamma[c];
            }
            let sum_dxhat: f64 = dxhat.iter().sum();
            let sum_dxhat_xhat: f64 = dxhat.iter().zip(xh.iter()).map(|(&a, &b)| a * b).sum();
            let dxr = dx.row_mut(r);
            for c in 0..d {
                dgamma[c] += dy[c] * xh[c];
                dbeta[c] += dy[c];
                dxr[c] =
                    istd / d as f64 * (d as f64 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
            }
        }
        self.gain.accumulate_grad(&self.grad_scratch.0);
        self.bias.accumulate_grad(&self.grad_scratch.1);
        dx
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.gain);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalized() {
        let mut ln = LayerNorm::new("ln", 4);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[-5.0, 0.0, 5.0, 10.0]]);
        let y = ln.forward(&x, &ForwardCtx::eval());
        for r in 0..2 {
            let mean: f64 = y.row(r).iter().sum::<f64>() / 4.0;
            let var: f64 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f64>()
                / 4.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gain_bias_applied() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.gain.value = Matrix::from_rows(&[&[2.0, 2.0]]);
        ln.bias.value = Matrix::from_rows(&[&[1.0, 1.0]]);
        let x = Matrix::from_rows(&[&[-1.0, 1.0]]);
        let y = ln.forward(&x, &ForwardCtx::eval());
        // normalized row is (-1, 1) (σ = 1), so y = 2·(-1,1)+1 = (-1, 3).
        assert!((y[(0, 0)] + 1.0).abs() < 1e-6);
        assert!((y[(0, 1)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn backward_shapes_and_accumulation() {
        let mut ln = LayerNorm::new("ln", 3);
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.9], &[1.5, 0.0, -2.0]]);
        let _ = ln.forward(&x, &ForwardCtx::train());
        let dx = ln.backward(&Matrix::full(2, 3, 1.0));
        assert_eq!(dx.shape(), (2, 3));
        // dβ = column sums of dout = 2 each.
        assert_eq!(ln.bias.grad.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // Because LayerNorm output is invariant to adding a constant to the
        // input row, dx must sum to ~0 within each row.
        let mut ln = LayerNorm::new("ln", 5);
        let x = Matrix::from_rows(&[&[0.3, -1.0, 2.0, 0.7, -0.2]]);
        let _ = ln.forward(&x, &ForwardCtx::train());
        let dx = ln.backward(&Matrix::from_rows(&[&[1.0, -2.0, 0.5, 0.0, 3.0]]));
        let s: f64 = dx.row(0).iter().sum();
        assert!(s.abs() < 1e-9, "row sum {s}");
    }
}
