//! Neural-network substrate with manual backprop and K-FAC hooks.
//!
//! This crate implements the model zoo the PipeFisher paper trains —
//! BERT-style transformer encoders with masked-language-modeling and
//! next-sentence-prediction heads — entirely in Rust with hand-written
//! forward/backward passes (no autograd framework).
//!
//! The key feature beyond plain backprop is **K-FAC capture**: every
//! [`Linear`] layer can record, per token, the input activations `a_l`
//! (during forward) and the output-gradient error signals `e_l` (during
//! backward). Those are exactly the statistics K-FAC's *curvature* work
//! consumes to build the Kronecker factors `A_l = ⟨a_l a_lᵀ⟩` and
//! `B_l = ⟨e_l e_lᵀ⟩` (paper §2.3.1).
//!
//! Layout convention: token-major 2-D matrices. A batch of `B` sequences of
//! length `S` with hidden size `d` is a `(B·S) × d` [`Matrix`]; K-FAC then
//! treats every token position as an example, which is the standard choice
//! for transformer linear layers.
//!
//! # Example
//!
//! ```
//! use pipefisher_nn::{Linear, Layer, ForwardCtx};
//! use pipefisher_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut layer = Linear::new("proj", 4, 2, &mut rng);
//! let x = Matrix::zeros(3, 4);
//! let y = layer.forward(&x, &ForwardCtx::eval());
//! assert_eq!(y.shape(), (3, 2));
//! ```

mod activation;
mod attention;
mod bert;
mod block;
mod decoder;
mod dropout;
mod embedding;
mod feedforward;
pub mod gradcheck;
mod layernorm;
mod linear;
mod loss;
mod param;
mod snapshot;
mod stage;

pub use activation::{gelu, Activation, ActivationKind};
pub use attention::MultiHeadAttention;
pub use bert::{
    BertConfig, BertForPreTraining, BertModel, PreTrainingBatch, PreTrainingOutput,
    PreTrainingParts,
};
pub use block::TransformerBlock;
pub use decoder::{CausalLmOutput, DecoderBlock, GptForCausalLm};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use feedforward::FeedForward;
pub use layernorm::LayerNorm;
pub use linear::{KfacBatchStats, Linear};
pub use loss::{cross_entropy_backward, cross_entropy_loss, CrossEntropyResult, IGNORE_INDEX};
pub use param::{ParamVisitor, Parameter};
pub use snapshot::{export_params_with, import_params_with};
pub use stage::{BertStage, PreTrainingHead, StageOutput, StagedBert};

use pipefisher_tensor::Matrix;

/// Per-forward-pass context shared by all layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardCtx {
    /// Whether dropout and other train-only behaviour is active.
    pub training: bool,
    /// Whether linear layers should capture K-FAC statistics this pass.
    pub capture_kfac: bool,
    /// Sequence length of the token-major input. `0` means "all rows form a
    /// single sequence". Attention layers need this to recover the
    /// `(batch, seq)` structure from the flattened `(batch·seq, d)` matrix.
    pub seq_len: usize,
}

impl ForwardCtx {
    /// Training context without K-FAC capture.
    pub fn train() -> Self {
        ForwardCtx {
            training: true,
            capture_kfac: false,
            seq_len: 0,
        }
    }

    /// Training context with K-FAC capture enabled.
    pub fn train_with_capture() -> Self {
        ForwardCtx {
            training: true,
            capture_kfac: true,
            seq_len: 0,
        }
    }

    /// Inference context (no dropout, no capture).
    pub fn eval() -> Self {
        ForwardCtx {
            training: false,
            capture_kfac: false,
            seq_len: 0,
        }
    }

    /// Returns the context with the given sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Effective sequence length for an input with `rows` token rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a multiple of the configured sequence length.
    pub fn effective_seq_len(&self, rows: usize) -> usize {
        let s = if self.seq_len == 0 {
            rows
        } else {
            self.seq_len
        };
        assert!(
            s > 0 && rows.is_multiple_of(s),
            "rows ({rows}) not a multiple of seq_len ({s})"
        );
        s
    }
}

/// A differentiable layer with cached state between forward and backward.
///
/// Layers are stateful: `forward` caches whatever the matching `backward`
/// needs (inputs, masks, softmax probabilities), and `backward` consumes that
/// cache, accumulates parameter gradients, and returns the gradient with
/// respect to the layer input.
pub trait Layer {
    /// Runs the layer on `x` (token-major), caching state for backward.
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix;

    /// Backpropagates `dout` (gradient w.r.t. the forward output), returning
    /// the gradient w.r.t. the forward input and accumulating parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dout: &Matrix) -> Matrix;

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: ParamVisitor<'_>);

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p: &mut Parameter| p.grad.scale_inplace(0.0));
    }

    /// Total number of trainable scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p: &mut Parameter| n += p.value.len());
        n
    }
}
