//! Fully-connected layer with K-FAC statistics capture.

use crate::{ForwardCtx, Layer, ParamVisitor, Parameter};
use pipefisher_tensor::{col_sum_into, init, Matrix};
use rand::Rng;

/// Per-mini-batch K-FAC statistics captured by a [`Linear`] layer.
///
/// `activations` holds one row per token: the layer input `a_l` augmented
/// with a trailing constant `1` (homogeneous coordinates), so the Kronecker
/// factor `A_l = U_Aᵀ U_A / n` covers the bias as well, matching common
/// K-FAC implementations. `errors` holds one row per token: the gradient of
/// the *sum* loss with respect to the layer's pre-activation output `e_l`.
#[derive(Debug, Clone, Default)]
pub struct KfacBatchStats {
    /// `n_tokens × (d_in + 1)` bias-augmented input activations.
    pub activations: Option<Matrix>,
    /// `n_tokens × d_out` output-gradient error signals.
    pub errors: Option<Matrix>,
}

impl KfacBatchStats {
    /// Whether both factors' statistics are present.
    pub fn is_complete(&self) -> bool {
        self.activations.is_some() && self.errors.is_some()
    }

    /// Clears both captures.
    pub fn clear(&mut self) {
        self.activations = None;
        self.errors = None;
    }
}

/// A fully-connected layer `y = x·W + b` with optional K-FAC capture.
///
/// Weight is stored `d_in × d_out` so the forward pass is a plain row-major
/// GEMM over token-major inputs.
///
/// # Example
///
/// ```
/// use pipefisher_nn::{ForwardCtx, Layer, Linear};
/// use pipefisher_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut lin = Linear::new("fc", 3, 5, &mut rng);
/// let y = lin.forward(&Matrix::zeros(2, 3), &ForwardCtx::train_with_capture());
/// assert_eq!(y.shape(), (2, 5));
/// assert!(lin.kfac_stats().activations.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    input: Option<Matrix>,
    stats: KfacBatchStats,
    /// Layers excluded from K-FAC (e.g. the vocab-sized LM head, paper §4)
    /// never capture statistics even when the context asks for it.
    kfac_enabled: bool,
    /// Scratch for `dW = xᵀ·dout`, reused across backward passes.
    dw_scratch: Matrix,
    /// Scratch for `db` column sums, reused across backward passes.
    db_scratch: Matrix,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut impl Rng) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            init::xavier_uniform(d_in, d_out, rng),
        );
        let bias = Parameter::new(format!("{name}.bias"), Matrix::zeros(1, d_out));
        Linear {
            weight,
            bias,
            input: None,
            stats: KfacBatchStats::default(),
            kfac_enabled: true,
            dw_scratch: Matrix::default(),
            db_scratch: Matrix::default(),
        }
    }

    /// Creates a layer with BERT-style `N(0, 0.02²)` weights and zero bias.
    pub fn new_bert(name: &str, d_in: usize, d_out: usize, rng: &mut impl Rng) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            init::bert_normal(d_in, d_out, rng),
        );
        let bias = Parameter::new(format!("{name}.bias"), Matrix::zeros(1, d_out));
        Linear {
            weight,
            bias,
            input: None,
            stats: KfacBatchStats::default(),
            kfac_enabled: true,
            dw_scratch: Matrix::default(),
            db_scratch: Matrix::default(),
        }
    }

    /// Disables K-FAC capture for this layer (used for the final
    /// classification head whose `B_L` factor would be vocabulary-sized).
    pub fn set_kfac_enabled(&mut self, enabled: bool) {
        self.kfac_enabled = enabled;
        if !enabled {
            self.stats.clear();
        }
    }

    /// Whether this layer participates in K-FAC.
    pub fn kfac_enabled(&self) -> bool {
        self.kfac_enabled
    }

    /// Unique name of this layer (the weight parameter's name without the
    /// trailing `.weight`).
    pub fn name(&self) -> &str {
        self.weight
            .name
            .strip_suffix(".weight")
            .unwrap_or(&self.weight.name)
    }

    /// Input dimensionality.
    pub fn d_in(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimensionality.
    pub fn d_out(&self) -> usize {
        self.weight.value.cols()
    }

    /// Borrows the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutably borrows the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }

    /// Borrows the bias parameter.
    pub fn bias(&self) -> &Parameter {
        &self.bias
    }

    /// Mutably borrows the bias parameter.
    pub fn bias_mut(&mut self) -> &mut Parameter {
        &mut self.bias
    }

    /// Borrows the captured K-FAC statistics of the last captured pass.
    pub fn kfac_stats(&self) -> &KfacBatchStats {
        &self.stats
    }

    /// Mutably borrows the captured K-FAC statistics (the optimizer clears
    /// them after consuming).
    pub fn kfac_stats_mut(&mut self) -> &mut KfacBatchStats {
        &mut self.stats
    }

    /// Simultaneous mutable access to weight, bias, and captured stats —
    /// needed by the K-FAC optimizer, which reads stats while rewriting the
    /// parameter gradients.
    pub fn kfac_parts_mut(&mut self) -> (&mut Parameter, &mut Parameter, &mut KfacBatchStats) {
        (&mut self.weight, &mut self.bias, &mut self.stats)
    }

    /// Shared forward prologue: K-FAC statistics capture plus the input
    /// cache `backward` differentiates at. Every forward flavour (plain,
    /// fused-activation, fused-residual) runs this, so they are
    /// interchangeable as far as backprop and K-FAC are concerned.
    fn forward_prologue(&mut self, x: &Matrix, ctx: &ForwardCtx) {
        assert_eq!(x.cols(), self.d_in(), "Linear {}: input dim", self.name());
        if ctx.capture_kfac && self.kfac_enabled {
            self.capture_activations(x);
        }
        match &mut self.input {
            Some(buf) => buf.clone_from(x),
            None => self.input = Some(x.clone()),
        }
    }

    /// Forward pass with the elementwise activation `act` fused into the
    /// GEMM store epilogue: returns `act(x·W + b)` and writes the
    /// pre-activation `x·W + b` into `pre`. Bitwise identical to
    /// [`Layer::forward`] followed by a separate `act` pass, but the output
    /// matrix is traversed once instead of three times. `pre` is handed to
    /// the downstream [`crate::Activation`] layer as its cached input so
    /// its backward pass is unchanged.
    pub fn forward_bias_act(
        &mut self,
        x: &Matrix,
        act: fn(f64) -> f64,
        pre: &mut Matrix,
        ctx: &ForwardCtx,
    ) -> Matrix {
        self.forward_prologue(x, ctx);
        let mut y = Matrix::zeros(x.rows(), self.d_out());
        x.matmul_bias_act_into(&self.weight.value, self.bias.value.row(0), act, pre, &mut y);
        y
    }

    /// Forward pass with a residual add fused into the GEMM store
    /// epilogue: returns `(x·W + b) + residual`. Bitwise identical to
    /// [`Layer::forward`] followed by a separate elementwise add. The
    /// gradient of the sum with respect to this layer's output is `dout`
    /// itself, so [`Layer::backward`] is unchanged; the caller routes the
    /// same `dout` down the residual branch.
    pub fn forward_residual(&mut self, x: &Matrix, residual: &Matrix, ctx: &ForwardCtx) -> Matrix {
        self.forward_prologue(x, ctx);
        let mut y = Matrix::zeros(x.rows(), self.d_out());
        x.matmul_bias_residual_into(&self.weight.value, self.bias.value.row(0), residual, &mut y);
        y
    }

    fn capture_activations(&mut self, x: &Matrix) {
        let (n, d) = x.shape();
        // Reuse last step's capture buffer; every element is overwritten.
        let mut aug = self.stats.activations.take().unwrap_or_default();
        aug.reset_shape(n, d + 1);
        for r in 0..n {
            let dst = aug.row_mut(r);
            dst[..d].copy_from_slice(x.row(r));
            dst[d] = 1.0;
        }
        self.stats.activations = Some(aug);
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
        self.forward_prologue(x, ctx);
        // Bias add fused into the GEMM store phase; bitwise identical to
        // matmul + add_row_broadcast.
        let mut y = Matrix::zeros(x.rows(), self.d_out());
        x.matmul_bias_into(&self.weight.value, self.bias.value.row(0), &mut y);
        y
    }

    fn backward(&mut self, dout: &Matrix) -> Matrix {
        let x = self
            .input
            .as_ref()
            .expect("Linear::backward before forward");
        assert_eq!(
            dout.shape(),
            (x.rows(), self.d_out()),
            "Linear {}: dout shape",
            self.name()
        );
        if self.kfac_enabled && self.stats.activations.is_some() {
            match &mut self.stats.errors {
                Some(buf) => buf.clone_from(dout),
                None => self.stats.errors = Some(dout.clone()),
            }
        }
        // dW = xᵀ·dout, db = column sums, dx = dout·Wᵀ — the dW/db
        // products land in per-layer scratch reused across micro-batches.
        x.matmul_tn_into(dout, &mut self.dw_scratch);
        self.weight.accumulate_grad(&self.dw_scratch);
        self.db_scratch.reset_shape(1, self.d_out());
        col_sum_into(dout, self.db_scratch.as_mut_slice());
        self.bias.accumulate_grad(&self.db_scratch);
        dout.matmul_nt(&self.weight.value)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(3);
        Linear::new("fc", 3, 2, &mut rng)
    }

    #[test]
    fn forward_matches_manual() {
        let mut lin = layer();
        lin.weight_mut().value = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        lin.bias_mut().value = Matrix::from_rows(&[&[0.5, -0.5]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = lin.forward(&x, &ForwardCtx::eval());
        assert_eq!(y[(0, 0)], 1.0 + 3.0 + 0.5);
        assert_eq!(y[(0, 1)], 2.0 + 3.0 - 0.5);
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut lin = layer();
        let x = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.0]]);
        let _ = lin.forward(&x, &ForwardCtx::train());
        let dout = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let dx = lin.backward(&dout);
        assert_eq!(dx.shape(), (2, 3));
        // dW = xᵀ·dout
        assert_eq!(lin.weight().grad[(0, 0)], 1.0);
        assert_eq!(lin.weight().grad[(0, 1)], 2.0);
        // db = col sums of dout
        assert_eq!(lin.bias().grad[(0, 0)], 1.0);
        assert_eq!(lin.bias().grad[(0, 1)], 1.0);
    }

    #[test]
    fn capture_is_bias_augmented() {
        let mut lin = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let _ = lin.forward(&x, &ForwardCtx::train_with_capture());
        let a = lin.kfac_stats().activations.as_ref().unwrap();
        assert_eq!(a.shape(), (1, 4));
        assert_eq!(a[(0, 3)], 1.0);
        let dout = Matrix::from_rows(&[&[1.0, -1.0]]);
        let _ = lin.backward(&dout);
        assert!(lin.kfac_stats().is_complete());
        assert_eq!(lin.kfac_stats().errors.as_ref().unwrap()[(0, 1)], -1.0);
    }

    #[test]
    fn disabled_layer_never_captures() {
        let mut lin = layer();
        lin.set_kfac_enabled(false);
        let x = Matrix::zeros(2, 3);
        let _ = lin.forward(&x, &ForwardCtx::train_with_capture());
        assert!(lin.kfac_stats().activations.is_none());
    }

    #[test]
    fn no_capture_without_flag() {
        let mut lin = layer();
        let _ = lin.forward(&Matrix::zeros(2, 3), &ForwardCtx::train());
        assert!(lin.kfac_stats().activations.is_none());
    }

    #[test]
    fn param_visitation_and_count() {
        let mut lin = layer();
        assert_eq!(lin.num_params(), 3 * 2 + 2);
        let mut names = Vec::new();
        lin.visit_params(&mut |p: &mut Parameter| names.push(p.name.clone()));
        assert_eq!(names, vec!["fc.weight", "fc.bias"]);
    }
}
