//! Softmax cross-entropy loss with ignore-index support.

use pipefisher_tensor::{log_softmax, softmax, Matrix};

/// Target value meaning "exclude this row from the loss" (PyTorch's -100
/// convention, used for non-masked tokens in masked language modeling).
pub const IGNORE_INDEX: i64 = -100;

/// Result of a cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct CrossEntropyResult {
    /// Mean negative log-likelihood over non-ignored rows (0 if none).
    pub loss: f64,
    /// Number of rows that contributed to the loss.
    pub count: usize,
}

/// Computes mean cross-entropy of `logits` (`n × classes`) against `targets`
/// (`n` entries, each a class index or [`IGNORE_INDEX`]).
///
/// # Panics
///
/// Panics if lengths mismatch or a non-ignored target is out of range.
///
/// # Example
///
/// ```
/// use pipefisher_nn::{cross_entropy_loss, IGNORE_INDEX};
/// use pipefisher_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]);
/// let r = cross_entropy_loss(&logits, &[0, IGNORE_INDEX]);
/// assert!(r.loss < 1e-3);
/// assert_eq!(r.count, 1);
/// ```
pub fn cross_entropy_loss(logits: &Matrix, targets: &[i64]) -> CrossEntropyResult {
    assert_eq!(logits.rows(), targets.len(), "cross_entropy: row count");
    let lp = log_softmax(logits);
    let mut total = 0.0;
    let mut count = 0;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        let t = usize::try_from(t).expect("cross_entropy: negative target");
        assert!(t < logits.cols(), "cross_entropy: target {t} out of range");
        total -= lp[(r, t)];
        count += 1;
    }
    CrossEntropyResult {
        loss: if count > 0 { total / count as f64 } else { 0.0 },
        count,
    }
}

/// Gradient of the mean cross-entropy w.r.t. `logits`:
/// `(softmax(logits) − one_hot(target)) / count` on contributing rows, zero
/// on ignored rows.
///
/// # Panics
///
/// Panics if lengths mismatch or a non-ignored target is out of range.
pub fn cross_entropy_backward(logits: &Matrix, targets: &[i64]) -> Matrix {
    assert_eq!(
        logits.rows(),
        targets.len(),
        "cross_entropy_backward: row count"
    );
    let count = targets.iter().filter(|&&t| t != IGNORE_INDEX).count();
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    if count == 0 {
        return grad;
    }
    let p = softmax(logits);
    let inv = 1.0 / count as f64;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        let t = usize::try_from(t).expect("cross_entropy_backward: negative target");
        assert!(
            t < logits.cols(),
            "cross_entropy_backward: target {t} out of range"
        );
        let dst = grad.row_mut(r);
        dst.copy_from_slice(p.row(r));
        for v in dst.iter_mut() {
            *v *= inv;
        }
        dst[t] -= inv;
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0]]);
        let r = cross_entropy_loss(&logits, &[0]);
        assert!(r.loss < 1e-6);
    }

    #[test]
    fn uniform_prediction_is_log_classes() {
        let logits = Matrix::zeros(4, 8);
        let r = cross_entropy_loss(&logits, &[0, 1, 2, 3]);
        assert!((r.loss - (8.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn ignored_rows_do_not_contribute() {
        let logits = Matrix::from_rows(&[&[0.0, 5.0], &[9.0, 0.0]]);
        let half = cross_entropy_loss(&logits, &[1, IGNORE_INDEX]);
        assert_eq!(half.count, 1);
        // Ignoring row 1 must give exactly the loss of row 0 alone.
        let row0 = cross_entropy_loss(&logits.slice_rows(0, 1), &[1]);
        assert!((half.loss - row0.loss).abs() < 1e-12);
        let g = cross_entropy_backward(&logits, &[1, IGNORE_INDEX]);
        assert!(g.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.0, 0.1, -0.2]]);
        let targets = [2, 0];
        let g = cross_entropy_backward(&logits, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp[(r, c)] += eps;
                let mut lm = logits.clone();
                lm[(r, c)] -= eps;
                let num = (cross_entropy_loss(&lp, &targets).loss
                    - cross_entropy_loss(&lm, &targets).loss)
                    / (2.0 * eps);
                assert!((g[(r, c)] - num).abs() < 1e-8, "({r},{c})");
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let g = cross_entropy_backward(&logits, &[1]);
        let s: f64 = g.row(0).iter().sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn all_ignored_is_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0]]);
        let r = cross_entropy_loss(&logits, &[IGNORE_INDEX]);
        assert_eq!(r.loss, 0.0);
        assert_eq!(r.count, 0);
        let g = cross_entropy_backward(&logits, &[IGNORE_INDEX]);
        assert_eq!(g.max_abs(), 0.0);
    }
}
