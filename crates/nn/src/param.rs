//! Named trainable parameters.

use pipefisher_tensor::Matrix;

/// Visitor type used by [`crate::Layer::visit_params`].
pub type ParamVisitor<'a> = &'a mut dyn FnMut(&mut Parameter);

/// A named trainable parameter: value plus accumulated gradient.
///
/// Optimizers key their per-parameter state (momentum, Adam moments, K-FAC
/// factors) on [`Parameter::name`], so names must be unique within a model.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Unique dotted path, e.g. `"block0.attn.q.weight"`.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl Parameter {
    /// Creates a parameter with a zero gradient of matching shape.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Parameter {
            name: name.into(),
            value,
            grad,
        }
    }

    /// `(rows, cols)` of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.value.shape()
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&mut self, g: &Matrix) {
        self.grad.axpy(1.0, g);
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.scale_inplace(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad() {
        let p = Parameter::new("w", Matrix::full(2, 3, 5.0));
        assert_eq!(p.shape(), (2, 3));
        assert_eq!(p.len(), 6);
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Parameter::new("w", Matrix::zeros(2, 2));
        p.accumulate_grad(&Matrix::full(2, 2, 1.0));
        p.accumulate_grad(&Matrix::full(2, 2, 0.5));
        assert_eq!(p.grad[(0, 0)], 1.5);
        p.zero_grad();
        assert_eq!(p.grad[(1, 1)], 0.0);
    }
}
