//! Checkpoint export/import of model parameters (DESIGN.md §3.15).
//!
//! Parameters are stored as a flat list of `(name, matrix)` entries sorted
//! by name. The sort is load-bearing: [`crate::BertForPreTraining`] and
//! [`crate::StagedBert`] visit the same parameters in different orders, and
//! sorting makes both produce byte-identical sections — which is what lets
//! the resume tests compare pipelined checkpoints against serial ones.

use std::collections::BTreeMap;

use pipefisher_ckpt::{CkptError, SectionReader, SectionWriter};
use pipefisher_tensor::Matrix;

use crate::{BertForPreTraining, ParamVisitor, Parameter, StagedBert};

/// Encodes every parameter reachable through `visit` as a checkpoint
/// section: `count u32 | per entry: name | matrix`, sorted by name.
pub fn export_params_with(visit: impl FnOnce(ParamVisitor<'_>)) -> Vec<u8> {
    let mut entries: Vec<(String, Matrix)> = Vec::new();
    {
        let mut collect = |p: &mut Parameter| entries.push((p.name.clone(), p.value.clone()));
        visit(&mut collect);
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut w = SectionWriter::new();
    w.u32(entries.len() as u32);
    for (name, value) in &entries {
        w.str(name);
        w.matrix(value);
    }
    w.into_bytes()
}

/// Restores parameter values from a section written by
/// [`export_params_with`] into the parameters reachable through `visit`.
///
/// # Errors
///
/// - [`CkptError::ShapeMismatch`] if a stored tensor's shape disagrees with
///   the live parameter;
/// - [`CkptError::UnknownEntry`] if the checkpoint names a parameter the
///   live model does not have;
/// - [`CkptError::Malformed`] if a live parameter is absent from the
///   checkpoint, or the section bytes are structurally invalid.
///
/// On error the model may be partially updated; callers restore into a
/// freshly built model (as the trainer does), so a failed import is
/// discarded wholesale rather than trained on.
pub fn import_params_with(
    bytes: &[u8],
    visit: impl FnOnce(ParamVisitor<'_>),
) -> Result<(), CkptError> {
    let mut r = SectionReader::new("model", bytes);
    let count = r.u32()?;
    let mut entries: BTreeMap<String, Matrix> = BTreeMap::new();
    for _ in 0..count {
        let name = r.str()?;
        let value = r.matrix()?;
        if entries.insert(name.clone(), value).is_some() {
            return Err(CkptError::Malformed {
                detail: format!("duplicate parameter '{name}' in model section"),
            });
        }
    }
    r.finish()?;
    let mut err: Option<CkptError> = None;
    {
        let mut apply = |p: &mut Parameter| {
            if err.is_some() {
                return;
            }
            match entries.remove(&p.name) {
                Some(value) => {
                    if value.shape() != p.value.shape() {
                        err = Some(CkptError::ShapeMismatch {
                            name: p.name.clone(),
                            expected: p.value.shape(),
                            found: value.shape(),
                        });
                    } else {
                        p.value = value;
                    }
                }
                None => {
                    err = Some(CkptError::Malformed {
                        detail: format!(
                            "checkpoint model section is missing parameter '{}'",
                            p.name
                        ),
                    });
                }
            }
        };
        visit(&mut apply);
    }
    if let Some(e) = err {
        return Err(e);
    }
    if let Some((name, _)) = entries.into_iter().next() {
        return Err(CkptError::UnknownEntry {
            context: "model parameters".to_string(),
            name,
        });
    }
    Ok(())
}

impl BertForPreTraining {
    /// Encodes all parameters as a checkpoint section (sorted by name).
    pub fn export_params(&mut self) -> Vec<u8> {
        export_params_with(|f| self.visit_params(f))
    }

    /// Restores all parameters from a section written by `export_params`
    /// (of this model or of an equivalently configured [`StagedBert`]).
    pub fn import_params(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        import_params_with(bytes, |f| self.visit_params(f))
    }
}

impl StagedBert {
    /// Encodes all parameters as a checkpoint section (sorted by name);
    /// byte-identical to the monolithic model's `export_params`.
    pub fn export_params(&mut self) -> Vec<u8> {
        export_params_with(|f| self.visit_params(f))
    }

    /// Restores all parameters from a section written by `export_params`.
    pub fn import_params(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        import_params_with(bytes, |f| self.visit_params(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BertConfig;
    use rand::SeedableRng;

    fn model(seed: u64) -> BertForPreTraining {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        BertForPreTraining::new(BertConfig::tiny(20, 8), 0.0, &mut rng)
    }

    fn param_bits(m: &mut BertForPreTraining) -> Vec<u64> {
        let mut bits = Vec::new();
        m.visit_params(&mut |p| bits.extend(p.value.as_slice().iter().map(|v| v.to_bits())));
        bits
    }

    #[test]
    fn export_import_round_trips_bitwise() {
        let mut src = model(1);
        let want = param_bits(&mut src);
        let section = src.export_params();
        let mut dst = model(2);
        assert_ne!(param_bits(&mut dst), want);
        dst.import_params(&section).unwrap();
        assert_eq!(param_bits(&mut dst), want);
        // Re-export of the restored model is byte-identical.
        assert_eq!(dst.export_params(), section);
    }

    #[test]
    fn staged_and_monolithic_exports_are_byte_identical() {
        let mut mono = model(3);
        let mono_section = mono.export_params();
        for stages in [1usize, 2, 4] {
            let mut staged = StagedBert::from_model(mono.clone(), stages);
            assert_eq!(
                staged.export_params(),
                mono_section,
                "{stages}-stage export differs from monolithic"
            );
        }
    }

    #[test]
    fn import_into_staged_matches_monolithic() {
        let mut src = model(4);
        let section = src.export_params();
        let mut staged = StagedBert::from_model(model(5), 2);
        staged.import_params(&section).unwrap();
        assert_eq!(staged.export_params(), section);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut small = model(1);
        let section = small.export_params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut big = BertForPreTraining::new(BertConfig::tiny(20, 16), 0.0, &mut rng);
        assert!(matches!(
            big.import_params(&section),
            Err(CkptError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_and_missing_entries_are_rejected() {
        let mut m = model(1);
        let section = m.export_params();

        // Append a bogus extra entry (checkpoint has more than the model).
        let mut r = SectionReader::new("model", &section);
        let count = r.u32().unwrap();
        let mut w = SectionWriter::new();
        w.u32(count + 1);
        let mut rebuilt = w.into_bytes();
        rebuilt.extend_from_slice(&section[4..]);
        let mut extra = SectionWriter::new();
        extra.str("zz.not.a.parameter");
        extra.matrix(&Matrix::zeros(1, 1));
        rebuilt.extend_from_slice(&extra.into_bytes());
        assert!(matches!(
            m.import_params(&rebuilt),
            Err(CkptError::UnknownEntry { .. })
        ));

        // Drop the last entry (model has more than the checkpoint). Rebuild
        // a 0-entry section for simplicity.
        let mut empty = SectionWriter::new();
        empty.u32(0);
        assert!(matches!(
            m.import_params(&empty.into_bytes()),
            Err(CkptError::Malformed { .. })
        ));
    }
}
