//! Pipeline-stage partitioning of [`BertForPreTraining`].
//!
//! The pipeline executor (`pipefisher-lm`) splits the pretraining model into
//! `D` contiguous stages: stage 0 owns the input embeddings, the encoder
//! blocks are distributed in contiguous depth ranges, and the last stage
//! owns both pretraining heads. Every layer instance is *moved* between the
//! monolithic and staged forms ([`StagedBert::from_model`] /
//! [`StagedBert::into_model`] are exact inverses), and each stage's forward
//! and backward run the identical layer calls the monolithic
//! [`BertForPreTraining::train_step`] would, so running the stages in
//! dependency order reproduces the monolithic pass bitwise.

use crate::{
    cross_entropy_backward, cross_entropy_loss, Activation, BertConfig, BertForPreTraining,
    Embedding, ForwardCtx, Layer, LayerNorm, Linear, ParamVisitor, PreTrainingBatch,
    PreTrainingOutput, PreTrainingParts, TransformerBlock,
};
use pipefisher_tensor::Matrix;

/// The MLM + NSP pretraining heads as one unit, hosted by the last stage.
///
/// Forward computes both losses and caches the logits; the deferred
/// [`PreTrainingHead::backward`] replays the monolithic head backward and
/// returns the gradient flowing into the encoder's final hidden states.
#[derive(Debug, Clone)]
pub struct PreTrainingHead {
    mlm_transform: Linear,
    mlm_act: Activation,
    mlm_ln: LayerNorm,
    mlm_decoder: Linear,
    nsp_pooler: Linear,
    nsp_act: Activation,
    nsp_classifier: Linear,
    /// `(mlm_logits, nsp_logits)` from the pending forward.
    cache: Option<(Matrix, Matrix)>,
}

impl PreTrainingHead {
    /// Runs both heads over the encoder output, caching logits for the
    /// deferred backward. The layer call sequence is exactly
    /// [`BertForPreTraining::train_step`]'s head section.
    pub fn forward(
        &mut self,
        hidden: &Matrix,
        batch: &PreTrainingBatch,
        ctx: &ForwardCtx,
    ) -> PreTrainingOutput {
        let batch_size = batch.batch_size();
        let t = self.mlm_transform.forward(hidden, ctx);
        let t = self.mlm_act.forward(&t, ctx);
        let t = self.mlm_ln.forward(&t, ctx);
        let mlm_logits = self.mlm_decoder.forward(&t, ctx);
        let mlm = cross_entropy_loss(&mlm_logits, &batch.mlm_targets);

        let mut first_tokens = Matrix::zeros(batch_size, hidden.cols());
        for b in 0..batch_size {
            first_tokens
                .row_mut(b)
                .copy_from_slice(hidden.row(b * batch.seq));
        }
        let p = self.nsp_pooler.forward(&first_tokens, ctx);
        let p = self.nsp_act.forward(&p, ctx);
        let nsp_logits = self.nsp_classifier.forward(&p, ctx);
        let nsp = cross_entropy_loss(&nsp_logits, &batch.nsp_targets);

        self.cache = Some((mlm_logits, nsp_logits));
        PreTrainingOutput {
            total_loss: mlm.loss + nsp.loss,
            mlm_loss: mlm.loss,
            nsp_loss: nsp.loss,
            mlm_count: mlm.count,
        }
    }

    /// Backpropagates both heads, returning the hidden-state gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a pending [`PreTrainingHead::forward`].
    pub fn backward(&mut self, batch: &PreTrainingBatch) -> Matrix {
        let (mlm_logits, nsp_logits) = self
            .cache
            .take()
            .expect("PreTrainingHead::backward before forward");
        let batch_size = batch.batch_size();
        let dmlm_logits = cross_entropy_backward(&mlm_logits, &batch.mlm_targets);
        let dt = self.mlm_decoder.backward(&dmlm_logits);
        let dt = self.mlm_ln.backward(&dt);
        let dt = self.mlm_act.backward(&dt);
        let mut dhidden = self.mlm_transform.backward(&dt);

        let dnsp_logits = cross_entropy_backward(&nsp_logits, &batch.nsp_targets);
        let dp = self.nsp_classifier.backward(&dnsp_logits);
        let dp = self.nsp_act.backward(&dp);
        let dfirst = self.nsp_pooler.backward(&dp);
        for b in 0..batch_size {
            let dst = dhidden.row_mut(b * batch.seq);
            for (d, &g) in dst.iter_mut().zip(dfirst.row(b).iter()) {
                *d += g;
            }
        }
        dhidden
    }

    /// Visits head parameters in the monolithic model's order.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.mlm_transform.visit_params(f);
        self.mlm_ln.visit_params(f);
        self.mlm_decoder.visit_params(f);
        self.nsp_pooler.visit_params(f);
        self.nsp_classifier.visit_params(f);
    }

    /// Visits the head's K-FAC-eligible linears (transform + pooler).
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.mlm_transform);
        f(&mut self.nsp_pooler);
    }
}

/// What a stage's forward pass produces.
#[derive(Debug)]
pub enum StageOutput {
    /// Boundary activations for the next stage (`batch·seq × d_model`).
    Boundary(Matrix),
    /// The last stage's losses (the head ran).
    Losses(PreTrainingOutput),
}

/// One contiguous pipeline stage: optionally the embeddings, a run of
/// encoder blocks, and optionally the pretraining heads.
#[derive(Debug, Clone)]
pub struct BertStage {
    embedding: Option<Embedding>,
    blocks: Vec<TransformerBlock>,
    head: Option<PreTrainingHead>,
}

impl BertStage {
    /// Whether this stage hosts the input embeddings (stage 0).
    pub fn has_embedding(&self) -> bool {
        self.embedding.is_some()
    }

    /// Whether this stage hosts the pretraining heads (last stage).
    pub fn has_head(&self) -> bool {
        self.head.is_some()
    }

    /// Number of encoder blocks in this stage.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Runs the stage forward. Stage 0 takes `None` and reads the batch's
    /// token ids; later stages take the previous stage's boundary
    /// activations.
    ///
    /// # Panics
    ///
    /// Panics if `input` presence does not match the stage's position
    /// (embedding stages take `None`, others take `Some`).
    pub fn forward(
        &mut self,
        input: Option<Matrix>,
        batch: &PreTrainingBatch,
        ctx: &ForwardCtx,
    ) -> StageOutput {
        let ctx = ctx.with_seq_len(batch.seq);
        let mut h = match (&mut self.embedding, input) {
            (Some(emb), None) => emb.forward(&batch.token_ids, &batch.segment_ids, batch.seq, &ctx),
            (None, Some(x)) => x,
            (Some(_), Some(_)) => panic!("BertStage::forward: embedding stage got an input"),
            (None, None) => panic!("BertStage::forward: non-embedding stage needs an input"),
        };
        for block in &mut self.blocks {
            h = block.forward(&h, &ctx);
        }
        match &mut self.head {
            Some(head) => StageOutput::Losses(head.forward(&h, batch, &ctx)),
            None => StageOutput::Boundary(h),
        }
    }

    /// Runs the stage backward. The last stage takes `None` (the head
    /// generates the loss gradient); earlier stages take the downstream
    /// boundary gradient. Returns the gradient for the upstream stage, or
    /// `None` from stage 0 (the embeddings absorb it).
    ///
    /// # Panics
    ///
    /// Panics if `dout` presence does not match the stage's position.
    pub fn backward(&mut self, dout: Option<Matrix>, batch: &PreTrainingBatch) -> Option<Matrix> {
        let mut d = match (&mut self.head, dout) {
            (Some(head), None) => head.backward(batch),
            (None, Some(d)) => d,
            (Some(_), Some(_)) => panic!("BertStage::backward: head stage got a gradient"),
            (None, None) => panic!("BertStage::backward: non-head stage needs a gradient"),
        };
        for block in self.blocks.iter_mut().rev() {
            d = block.backward(&d);
        }
        match &mut self.embedding {
            Some(emb) => {
                emb.backward(&d);
                None
            }
            None => Some(d),
        }
    }

    /// Visits this stage's parameters, in the monolithic model's order
    /// restricted to this stage.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        if let Some(emb) = &mut self.embedding {
            emb.visit_params(f);
        }
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        if let Some(head) = &mut self.head {
            head.visit_params(f);
        }
    }

    /// Visits this stage's K-FAC-eligible linears, in the monolithic
    /// model's order restricted to this stage.
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for block in &mut self.blocks {
            block.visit_linears(f);
        }
        if let Some(head) = &mut self.head {
            head.visit_linears(f);
        }
    }

    /// Zeroes this stage's gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.scale_inplace(0.0));
    }
}

/// A [`BertForPreTraining`] split into `D` contiguous pipeline stages.
///
/// Stage `i` owns encoder blocks `[i·L/D, (i+1)·L/D)`; stage 0 additionally
/// owns the embeddings and the last stage the pretraining heads. Stages may
/// own zero blocks when `D > L`. Iterating stages in order visits every
/// parameter in exactly the monolithic model's `visit_params` order.
#[derive(Debug, Clone)]
pub struct StagedBert {
    config: BertConfig,
    stages: Vec<BertStage>,
}

impl StagedBert {
    /// Splits `model` into `n_stages` contiguous stages.
    ///
    /// # Panics
    ///
    /// Panics if `n_stages == 0`.
    pub fn from_model(model: BertForPreTraining, n_stages: usize) -> Self {
        assert!(n_stages > 0, "StagedBert: n_stages must be positive");
        let parts = model.into_parts();
        let l = parts.blocks.len();
        let mut blocks = parts.blocks.into_iter();
        let head = PreTrainingHead {
            mlm_transform: parts.mlm_transform,
            mlm_act: parts.mlm_act,
            mlm_ln: parts.mlm_ln,
            mlm_decoder: parts.mlm_decoder,
            nsp_pooler: parts.nsp_pooler,
            nsp_act: parts.nsp_act,
            nsp_classifier: parts.nsp_classifier,
            cache: None,
        };
        let mut embedding = Some(parts.embedding);
        let mut head = Some(head);
        let stages = (0..n_stages)
            .map(|i| {
                let (start, end) = (i * l / n_stages, (i + 1) * l / n_stages);
                BertStage {
                    embedding: if i == 0 { embedding.take() } else { None },
                    blocks: blocks.by_ref().take(end - start).collect(),
                    head: if i == n_stages - 1 { head.take() } else { None },
                }
            })
            .collect();
        StagedBert {
            config: parts.config,
            stages,
        }
    }

    /// Reassembles the monolithic model; the exact inverse of
    /// [`StagedBert::from_model`].
    pub fn into_model(self) -> BertForPreTraining {
        let mut embedding = None;
        let mut head = None;
        let mut blocks = Vec::new();
        for stage in self.stages {
            if stage.embedding.is_some() {
                embedding = stage.embedding;
            }
            blocks.extend(stage.blocks);
            if stage.head.is_some() {
                head = stage.head;
            }
        }
        let head = head.expect("StagedBert: missing head stage");
        BertForPreTraining::from_parts(PreTrainingParts {
            config: self.config,
            embedding: embedding.expect("StagedBert: missing embedding stage"),
            blocks,
            mlm_transform: head.mlm_transform,
            mlm_act: head.mlm_act,
            mlm_ln: head.mlm_ln,
            mlm_decoder: head.mlm_decoder,
            nsp_pooler: head.nsp_pooler,
            nsp_act: head.nsp_act,
            nsp_classifier: head.nsp_classifier,
        })
    }

    /// Encoder hyperparameters.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Borrows stage `s`.
    pub fn stage(&self, s: usize) -> &BertStage {
        &self.stages[s]
    }

    /// Mutably borrows stage `s`.
    pub fn stage_mut(&mut self, s: usize) -> &mut BertStage {
        &mut self.stages[s]
    }

    /// Removes stage `s`, leaving an empty placeholder (used by the
    /// executor to move stages onto worker threads).
    pub fn take_stage(&mut self, s: usize) -> BertStage {
        std::mem::replace(
            &mut self.stages[s],
            BertStage {
                embedding: None,
                blocks: Vec::new(),
                head: None,
            },
        )
    }

    /// Puts a stage back into slot `s` (inverse of [`Self::take_stage`]).
    pub fn put_stage(&mut self, s: usize, stage: BertStage) {
        self.stages[s] = stage;
    }

    /// Visits every parameter in the monolithic model's order.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for stage in &mut self.stages {
            stage.visit_params(f);
        }
    }

    /// Visits every K-FAC-eligible linear in the monolithic model's order.
    pub fn visit_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for stage in &mut self.stages {
            stage.visit_linears(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.scale_inplace(0.0));
    }

    /// Runs one forward + backward over all stages in dependency order,
    /// accumulating gradients — the single-thread reference the pipeline
    /// executor must match bitwise. Mirrors
    /// [`BertForPreTraining::train_step`].
    pub fn train_step(&mut self, batch: &PreTrainingBatch, ctx: &ForwardCtx) -> PreTrainingOutput {
        let mut boundary = None;
        let mut out = None;
        for stage in &mut self.stages {
            match stage.forward(boundary.take(), batch, ctx) {
                StageOutput::Boundary(h) => boundary = Some(h),
                StageOutput::Losses(o) => out = Some(o),
            }
        }
        let out = out.expect("StagedBert: no head stage ran");
        let mut dout = None;
        for stage in self.stages.iter_mut().rev() {
            dout = stage.backward(dout.take(), batch);
        }
        assert!(
            dout.is_none(),
            "StagedBert: gradient left over after stage 0"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch(seq: usize, batch: usize, vocab: usize) -> PreTrainingBatch {
        let n = seq * batch;
        PreTrainingBatch {
            token_ids: (0..n).map(|i| i % vocab).collect(),
            segment_ids: (0..n).map(|i| ((i % seq) >= seq / 2) as usize).collect(),
            mlm_targets: (0..n)
                .map(|i| {
                    if i % 5 == 0 {
                        (i % vocab) as i64
                    } else {
                        crate::IGNORE_INDEX
                    }
                })
                .collect(),
            nsp_targets: (0..batch).map(|b| (b % 2) as i64).collect(),
            seq,
        }
    }

    fn model(seed: u64, config: BertConfig) -> BertForPreTraining {
        let mut rng = StdRng::seed_from_u64(seed);
        BertForPreTraining::new(config, 0.0, &mut rng)
    }

    #[test]
    fn roundtrip_preserves_params() {
        for d in [1, 2, 3, 4, 7] {
            let mut mono = model(5, BertConfig::tiny(20, 8));
            let mut names = Vec::new();
            mono.visit_params(&mut |p| names.push(p.name.clone()));
            let staged = StagedBert::from_model(mono, d);
            let mut back = staged.into_model();
            let mut names2 = Vec::new();
            back.visit_params(&mut |p| names2.push(p.name.clone()));
            assert_eq!(names, names2, "d={d}");
        }
    }

    #[test]
    fn staged_visit_order_matches_monolithic() {
        let mut mono = model(6, BertConfig::mini(24, 8));
        let mut mono_names = Vec::new();
        mono.visit_params(&mut |p| mono_names.push(p.name.clone()));
        let mut mono_lin = Vec::new();
        mono.visit_linears(&mut |l| mono_lin.push(l.name().to_string()));
        let mut staged = StagedBert::from_model(mono, 3);
        let mut staged_names = Vec::new();
        staged.visit_params(&mut |p| staged_names.push(p.name.clone()));
        let mut staged_lin = Vec::new();
        staged.visit_linears(&mut |l| staged_lin.push(l.name().to_string()));
        assert_eq!(mono_names, staged_names);
        assert_eq!(mono_lin, staged_lin);
    }

    #[test]
    fn staged_train_step_is_bitwise_monolithic() {
        let batch = toy_batch(8, 3, 20);
        for d in [1, 2, 4] {
            let mut mono = model(7, BertConfig::mini(20, 8));
            let mut staged = StagedBert::from_model(model(7, BertConfig::mini(20, 8)), d);
            mono.zero_grad();
            staged.zero_grad();
            let o1 = mono.train_step(&batch, &ForwardCtx::train_with_capture());
            let o2 = staged.train_step(&batch, &ForwardCtx::train_with_capture());
            assert_eq!(o1.total_loss.to_bits(), o2.total_loss.to_bits(), "d={d}");
            let mut mono_grads = Vec::new();
            mono.visit_params(&mut |p| mono_grads.push(p.grad.clone()));
            let mut idx = 0;
            staged.visit_params(&mut |p| {
                assert_eq!(
                    p.grad.as_slice(),
                    mono_grads[idx].as_slice(),
                    "d={d} param {}",
                    p.name
                );
                idx += 1;
            });
        }
    }

    #[test]
    fn stage_partition_covers_all_blocks() {
        let mono = model(8, BertConfig::mini(20, 8));
        let staged = StagedBert::from_model(mono, 4);
        assert_eq!(staged.n_stages(), 4);
        let total: usize = (0..4).map(|s| staged.stage(s).n_blocks()).sum();
        assert_eq!(total, 4);
        assert!(staged.stage(0).has_embedding());
        assert!(staged.stage(3).has_head());
        assert!(!staged.stage(1).has_embedding() && !staged.stage(1).has_head());
    }

    #[test]
    fn more_stages_than_blocks_is_ok() {
        // tiny has 2 blocks; D=4 leaves two stages with pass-through blocks.
        let batch = toy_batch(8, 2, 20);
        let mut mono = model(9, BertConfig::tiny(20, 8));
        let mut staged = StagedBert::from_model(model(9, BertConfig::tiny(20, 8)), 4);
        let o1 = mono.train_step(&batch, &ForwardCtx::train());
        let o2 = staged.train_step(&batch, &ForwardCtx::train());
        assert_eq!(o1.total_loss.to_bits(), o2.total_loss.to_bits());
    }
}
