//! Finite-difference gradient checks for every layer and the full model.
//!
//! These tests are the correctness foundation of the whole reproduction: if
//! backprop is exact, the error signals `e_l` that K-FAC consumes are exact,
//! and the optimizer comparisons in the convergence experiments are fair.

use pipefisher_nn::gradcheck::{assert_grads_close, check_layer_grads};
use pipefisher_nn::{
    cross_entropy_backward, cross_entropy_loss, Activation, ActivationKind, BertConfig,
    BertForPreTraining, FeedForward, ForwardCtx, Layer, LayerNorm, Linear, MultiHeadAttention,
    Parameter, PreTrainingBatch, TransformerBlock, IGNORE_INDEX,
};
use pipefisher_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks a layer's parameter gradients under a cross-entropy loss applied
/// directly to its (flattened-to-classes) output.
fn gradcheck_layer<L: Layer>(layer: &mut L, x: Matrix, seq_len: usize, classes: usize, tol: f64) {
    let targets: Vec<i64> = (0..x.rows()).map(|i| (i % classes) as i64).collect();
    // Project the layer output onto `classes` logits with a fixed matrix so
    // the loss depends on every output coordinate.
    let proj = init::normal(
        {
            // output dim == input dim for all layers checked here
            x.cols()
        },
        classes,
        0.7,
        &mut StdRng::seed_from_u64(1234),
    );

    let x1 = x.clone();
    let t1 = targets.clone();
    let proj1 = proj.clone();
    let x2 = x;
    let t2 = targets;
    let proj2 = proj;
    let reports = check_layer_grads(
        layer,
        move |l| {
            let y = l.forward(&x1, &ForwardCtx::train().with_seq_len(seq_len));
            let logits = y.matmul(&proj1);
            let dlogits = cross_entropy_backward(&logits, &t1);
            let dy = dlogits.matmul_nt(&proj1);
            let _ = l.backward(&dy);
            cross_entropy_loss(&logits, &t1).loss
        },
        move |l| {
            let y = l.forward(&x2, &ForwardCtx::train().with_seq_len(seq_len));
            let logits = y.matmul(&proj2);
            cross_entropy_loss(&logits, &t2).loss
        },
        1e-5,
        1,
    );
    assert_grads_close(&reports, tol);
}

#[test]
fn linear_grads() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut l = Linear::new("fc", 6, 6, &mut rng);
    let x = init::normal(4, 6, 1.0, &mut rng);
    gradcheck_layer(&mut l, x, 0, 3, 1e-5);
}

#[test]
fn layernorm_grads() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut l = LayerNorm::new("ln", 6);
    let x = init::normal(4, 6, 1.5, &mut rng);
    gradcheck_layer(&mut l, x, 0, 3, 1e-4);
}

#[test]
fn gelu_input_grads_via_linear_sandwich() {
    // Activations have no params; check them indirectly by wrapping in a
    // layer that does: Linear -> GELU as a composite.
    struct Sandwich {
        lin: Linear,
        act: Activation,
    }
    impl Layer for Sandwich {
        fn forward(&mut self, x: &Matrix, ctx: &ForwardCtx) -> Matrix {
            let h = self.lin.forward(x, ctx);
            self.act.forward(&h, ctx)
        }
        fn backward(&mut self, dout: &Matrix) -> Matrix {
            let dh = self.act.backward(dout);
            self.lin.backward(&dh)
        }
        fn visit_params(&mut self, f: pipefisher_nn::ParamVisitor<'_>) {
            self.lin.visit_params(f);
        }
    }
    let mut rng = StdRng::seed_from_u64(3);
    let mut s = Sandwich {
        lin: Linear::new("fc", 5, 5, &mut rng),
        act: Activation::new(ActivationKind::Gelu),
    };
    let x = init::normal(4, 5, 1.0, &mut rng);
    gradcheck_layer(&mut s, x, 0, 2, 1e-4);
}

#[test]
fn attention_grads() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut a = MultiHeadAttention::new("attn", 6, 2, 0.0, &mut rng);
    let x = init::normal(6, 6, 1.0, &mut rng);
    gradcheck_layer(&mut a, x, 3, 3, 1e-4);
}

#[test]
fn feedforward_grads() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut ff = FeedForward::new("ff", 5, 10, &mut rng);
    let x = init::normal(4, 5, 1.0, &mut rng);
    gradcheck_layer(&mut ff, x, 0, 3, 1e-4);
}

#[test]
fn transformer_block_grads() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut b = TransformerBlock::new("b", 6, 12, 2, 0.0, &mut rng);
    let x = init::normal(6, 6, 1.0, &mut rng);
    gradcheck_layer(&mut b, x, 3, 3, 1e-3);
}

#[test]
fn full_pretraining_model_grads_subsampled() {
    // End-to-end check through embeddings, blocks, and both heads. Uses a
    // stride to keep runtime reasonable; the per-layer checks above cover
    // every code path densely.
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = BertForPreTraining::new(BertConfig::tiny(12, 4), 0.0, &mut rng);
    let batch = PreTrainingBatch {
        token_ids: vec![1, 2, 3, 4, 5, 6, 7, 8],
        segment_ids: vec![0, 0, 1, 1, 0, 0, 1, 1],
        mlm_targets: vec![
            2,
            IGNORE_INDEX,
            IGNORE_INDEX,
            5,
            IGNORE_INDEX,
            7,
            IGNORE_INDEX,
            1,
        ],
        nsp_targets: vec![0, 1],
        seq: 4,
    };

    // Analytic gradients.
    model.zero_grad();
    let _ = model.train_step(&batch, &ForwardCtx::train());
    let mut grads: Vec<(String, Matrix)> = Vec::new();
    model.visit_params(&mut |p: &mut Parameter| grads.push((p.name.clone(), p.grad.clone())));

    let eps = 1e-5;
    let mut checked = 0;
    for (name, analytic) in &grads {
        let n = analytic.len();
        let stride = (n / 6).max(1); // ≤ ~6 entries per parameter
        let mut idx = 0;
        while idx < n {
            let nudge = |model: &mut BertForPreTraining, delta: f64| {
                model.visit_params(&mut |p: &mut Parameter| {
                    if &p.name == name {
                        p.value.as_mut_slice()[idx] += delta;
                    }
                });
            };
            nudge(&mut model, eps);
            let lp = model.eval_loss(&batch).total_loss;
            nudge(&mut model, -2.0 * eps);
            let lm = model.eval_loss(&batch).total_loss;
            nudge(&mut model, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            let rel = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1e-5);
            assert!(
                rel < 2e-3,
                "full-model gradcheck failed at {name}[{idx}]: analytic {a} vs numeric {numeric}"
            );
            checked += 1;
            idx += stride;
        }
    }
    assert!(checked > 100, "too few entries checked: {checked}");
}
