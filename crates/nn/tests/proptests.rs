//! Property-based tests for the neural-network substrate.

use pipefisher_nn::{
    cross_entropy_backward, cross_entropy_loss, ForwardCtx, Layer, LayerNorm, Linear,
    MultiHeadAttention, TransformerBlock,
};
use pipefisher_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn input_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0..3.0f64, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_forward_is_affine(x in input_strategy(4, 6), seed in 0u64..1000) {
        // f(2x) − f(x) == f(x) − f(0) for an affine map, row-wise.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new("fc", 6, 3, &mut rng);
        let ctx = ForwardCtx::eval();
        let f0 = lin.forward(&Matrix::zeros(4, 6), &ctx);
        let f1 = lin.forward(&x, &ctx);
        let f2 = lin.forward(&x.scale(2.0), &ctx);
        let lhs = &f2 - &f1;
        let rhs = &f1 - &f0;
        prop_assert!((&lhs - &rhs).max_abs() < 1e-9);
    }

    #[test]
    fn layernorm_is_shift_invariant(x in input_strategy(3, 8), shift in -5.0..5.0f64) {
        let mut ln = LayerNorm::new("ln", 8);
        let ctx = ForwardCtx::eval();
        let base = ln.forward(&x, &ctx);
        let shifted = ln.forward(&x.map(|v| v + shift), &ctx);
        prop_assert!((&base - &shifted).max_abs() < 1e-6);
    }

    #[test]
    fn layernorm_is_scale_invariant(x in input_strategy(3, 8), scale in 0.5..4.0f64) {
        // Scaling an input row scales its deviation and std equally.
        let mut ln = LayerNorm::new("ln", 8);
        let ctx = ForwardCtx::eval();
        let base = ln.forward(&x, &ctx);
        let scaled = ln.forward(&x.scale(scale), &ctx);
        prop_assert!((&base - &scaled).max_abs() < 1e-5);
    }

    #[test]
    fn attention_is_permutation_equivariant_across_batch(
        x in input_strategy(4, 4),
        seed in 0u64..1000,
    ) {
        // Swapping two *sequences* in the batch swaps the outputs.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attn = MultiHeadAttention::new("a", 4, 2, 0.0, &mut rng);
        let ctx = ForwardCtx::eval().with_seq_len(2);
        let seq_a = x.slice_rows(0, 2);
        let seq_b = x.slice_rows(2, 4);
        let ab = attn.forward(&Matrix::vcat(&[&seq_a, &seq_b]), &ctx);
        let ba = attn.forward(&Matrix::vcat(&[&seq_b, &seq_a]), &ctx);
        prop_assert!((&ab.slice_rows(0, 2) - &ba.slice_rows(2, 4)).max_abs() < 1e-9);
        prop_assert!((&ab.slice_rows(2, 4) - &ba.slice_rows(0, 2)).max_abs() < 1e-9);
    }

    #[test]
    fn block_forward_backward_shapes_hold(
        x in input_strategy(6, 8),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut block = TransformerBlock::new("b", 8, 16, 2, 0.0, &mut rng);
        let ctx = ForwardCtx::train().with_seq_len(3);
        let y = block.forward(&x, &ctx);
        prop_assert_eq!(y.shape(), (6, 8));
        prop_assert!(y.all_finite());
        let dx = block.backward(&Matrix::full(6, 8, 1.0));
        prop_assert_eq!(dx.shape(), (6, 8));
        prop_assert!(dx.all_finite());
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_bounded_by_logits(
        logits in input_strategy(5, 7),
    ) {
        let targets: Vec<i64> = (0..5).map(|i| (i % 7) as i64).collect();
        let r = cross_entropy_loss(&logits, &targets);
        prop_assert!(r.loss >= 0.0);
        // CE ≤ max spread + ln(classes).
        let bound = 2.0 * logits.max_abs() + (7.0f64).ln() + 1e-9;
        prop_assert!(r.loss <= bound);
        // Gradient rows sum to ~0 (softmax simplex tangent).
        let g = cross_entropy_backward(&logits, &targets);
        for r in 0..5 {
            let s: f64 = g.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn kfac_capture_matches_input_and_dout(
        x in input_strategy(3, 4),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new("fc", 4, 2, &mut rng);
        let y = lin.forward(&x, &ForwardCtx::train_with_capture());
        let dout = y.map(|v| v.tanh());
        let _ = lin.backward(&dout);
        let stats = lin.kfac_stats();
        let a = stats.activations.as_ref().unwrap();
        let e = stats.errors.as_ref().unwrap();
        // Captured activations are x plus the bias column of ones.
        for r in 0..3 {
            for c in 0..4 {
                prop_assert!((a[(r, c)] - x[(r, c)]).abs() < 1e-12);
            }
            prop_assert!((a[(r, 4)] - 1.0).abs() < 1e-12);
        }
        prop_assert_eq!(e.clone(), dout);
    }
}
