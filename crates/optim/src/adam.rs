//! Adam with decoupled weight decay (AdamW-style).

use crate::Optimizer;
use pipefisher_nn::Parameter;
use pipefisher_tensor::Matrix;
use std::collections::HashMap;

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
///
/// This is the first-order optimizer the paper's Figure 3/4 baselines run
/// ("w/ Adam"): it has the same per-step compute profile as any
/// elementwise optimizer, so the pipeline bubbles it leaves behind are what
/// PipeFisher fills.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    moments: HashMap<String, (Matrix, Matrix)>,
    /// Scratch for the step direction, reused across parameters.
    dir: Matrix,
}

impl Adam {
    /// Creates an Adam optimizer with the given hyperparameters.
    pub fn new(beta1: f64, beta2: f64, eps: f64, weight_decay: f64) -> Self {
        Adam {
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            moments: HashMap::new(),
            dir: Matrix::default(),
        }
    }

    /// Current step count (for bias correction).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Computes the bias-corrected Adam direction for one parameter into
    /// `out` without applying it (shared with [`crate::Lamb`]). The moment
    /// matrices update in place; one fused loop performs the same
    /// per-element operation sequence as the original scale/axpy/hadamard
    /// passes, so results are bitwise identical.
    pub(crate) fn direction_into(&mut self, p: &Parameter, out: &mut Matrix) {
        if !self.moments.contains_key(&p.name) {
            // First visit only: steady-state steps never clone the name.
            self.moments.insert(
                p.name.clone(),
                (
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                ),
            );
        }
        let (m, v) = self
            .moments
            .get_mut(&p.name)
            .expect("moments just inserted");
        let (b1, b2) = (self.beta1, self.beta2);
        let (c1, c2) = (1.0 - b1, 1.0 - b2);
        let s1 = 1.0 / (1.0 - b1.powi(self.t as i32));
        let s2 = 1.0 / (1.0 - b2.powi(self.t as i32));
        let eps = self.eps;
        out.reset_shape(p.value.rows(), p.value.cols());
        let g = p.grad.as_slice();
        let ms = m.as_mut_slice();
        let vs = v.as_mut_slice();
        let os = out.as_mut_slice();
        for i in 0..g.len() {
            let gi = g[i];
            ms[i] = ms[i] * b1 + c1 * gi;
            vs[i] = vs[i] * b2 + c2 * (gi * gi);
            let mhat = ms[i] * s1;
            let vhat = vs[i] * s2;
            os[i] = mhat / (vhat.sqrt() + eps);
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(0.9, 0.999, 1e-8, 0.0)
    }
}

impl crate::StateSnapshot for Adam {
    fn export_state(&self) -> Vec<u8> {
        let mut w = pipefisher_ckpt::SectionWriter::new();
        w.u64(self.t);
        let entries = crate::snapshot::sorted_entries(&self.moments);
        w.u32(entries.len() as u32);
        for (name, (m, v)) in entries {
            w.str(name);
            w.matrix(m);
            w.matrix(v);
        }
        // `dir` is scratch: fully overwritten by `direction_into` before any
        // read, so it carries no cross-step state and is not captured.
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), pipefisher_ckpt::CkptError> {
        let mut r = pipefisher_ckpt::SectionReader::new("optim.adam", bytes);
        let t = r.u64()?;
        let count = r.u32()?;
        let mut moments = HashMap::new();
        for _ in 0..count {
            let name = r.str()?;
            let m = r.matrix()?;
            let v = r.matrix()?;
            crate::snapshot::insert_unique(&mut moments, "Adam moments", name, (m, v))?;
        }
        r.finish()?;
        self.t = t;
        self.moments = moments;
        Ok(())
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step_param(&mut self, p: &mut Parameter, lr: f64) {
        assert!(
            self.t > 0,
            "Adam: begin_step must be called before step_param"
        );
        let mut dir = std::mem::take(&mut self.dir);
        self.direction_into(p, &mut dir);
        if self.weight_decay > 0.0 {
            dir.axpy(self.weight_decay, &p.value);
        }
        p.value.axpy(-lr, &dir);
        self.dir = dir;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_signed_lr() {
        // With bias correction, the first Adam step is ≈ lr · sign(g).
        let mut opt = Adam::default();
        let mut p = Parameter::new("w", Matrix::full(1, 2, 0.0));
        p.grad = Matrix::from_rows(&[&[3.0, -0.01]]);
        opt.begin_step();
        opt.step_param(&mut p, 0.1);
        assert!((p.value[(0, 0)] + 0.1).abs() < 1e-6);
        assert!((p.value[(0, 1)] - 0.1).abs() < 1e-4);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::default();
        let mut p = Parameter::new("w", Matrix::full(1, 1, 4.0));
        for _ in 0..500 {
            p.grad = p.value.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.05);
        }
        assert!(p.value[(0, 0)].abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn step_without_begin_panics() {
        let mut opt = Adam::default();
        let mut p = Parameter::new("w", Matrix::zeros(1, 1));
        opt.step_param(&mut p, 0.1);
    }

    #[test]
    fn state_is_per_parameter() {
        let mut opt = Adam::default();
        let mut a = Parameter::new("a", Matrix::zeros(1, 1));
        let mut b = Parameter::new("b", Matrix::zeros(1, 1));
        a.grad = Matrix::full(1, 1, 1.0);
        b.grad = Matrix::full(1, 1, -1.0);
        opt.begin_step();
        opt.step_param(&mut a, 0.1);
        opt.step_param(&mut b, 0.1);
        assert!(a.value[(0, 0)] < 0.0);
        assert!(b.value[(0, 0)] > 0.0);
        assert_eq!(opt.moments.len(), 2);
    }
}
