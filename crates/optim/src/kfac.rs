//! K-FAC: Kronecker-Factored Approximate Curvature (paper §2.3).
//!
//! The optimizer maintains, per eligible [`Linear`] layer, the Kronecker
//! factors of the layerwise empirical Fisher block:
//!
//! * `A_l = ⟨â_l â_lᵀ⟩` — Gram matrix of bias-augmented input activations
//!   (**curvature work**, one GEMM per layer),
//! * `B_l = ⟨e_l e_lᵀ⟩` — Gram matrix of output-gradient error signals
//!   (**curvature work**, one GEMM per layer),
//! * `(A_l + λ_A I)⁻¹`, `(B_l + λ_B I)⁻¹` — damped Cholesky inverses
//!   (**inversion work**, two factorizations per layer),
//!
//! and applies the preconditioned gradient `B_l⁻¹ Ḡ_l A_l⁻¹`
//! (**precondition work**, two GEMMs per layer) every step — possibly with
//! *stale* factors/inverses, exactly as PipeFisher does when curvature and
//! inversion work is spread over several pipeline steps' bubbles.
//!
//! Damping is split between the factors with the standard π-correction
//! (`λ_A = λ·√π`, `λ_B = λ/√π`, `π = √((tr A / dim A)/(tr B / dim B))`).

use crate::Optimizer;
use pipefisher_nn::{Linear, ParamVisitor, Parameter};
use pipefisher_tensor::{cholesky_inverse_into, par, Matrix};
use std::collections::HashMap;

/// Hyperparameters for [`Kfac`].
#[derive(Debug, Clone, PartialEq)]
pub struct KfacConfig {
    /// Base damping λ added (π-split) to the factor diagonals.
    pub damping: f64,
    /// Exponential moving-average decay ρ for factor accumulation
    /// (`A ← ρ·A + (1−ρ)·A_batch`); `0.0` replaces the factor each refresh.
    pub ema_decay: f64,
    /// Refresh the Kronecker factors every this many steps (paper: 1–10 with
    /// PipeFisher, ~100 in prior distributed K-FAC).
    pub curvature_interval: usize,
    /// Refresh the inverses every this many steps.
    pub inversion_interval: usize,
    /// Optional KL-style clipping constant κ: the preconditioned gradients
    /// of all K-FAC layers are rescaled by `min(1, √(κ / (lr²·Σ gᵀg̃)))`,
    /// bounding the (approximate) KL step size as in KAISA.
    pub kl_clip: Option<f64>,
    /// Appendix A.2: approximate each Kronecker factor larger than this by
    /// a block-diagonal matrix with blocks of at most this size, so very
    /// wide layers (`d_ff` of scaled-up Transformers) keep per-piece
    /// inversion work bounded. `None` keeps full factors.
    pub factor_block_size: Option<usize>,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            damping: 1e-3,
            ema_decay: 0.0,
            curvature_interval: 1,
            inversion_interval: 1,
            kl_clip: Some(1e-3),
            factor_block_size: None,
        }
    }
}

/// Zeroes every entry of `m` outside the diagonal blocks of `block_size`
/// (the Appendix A.2 block-diagonal approximation). The damped inverse of
/// the result is then itself block-diagonal, so a full Cholesky of the
/// masked matrix computes exactly the per-block inverses.
fn block_diagonal_mask(m: &mut Matrix, block_size: usize) {
    let n = m.rows();
    if block_size == 0 || block_size >= n {
        return;
    }
    for i in 0..n {
        let bi = i / block_size;
        for j in 0..n {
            if j / block_size != bi {
                m[(i, j)] = 0.0;
            }
        }
    }
}

/// Reusable per-layer working buffers for [`Kfac::step`]. Each buffer is
/// re-dimensioned and fully overwritten before use; keeping them in the
/// per-layer state means curvature refreshes, inversions, and the
/// per-step preconditioning products all run without heap allocation once
/// the first step has sized them.
#[derive(Debug, Clone, Default)]
pub struct KfacScratch {
    /// Batch Gram matrix (`A` then `B`) during a curvature refresh.
    batch: Matrix,
    /// Damped copy of `factor_a` fed to the Cholesky inversion.
    damped_a: Matrix,
    /// Damped copy of `factor_b` fed to the Cholesky inversion.
    damped_b: Matrix,
    /// Staging buffer for the freshly computed `A⁻¹` (swapped into
    /// `inv_a` only if *both* inversions succeed).
    ia: Matrix,
    /// Staging buffer for the freshly computed `B⁻¹`.
    ib: Matrix,
    /// Combined `d_out × (d_in+1)` weight/bias gradient `Ḡ`.
    gbar: Matrix,
    /// Intermediate `B⁻¹·Ḡ` product.
    tmp: Matrix,
    /// Preconditioned gradient `B⁻¹·Ḡ·A⁻¹`.
    pre: Matrix,
}

/// Per-layer K-FAC state: factors, inverses, and staleness bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct LayerKfacState {
    /// Kronecker factor over inputs, `(d_in+1) × (d_in+1)`.
    pub factor_a: Option<Matrix>,
    /// Kronecker factor over output errors, `d_out × d_out`.
    pub factor_b: Option<Matrix>,
    /// Damped inverse of `factor_a`.
    pub inv_a: Option<Matrix>,
    /// Damped inverse of `factor_b`.
    pub inv_b: Option<Matrix>,
    /// Step at which the factors were last refreshed.
    pub last_curvature_step: u64,
    /// Step at which the inverses were last refreshed.
    pub last_inversion_step: u64,
    /// Reusable working buffers (see [`KfacScratch`]).
    pub scratch: KfacScratch,
}

impl LayerKfacState {
    /// Whether preconditioning is possible (both inverses exist).
    pub fn ready(&self) -> bool {
        self.inv_a.is_some() && self.inv_b.is_some()
    }
}

/// A model trainable by [`Kfac`]: exposes its K-FAC-eligible linear layers
/// and all of its parameters.
pub trait KfacModel {
    /// Visits every K-FAC-eligible [`Linear`] layer.
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear));

    /// Visits every trainable parameter (including non-K-FAC ones).
    fn visit_all_params(&mut self, f: ParamVisitor<'_>);
}

impl KfacModel for pipefisher_nn::BertForPreTraining {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.visit_linears(f);
    }

    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        self.visit_params(f);
    }
}

impl KfacModel for pipefisher_nn::BertModel {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.visit_linears(f);
    }

    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        self.visit_params(f);
    }
}

impl KfacModel for pipefisher_nn::GptForCausalLm {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.visit_linears(f);
    }

    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        self.visit_params(f);
    }
}

impl KfacModel for Linear {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(self);
    }

    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        use pipefisher_nn::Layer as _;
        self.visit_params(f);
    }
}

impl KfacModel for pipefisher_nn::StagedBert {
    fn visit_kfac_linears(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.visit_linears(f);
    }

    fn visit_all_params(&mut self, f: ParamVisitor<'_>) {
        self.visit_params(f);
    }
}

/// The K-FAC optimizer, wrapping a fallback first-order optimizer.
///
/// One [`Kfac::step`]:
///
/// 1. **Curvature** (if due): fold each layer's captured `(â_l, e_l)` batch
///    statistics into `A_l`, `B_l`.
/// 2. **Inversion** (if due): damped Cholesky inverses of both factors.
/// 3. **Precondition** (every step): rewrite each K-FAC layer's gradient to
///    `B_l⁻¹ Ḡ_l A_l⁻¹` using the freshest available (possibly stale)
///    inverses, then apply optional KL clipping.
/// 4. Run the fallback optimizer over *all* parameters — K-FAC layers see
///    preconditioned gradients, everything else (embeddings, LayerNorms, the
///    vocab head) sees raw gradients, matching the paper's "K-FAC for all
///    fully-connected layers, NVLAMB for the rest" setup.
#[derive(Debug, Clone)]
pub struct Kfac<O: Optimizer> {
    config: KfacConfig,
    fallback: O,
    states: HashMap<String, LayerKfacState>,
    t: u64,
}

impl<O: Optimizer> Kfac<O> {
    /// Creates a K-FAC optimizer over the given fallback.
    pub fn new(config: KfacConfig, fallback: O) -> Self {
        Kfac {
            config,
            fallback,
            states: HashMap::new(),
            t: 0,
        }
    }

    /// Current step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Borrows the per-layer state (for inspection in tests/experiments).
    pub fn state(&self, layer_name: &str) -> Option<&LayerKfacState> {
        self.states.get(layer_name)
    }

    /// Mutably borrows the per-layer state, creating it if absent. Exposed
    /// so experiments can inject externally computed factors (e.g. the
    /// pipeline simulator's staleness model).
    pub fn state_mut(&mut self, layer_name: &str) -> &mut LayerKfacState {
        self.states.entry(layer_name.to_string()).or_default()
    }

    /// The optimizer's hyperparameters.
    pub fn config(&self) -> &KfacConfig {
        &self.config
    }

    /// Whether the *next* [`Kfac::step`] (or [`Kfac::step_preconditioned`])
    /// will be a curvature-refresh step. The pipeline executor asks this
    /// before a step to decide whether to capture statistics and schedule
    /// fold work units into bubbles.
    pub fn next_step_refreshes_curvature(&self) -> bool {
        self.t.is_multiple_of(self.config.curvature_interval as u64)
    }

    /// Whether the next step will be an inversion-refresh step.
    pub fn next_step_refreshes_inversion(&self) -> bool {
        self.t.is_multiple_of(self.config.inversion_interval as u64)
    }

    /// Removes and returns a layer's state (creating a default one if
    /// absent) so the pipeline executor can loan it to a stage worker for
    /// bubble-filled fold/inversion work. Pair with [`Kfac::put_state`].
    pub fn take_state(&mut self, layer_name: &str) -> LayerKfacState {
        self.states.remove(layer_name).unwrap_or_default()
    }

    /// Returns a loaned layer state after external fold/inversion work.
    pub fn put_state(&mut self, layer_name: &str, state: LayerKfacState) {
        self.states.insert(layer_name.to_string(), state);
    }

    /// Borrows the fallback optimizer.
    pub fn fallback(&self) -> &O {
        &self.fallback
    }

    /// Mutably borrows the fallback optimizer.
    pub fn fallback_mut(&mut self) -> &mut O {
        &mut self.fallback
    }

    /// Runs one optimization step *assuming curvature and inversion refreshes
    /// already happened externally* (via [`fold_curvature_a`],
    /// [`fold_curvature_b`], and [`refresh_inverses`] on states loaned out
    /// with [`Kfac::take_state`]). Performs only phases 3–4 of
    /// [`Kfac::step`]: preconditioning, KL clipping, and the fallback
    /// update. Given identical factor states, the result is bitwise
    /// identical to [`Kfac::step`] — the refresh work units are the very
    /// same operations `step` would have run in-line.
    pub fn step_preconditioned(&mut self, model: &mut dyn KfacModel, lr: f64) {
        self.t += 1;

        let states = &mut self.states;
        let mut slots: Vec<LayerSlot> = Vec::new();
        model.visit_kfac_linears(&mut |lin: &mut Linear| {
            if !states.contains_key(lin.name()) {
                states.insert(lin.name().to_string(), LayerKfacState::default());
            }
            let state = std::mem::take(states.get_mut(lin.name()).expect("state just inserted"));
            slots.push(LayerSlot {
                lin: LinPtr(lin as *mut Linear),
                state,
                vdot: 0.0,
            });
        });

        // Phase 3 only: stats were consumed (and cleared) by the external
        // fold work; clearing here keeps parity with `step` for layers that
        // captured but were never folded.
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .map(|slot| {
                Box::new(move || {
                    // SAFETY: each slot points at a distinct layer (the
                    // visitor contract), and `model` is not touched while
                    // tasks run.
                    let lin = unsafe { &mut *slot.lin.0 };
                    lin.kfac_stats_mut().clear();
                    if slot.state.ready() {
                        slot.vdot = precondition(&mut slot.state, lin);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        par::run_tasks(tasks);

        let vsum: f64 = slots.iter().map(|s| s.vdot).fold(0.0, |acc, v| acc + v);
        if let Some(kappa) = self.config.kl_clip {
            let denom = lr * lr * vsum;
            if denom > kappa {
                let scale = (kappa / denom).sqrt();
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                    .iter_mut()
                    .filter(|slot| slot.state.ready())
                    .map(|slot| {
                        Box::new(move || {
                            // SAFETY: as above — disjoint layers.
                            let lin = unsafe { &mut *slot.lin.0 };
                            let (w, b, _) = lin.kfac_parts_mut();
                            w.grad.scale_inplace(scale);
                            b.grad.scale_inplace(scale);
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                par::run_tasks(tasks);
            }
        }

        for slot in slots {
            // SAFETY: tasks have joined; this is the only live alias.
            let lin = unsafe { &*slot.lin.0 };
            *states.get_mut(lin.name()).expect("state entry exists") = slot.state;
        }

        self.fallback.begin_step();
        let fallback = &mut self.fallback;
        model.visit_all_params(&mut |p: &mut Parameter| fallback.step_param(p, lr));
    }

    /// Runs one optimization step. See the type-level docs for the phases.
    ///
    /// Phases 1–3 are independent across layers (curvature, inversion, and
    /// preconditioning each touch only one layer's factors and gradients),
    /// so they run as one task per layer on the shared worker pool
    /// ([`pipefisher_tensor::par`]). The KL-clip statistic is reduced in
    /// layer-visitation order afterwards, so results are bitwise identical
    /// to the serial schedule at any thread count.
    pub fn step(&mut self, model: &mut dyn KfacModel, lr: f64) {
        self.t += 1;
        let t = self.t;
        let refresh_curv = (t - 1).is_multiple_of(self.config.curvature_interval as u64);
        let refresh_inv = (t - 1).is_multiple_of(self.config.inversion_interval as u64);

        // Pair each layer with its owned state, in visitation order. The
        // raw pointers let the borrow of `model` be split across tasks;
        // the visitor contract guarantees each layer is visited once, so
        // the pointers are disjoint.
        let states = &mut self.states;
        let mut slots: Vec<LayerSlot> = Vec::new();
        model.visit_kfac_linears(&mut |lin: &mut Linear| {
            // `take` instead of `remove` so steady-state steps never
            // re-allocate the name key; the entry is written back below.
            if !states.contains_key(lin.name()) {
                states.insert(lin.name().to_string(), LayerKfacState::default());
            }
            let state = std::mem::take(states.get_mut(lin.name()).expect("state just inserted"));
            slots.push(LayerSlot {
                lin: LinPtr(lin as *mut Linear),
                state,
                vdot: 0.0,
            });
        });
        debug_assert!(
            {
                let mut ptrs: Vec<*mut Linear> = slots.iter().map(|s| s.lin.0).collect();
                ptrs.sort();
                ptrs.windows(2).all(|w| w[0] != w[1])
            },
            "visit_kfac_linears visited a layer twice"
        );

        // Phases 1–3, one task per layer: fold captured statistics into the
        // factors (if due), refresh the damped inverses (if due), and
        // rewrite the gradient to B⁻¹ Ḡ A⁻¹ with the freshest inverses.
        let config = &self.config;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .map(|slot| {
                Box::new(move || {
                    // SAFETY: each slot points at a distinct layer (checked
                    // above), and `model` is not touched while tasks run.
                    let lin = unsafe { &mut *slot.lin.0 };
                    if refresh_curv {
                        update_curvature(&mut slot.state, lin, config.ema_decay, t);
                    }
                    lin.kfac_stats_mut().clear();
                    if refresh_inv && slot.state.factor_a.is_some() {
                        refresh_inverses(
                            &mut slot.state,
                            config.damping,
                            config.factor_block_size,
                            t,
                        );
                    }
                    if slot.state.ready() {
                        slot.vdot = precondition(&mut slot.state, lin);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        par::run_tasks(tasks);

        // KL clipping: Σ ⟨g, g̃⟩ reduced in visitation order (bitwise equal
        // to the serial accumulation), then one rescale pass per layer.
        let vsum: f64 = slots.iter().map(|s| s.vdot).fold(0.0, |acc, v| acc + v);
        if let Some(kappa) = self.config.kl_clip {
            let denom = lr * lr * vsum;
            if denom > kappa {
                let scale = (kappa / denom).sqrt();
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                    .iter_mut()
                    .filter(|slot| slot.state.ready())
                    .map(|slot| {
                        Box::new(move || {
                            // SAFETY: as above — disjoint layers.
                            let lin = unsafe { &mut *slot.lin.0 };
                            let (w, b, _) = lin.kfac_parts_mut();
                            w.grad.scale_inplace(scale);
                            b.grad.scale_inplace(scale);
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                par::run_tasks(tasks);
            }
        }

        // Hand the states back before touching `model` again.
        for slot in slots {
            // SAFETY: tasks have joined; this is the only live alias.
            let lin = unsafe { &*slot.lin.0 };
            *states.get_mut(lin.name()).expect("state entry exists") = slot.state;
        }

        // Phase 4: fallback update over all parameters.
        self.fallback.begin_step();
        let fallback = &mut self.fallback;
        model.visit_all_params(&mut |p: &mut Parameter| fallback.step_param(p, lr));
    }
}

impl<O: Optimizer + crate::StateSnapshot> crate::StateSnapshot for Kfac<O> {
    fn export_state(&self) -> Vec<u8> {
        let mut w = pipefisher_ckpt::SectionWriter::new();
        w.u64(self.t);
        // Fallback optimizer state rides along as a length-prefixed blob so
        // K-FAC's own layout is independent of the inner optimizer's.
        let fallback = crate::StateSnapshot::export_state(&self.fallback);
        w.u64(fallback.len() as u64);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&fallback);
        let mut w = pipefisher_ckpt::SectionWriter::new();
        let entries = crate::snapshot::sorted_entries(&self.states);
        w.u32(entries.len() as u32);
        for (name, st) in entries {
            w.str(name);
            w.opt_matrix(st.factor_a.as_ref());
            w.opt_matrix(st.factor_b.as_ref());
            w.opt_matrix(st.inv_a.as_ref());
            w.opt_matrix(st.inv_b.as_ref());
            w.u64(st.last_curvature_step);
            w.u64(st.last_inversion_step);
            // `st.scratch` is working memory, fully rebuilt on next use.
        }
        bytes.extend_from_slice(&w.into_bytes());
        bytes
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), pipefisher_ckpt::CkptError> {
        let mut r = pipefisher_ckpt::SectionReader::new("optim.kfac", bytes);
        let t = r.u64()?;
        let fallback_len = r.u64()? as usize;
        let mut fallback_bytes = Vec::with_capacity(fallback_len.min(1 << 20));
        for _ in 0..fallback_len {
            fallback_bytes.push(r.u8()?);
        }
        let count = r.u32()?;
        let mut states: HashMap<String, LayerKfacState> = HashMap::new();
        for _ in 0..count {
            let name = r.str()?;
            let st = LayerKfacState {
                factor_a: r.opt_matrix()?,
                factor_b: r.opt_matrix()?,
                inv_a: r.opt_matrix()?,
                inv_b: r.opt_matrix()?,
                last_curvature_step: r.u64()?,
                last_inversion_step: r.u64()?,
                scratch: KfacScratch::default(),
            };
            crate::snapshot::insert_unique(&mut states, "K-FAC layer", name, st)?;
        }
        r.finish()?;
        // Restore the fallback first so a malformed inner blob leaves this
        // optimizer untouched.
        crate::StateSnapshot::import_state(&mut self.fallback, &fallback_bytes)?;
        self.t = t;
        self.states = states;
        Ok(())
    }
}

/// Raw layer pointer that may cross thread boundaries: every task owns a
/// distinct layer, so concurrent access is disjoint.
struct LinPtr(*mut Linear);

// SAFETY: see [`LinPtr`] — pointees are disjoint per task and `Linear` has
// no thread affinity.
unsafe impl Send for LinPtr {}

/// One layer's share of a [`Kfac::step`]: the layer, its owned state, and
/// the KL-clip contribution it produced.
struct LayerSlot {
    lin: LinPtr,
    state: LayerKfacState,
    vdot: f64,
}

/// Folds a fresh batch Gram matrix into a (possibly absent) factor: EMA
/// when `ema_decay > 0`, replacement otherwise.
fn fold_factor(old: &mut Option<Matrix>, batch: &Matrix, ema_decay: f64) {
    match old {
        Some(prev) if ema_decay > 0.0 => {
            prev.scale_inplace(ema_decay);
            prev.axpy(1.0 - ema_decay, batch);
        }
        Some(prev) => prev.clone_from(batch),
        None => *old = Some(batch.clone()),
    }
}

/// Folds a layer's captured *activation* statistics into Kronecker factor
/// `A` — the schedulable `Curvature(A)` work unit the pipeline executor
/// runs inside a bubble. A no-op when nothing was captured. Only the
/// forward-captured activations are needed, matching the paper's release
/// rule (`A_l` work is released by the forward pass, §3.1).
///
/// A = âᵀâ / n (mean over tokens). The backward pass propagates mean-loss
/// gradients, so per-token error signals carry a 1/n factor; B = n·eᵀe
/// restores the ⟨e eᵀ⟩ scale of the sum-loss errors the paper defines.
/// (Any fixed rescaling is absorbed into damping/lr; we pick the
/// convention used by KAISA and kfac-pytorch.)
///
/// The Gram product lands in the shared `batch` scratch and is folded
/// into the factor by copy, so a refresh allocates nothing once the
/// buffers exist.
pub fn fold_curvature_a(state: &mut LayerKfacState, lin: &Linear, ema_decay: f64, t: u64) {
    let Some(acts) = &lin.kfac_stats().activations else {
        return; // nothing captured this step
    };
    let n = acts.rows().max(1) as f64;
    let batch = &mut state.scratch.batch;
    acts.gram_into(batch);
    batch.scale_inplace(1.0 / n);
    fold_factor(&mut state.factor_a, batch, ema_decay);
    state.last_curvature_step = t;
}

/// Folds a layer's captured *error-signal* statistics into Kronecker factor
/// `B` — the schedulable `Curvature(B)` work unit, released by the backward
/// pass. See [`fold_curvature_a`] for the scaling convention; a no-op when
/// nothing was captured.
pub fn fold_curvature_b(state: &mut LayerKfacState, lin: &Linear, ema_decay: f64, t: u64) {
    let stats = lin.kfac_stats();
    let Some(errs) = &stats.errors else {
        return; // nothing captured this step
    };
    let n = stats
        .activations
        .as_ref()
        .map_or_else(|| errs.rows(), |a| a.rows())
        .max(1) as f64;
    let batch = &mut state.scratch.batch;
    errs.gram_into(batch);
    batch.scale_inplace(n);
    fold_factor(&mut state.factor_b, batch, ema_decay);
    state.last_curvature_step = t;
}

/// Folds a layer's captured batch statistics into its Kronecker factors
/// (both halves, in `A`-then-`B` order — the order the executor's bubble
/// schedule also preserves).
fn update_curvature(state: &mut LayerKfacState, lin: &mut Linear, ema_decay: f64, t: u64) {
    fold_curvature_a(state, lin, ema_decay, t);
    fold_curvature_b(state, lin, ema_decay, t);
}

/// Recomputes the damped inverses of both factors (π-split damping),
/// optionally after the Appendix A.2 block-diagonal masking.
///
/// Public as the schedulable *inversion* work unit: the pipeline executor
/// runs it per layer inside bubbles. The inversion itself runs on the
/// blocked factorization engine ([`cholesky_inverse_into`]: panel Cholesky
/// with SYRK/GEMM trailing updates, multi-RHS TRSM, identity-RHS fast
/// path), which is bitwise identical to the naive reference
/// ([`pipefisher_tensor::cholesky_inverse_naive_into`]) — so bubble-filled
/// pipeline runs stay bit-for-bit reproducible against serial execution. Both factors are inverted together
/// because the π-split couples their damping, and the fresh inverses commit
/// only if *both* factorizations succeed — splitting `Inversion(A)` from
/// `Inversion(B)` would break that both-or-nothing semantics. A no-op when
/// a factor is missing (nothing captured yet), matching [`Kfac::step`]'s
/// `factor_a.is_some()` guard.
pub fn refresh_inverses(
    state: &mut LayerKfacState,
    damping: f64,
    block_size: Option<usize>,
    t: u64,
) {
    let (Some(fa), Some(fb)) = (&state.factor_a, &state.factor_b) else {
        return;
    };
    let tr_a = fa.trace().max(f64::MIN_POSITIVE);
    let tr_b = fb.trace().max(f64::MIN_POSITIVE);
    let mean_a = tr_a / fa.rows() as f64;
    let mean_b = tr_b / fb.rows() as f64;
    let pi = (mean_a / mean_b).sqrt().clamp(1e-6, 1e6);
    let lam_a = damping * pi;
    let lam_b = damping / pi;

    // Damped copies and inverse staging live in the per-layer scratch; the
    // fresh inverses are swapped into place only if *both* factorizations
    // succeed, preserving the partial-failure semantics of the allocating
    // version.
    let KfacScratch {
        damped_a: da,
        damped_b: db,
        ia,
        ib,
        ..
    } = &mut state.scratch;
    da.clone_from(fa);
    db.clone_from(fb);
    if let Some(bs) = block_size {
        block_diagonal_mask(da, bs);
        block_diagonal_mask(db, bs);
    }
    da.add_diag(lam_a.max(1e-12));
    db.add_diag(lam_b.max(1e-12));
    // Damped Gram matrices are SPD by construction; escalate damping on the
    // (numerically pathological) failure path rather than crash training.
    let inv_a = cholesky_inverse_into(da, ia).or_else(|_| {
        da.add_diag(damping * 10.0);
        cholesky_inverse_into(da, ia)
    });
    let inv_b = cholesky_inverse_into(db, ib).or_else(|_| {
        db.add_diag(damping * 10.0);
        cholesky_inverse_into(db, ib)
    });
    if let (Ok(()), Ok(())) = (inv_a, inv_b) {
        match &mut state.inv_a {
            Some(m) => std::mem::swap(m, ia),
            None => state.inv_a = Some(std::mem::take(ia)),
        }
        match &mut state.inv_b {
            Some(m) => std::mem::swap(m, ib),
            None => state.inv_b = Some(std::mem::take(ib)),
        }
        state.last_inversion_step = t;
    }
}

/// Rewrites the layer gradient to `B⁻¹ Ḡ A⁻¹`; returns `⟨g, g̃⟩` for clipping.
///
/// `Ḡ` is the `d_out × (d_in+1)` combined weight/bias gradient in the
/// paper's orientation (outputs × augmented inputs); our storage keeps the
/// weight `d_in × d_out`, so we transpose on the way in and out.
fn precondition(state: &mut LayerKfacState, lin: &mut Linear) -> f64 {
    let d_in = lin.d_in();
    let d_out = lin.d_out();
    let (w, b, _) = lin.kfac_parts_mut();

    // Ḡ assembly and both GEMMs reuse the per-layer scratch (every entry
    // is overwritten), so the every-step precondition path allocates
    // nothing once warmed up.
    let KfacScratch { gbar, tmp, pre, .. } = &mut state.scratch;
    gbar.reset_shape(d_out, d_in + 1);
    for o in 0..d_out {
        let row = gbar.row_mut(o);
        for (i, slot) in row[..d_in].iter_mut().enumerate() {
            *slot = w.grad[(i, o)];
        }
        row[d_in] = b.grad[(0, o)];
    }

    let inv_a = state.inv_a.as_ref().expect("precondition: inv_a");
    let inv_b = state.inv_b.as_ref().expect("precondition: inv_b");
    inv_b.matmul_into(gbar, tmp);
    tmp.matmul_into(inv_a, pre);
    let dot = gbar.dot(pre);

    for o in 0..d_out {
        let row = pre.row(o);
        for (i, &v) in row[..d_in].iter().enumerate() {
            w.grad[(i, o)] = v;
        }
        b.grad[(0, o)] = row[d_in];
    }
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use pipefisher_nn::{cross_entropy_backward, cross_entropy_loss, ForwardCtx, Layer};
    use pipefisher_tensor::{cholesky_inverse, init};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Explicit Kronecker product for validation.
    fn kron(a: &Matrix, b: &Matrix) -> Matrix {
        let (ar, ac) = a.shape();
        let (br, bc) = b.shape();
        let mut out = Matrix::zeros(ar * br, ac * bc);
        for i in 0..ar {
            for j in 0..ac {
                for p in 0..br {
                    for q in 0..bc {
                        out[(i * br + p, j * bc + q)] = a[(i, j)] * b[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Column-stacking vec of a matrix.
    fn vec_cols(m: &Matrix) -> Vec<f64> {
        let mut v = Vec::with_capacity(m.len());
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                v.push(m[(r, c)]);
            }
        }
        v
    }

    fn rand_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = init::normal(n, n, 1.0, &mut rng);
        let mut spd = m.matmul_tn(&m);
        spd.add_diag(0.5);
        spd
    }

    #[test]
    fn kronecker_inverse_identity() {
        // vec(B⁻¹·G·A⁻¹) == (A ⊗ B)⁻¹ vec(G) for symmetric A, B
        // (column-stacking vec) — the identity K-FAC preconditioning rests on.
        let a = rand_spd(3, 1);
        let b = rand_spd(2, 2);
        let g = init::normal(2, 3, 1.0, &mut StdRng::seed_from_u64(3));
        let ia = cholesky_inverse(&a).unwrap();
        let ib = cholesky_inverse(&b).unwrap();

        let lhs = ib.matmul(&g).matmul(&ia);
        let kron_inv = cholesky_inverse(&kron(&a, &b)).unwrap();
        let rhs_vec = kron_inv.matvec(&vec_cols(&g));
        let lhs_vec = vec_cols(&lhs);
        for (x, y) in lhs_vec.iter().zip(rhs_vec.iter()) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn refresh_inverses_matches_naive_factorization_bitwise() {
        // 65 crosses the blocked engine's 64-wide panel edge; 40 stays
        // inside a single panel.
        let fa = rand_spd(65, 7);
        let fb = rand_spd(40, 8);
        let mut state = LayerKfacState {
            factor_a: Some(fa.clone()),
            factor_b: Some(fb.clone()),
            ..Default::default()
        };
        let damping = 1e-3;
        refresh_inverses(&mut state, damping, None, 1);

        // Reproduce the π-split damping and invert with the naive
        // reference factorization: the blocked engine must match bitwise.
        let tr_a = fa.trace().max(f64::MIN_POSITIVE);
        let tr_b = fb.trace().max(f64::MIN_POSITIVE);
        let pi = ((tr_a / fa.rows() as f64) / (tr_b / fb.rows() as f64))
            .sqrt()
            .clamp(1e-6, 1e6);
        for (factor, lam, inv) in [
            (&fa, damping * pi, state.inv_a.as_ref().unwrap()),
            (&fb, damping / pi, state.inv_b.as_ref().unwrap()),
        ] {
            let mut damped = factor.clone();
            damped.add_diag(lam.max(1e-12));
            let mut expect = Matrix::zeros(factor.rows(), factor.rows());
            pipefisher_tensor::cholesky_inverse_naive_into(&damped, &mut expect).unwrap();
            for (x, y) in inv.as_slice().iter().zip(expect.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn identity_factors_leave_gradient_unchanged() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        lin.weight_mut().grad = init::normal(3, 2, 1.0, &mut rng);
        lin.bias_mut().grad = init::normal(1, 2, 1.0, &mut rng);
        let orig_w = lin.weight().grad.clone();
        let orig_b = lin.bias().grad.clone();

        let mut state = LayerKfacState {
            inv_a: Some(Matrix::eye(4)),
            inv_b: Some(Matrix::eye(2)),
            ..Default::default()
        };
        let _ = precondition(&mut state, &mut lin);
        assert!((&lin.weight().grad - &orig_w).max_abs() < 1e-12);
        assert!((&lin.bias().grad - &orig_b).max_abs() < 1e-12);
    }

    #[test]
    fn scaled_identity_rescales_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        lin.weight_mut().grad = Matrix::full(3, 2, 4.0);
        lin.bias_mut().grad = Matrix::full(1, 2, 4.0);
        let mut state = LayerKfacState {
            inv_a: Some(Matrix::eye(4).scale(0.5)),
            inv_b: Some(Matrix::eye(2).scale(0.5)),
            ..Default::default()
        };
        let _ = precondition(&mut state, &mut lin);
        assert!((lin.weight().grad[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((lin.bias().grad[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_example_factors_match_definition() {
        // With a single example the Kronecker factorization is exact:
        // A = â âᵀ, B = e eᵀ (paper §2.3). Check the captured statistics
        // produce exactly those rank-1 factors.
        let mut rng = StdRng::seed_from_u64(6);
        let mut lin = Linear::new("fc", 3, 4, &mut rng);
        let x = init::normal(1, 3, 1.0, &mut rng);
        let y = lin.forward(&x, &ForwardCtx::train_with_capture());
        let dlogits = cross_entropy_backward(&y, &[2]);
        let _ = lin.backward(&dlogits);

        let mut state = LayerKfacState::default();
        update_curvature(&mut state, &mut lin, 0.0, 1);
        let a = state.factor_a.unwrap();
        let b = state.factor_b.unwrap();
        // A[i][j] == â_i · â_j with â = [x, 1]
        let mut aug = x.clone().into_vec();
        aug.push(1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[(i, j)] - aug[i] * aug[j]).abs() < 1e-12);
            }
        }
        // B == e eᵀ (n=1 so the n·eᵀe scaling is neutral)
        let e = dlogits.row(0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((b[(i, j)] - e[i] * e[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kfac_beats_sgd_on_ill_conditioned_regression() {
        // Multiclass logistic regression with wildly different feature
        // scales: K-FAC's input-factor whitening should converge far faster
        // than SGD at the same learning rate.
        let n = 64;
        let d = 6;
        let classes = 4;
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = init::normal(n, d, 1.0, &mut rng);
        // Scale features by powers of 4 → condition number 4^(d-1).
        for r in 0..n {
            for c in 0..d {
                x[(r, c)] *= 4.0_f64.powi(c as i32);
            }
        }
        let targets: Vec<i64> = (0..n).map(|i| (i % classes) as i64).collect();

        let run = |use_kfac: bool| -> f64 {
            let mut rng = StdRng::seed_from_u64(8);
            let mut lin = Linear::new("fc", d, classes, &mut rng);
            let mut sgd = Sgd::new(0.0, 0.0);
            let mut kfac = Kfac::new(
                KfacConfig {
                    damping: 1e-2,
                    kl_clip: None,
                    ..Default::default()
                },
                Sgd::new(0.0, 0.0),
            );
            let mut loss = f64::NAN;
            for _ in 0..40 {
                use pipefisher_nn::Layer as _;
                lin.zero_grad();
                let ctx = if use_kfac {
                    ForwardCtx::train_with_capture()
                } else {
                    ForwardCtx::train()
                };
                let logits = lin.forward(&x, &ctx);
                loss = cross_entropy_loss(&logits, &targets).loss;
                let d = cross_entropy_backward(&logits, &targets);
                let _ = lin.backward(&d);
                if use_kfac {
                    kfac.step(&mut lin, 0.5);
                } else {
                    sgd.begin_step();
                    use pipefisher_nn::Layer as _;
                    lin.visit_params(&mut |p| sgd.step_param(p, 0.5));
                }
            }
            loss
        };

        let sgd_loss = run(false);
        let kfac_loss = run(true);
        assert!(
            kfac_loss < sgd_loss * 0.5,
            "kfac {kfac_loss} not clearly better than sgd {sgd_loss}"
        );
    }

    #[test]
    fn stale_inverses_are_used_between_refreshes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        let x = init::normal(8, 3, 1.0, &mut rng);
        let targets: Vec<i64> = (0..8).map(|i| (i % 2) as i64).collect();
        let mut kfac = Kfac::new(
            KfacConfig {
                curvature_interval: 3,
                inversion_interval: 3,
                ..Default::default()
            },
            Sgd::new(0.0, 0.0),
        );
        for step in 0..5u64 {
            use pipefisher_nn::Layer as _;
            lin.zero_grad();
            let logits = lin.forward(&x, &ForwardCtx::train_with_capture());
            let d = cross_entropy_backward(&logits, &targets);
            let _ = lin.backward(&d);
            kfac.step(&mut lin, 0.1);
            let st = kfac.state("fc").unwrap();
            // Refresh steps are 1 and 4 (t−1 divisible by 3).
            let expected = if step < 3 { 1 } else { 4 };
            assert_eq!(st.last_inversion_step, expected, "step {step}");
            assert!(st.ready());
        }
    }

    #[test]
    fn block_diagonal_factors_invert_blockwise() {
        // With block size 2, the inverse of the masked factor must itself be
        // block-diagonal, and each block must equal the inverse of the
        // corresponding (damped) sub-block.
        let mut rng = StdRng::seed_from_u64(20);
        let mut lin = Linear::new("fc", 3, 4, &mut rng); // A is 4×4 (bias-aug)
        let x = init::normal(16, 3, 1.0, &mut rng);
        let targets: Vec<i64> = (0..16).map(|i| (i % 4) as i64).collect();
        let mut kfac = Kfac::new(
            KfacConfig {
                factor_block_size: Some(2),
                damping: 1e-2,
                ..Default::default()
            },
            crate::Sgd::new(0.0, 0.0),
        );
        use pipefisher_nn::Layer as _;
        lin.zero_grad();
        let logits = lin.forward(&x, &ForwardCtx::train_with_capture());
        let d = cross_entropy_backward(&logits, &targets);
        let _ = lin.backward(&d);
        kfac.step(&mut lin, 0.1);
        let st = kfac.state("fc").unwrap();
        let inv_a = st.inv_a.as_ref().unwrap();
        assert_eq!(inv_a.rows(), 4);
        // Off-block entries of the inverse are zero.
        for i in 0..4 {
            for j in 0..4 {
                if i / 2 != j / 2 {
                    assert!(inv_a[(i, j)].abs() < 1e-10, "({i},{j}) = {}", inv_a[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn block_size_covering_whole_factor_is_exact() {
        // block_size ≥ dim must match the full-factor path exactly.
        let run = |block: Option<usize>| -> Matrix {
            let mut rng = StdRng::seed_from_u64(21);
            let mut lin = Linear::new("fc", 3, 2, &mut rng);
            let x = init::normal(8, 3, 1.0, &mut rng);
            let targets = vec![0i64, 1, 0, 1, 0, 1, 0, 1];
            let mut kfac = Kfac::new(
                KfacConfig {
                    factor_block_size: block,
                    kl_clip: None,
                    ..Default::default()
                },
                crate::Sgd::new(0.0, 0.0),
            );
            use pipefisher_nn::Layer as _;
            lin.zero_grad();
            let logits = lin.forward(&x, &ForwardCtx::train_with_capture());
            let d = cross_entropy_backward(&logits, &targets);
            let _ = lin.backward(&d);
            kfac.step(&mut lin, 0.1);
            lin.weight().value.clone()
        };
        let full = run(None);
        let covered = run(Some(64));
        assert!((&full - &covered).max_abs() < 1e-12);
    }

    #[test]
    fn external_work_units_match_inline_step_bitwise() {
        // Drive the fold/invert work units externally (the way the pipeline
        // executor does on stage workers) and finish with
        // `step_preconditioned`; the parameters must be bitwise identical to
        // the all-in-one `step` path at every step, including non-refresh
        // steps that reuse stale inverses.
        let config = KfacConfig {
            curvature_interval: 2,
            inversion_interval: 3,
            ema_decay: 0.5,
            ..Default::default()
        };
        let run = |external: bool| -> (Matrix, Matrix) {
            let mut rng = StdRng::seed_from_u64(33);
            let mut lin = Linear::new("fc", 5, 3, &mut rng);
            let x = init::normal(12, 5, 1.0, &mut rng);
            let targets: Vec<i64> = (0..12).map(|i| (i % 3) as i64).collect();
            let mut kfac = Kfac::new(config.clone(), Sgd::new(0.0, 0.0));
            for step in 0..7u64 {
                use pipefisher_nn::Layer as _;
                lin.zero_grad();
                let refresh_curv = kfac.next_step_refreshes_curvature();
                let refresh_inv = kfac.next_step_refreshes_inversion();
                assert_eq!(refresh_curv, step.is_multiple_of(2));
                assert_eq!(refresh_inv, step.is_multiple_of(3));
                let ctx = if !external || refresh_curv {
                    ForwardCtx::train_with_capture()
                } else {
                    ForwardCtx::train()
                };
                let logits = lin.forward(&x, &ctx);
                let d = cross_entropy_backward(&logits, &targets);
                let _ = lin.backward(&d);
                if external {
                    let t = kfac.step_count() + 1;
                    let mut state = kfac.take_state("fc");
                    if refresh_curv {
                        fold_curvature_a(&mut state, &lin, config.ema_decay, t);
                        fold_curvature_b(&mut state, &lin, config.ema_decay, t);
                        lin.kfac_stats_mut().clear();
                    }
                    if refresh_inv && state.factor_a.is_some() {
                        refresh_inverses(&mut state, config.damping, config.factor_block_size, t);
                    }
                    kfac.put_state("fc", state);
                    kfac.step_preconditioned(&mut lin, 0.1);
                } else {
                    kfac.step(&mut lin, 0.1);
                }
            }
            (lin.weight().value.clone(), lin.bias().value.clone())
        };
        let (w_inline, b_inline) = run(false);
        let (w_ext, b_ext) = run(true);
        assert_eq!(
            w_inline
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            w_ext
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            b_inline
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b_ext
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn kl_clip_bounds_update_norm() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        let x = init::normal(4, 3, 10.0, &mut rng); // big activations → big grads
        let targets = vec![0i64, 1, 0, 1];
        let kappa = 1e-4;
        let mut kfac = Kfac::new(
            KfacConfig {
                kl_clip: Some(kappa),
                damping: 1e-4,
                ..Default::default()
            },
            Sgd::new(0.0, 0.0),
        );
        use pipefisher_nn::Layer as _;
        lin.zero_grad();
        let logits = lin.forward(&x, &ForwardCtx::train_with_capture());
        let d = cross_entropy_backward(&logits, &targets);
        let _ = lin.backward(&d);

        // Capture the raw statistic before stepping by replaying phases.
        kfac.step(&mut lin, 1.0);
        // After clipping, lr²·Σ⟨g,g̃⟩ ≤ κ: verify by recomputing with
        // clipped grads against ORIGINAL g̃ relation — here we simply check
        // the clipped gradient norm is small (the raw norm would be huge).
        let gnorm = lin.weight().grad.frobenius_norm();
        assert!(gnorm < 1.0, "clip failed: grad norm {gnorm}");
    }
}
