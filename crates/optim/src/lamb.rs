//! LAMB (NVLAMB flavour) — the paper's first-order baseline.

use crate::{Adam, Optimizer};
use pipefisher_nn::Parameter;

/// LAMB (You et al., ICLR 2020) as implemented in NVIDIA's BERT codebase
/// ("NVLAMB"), the baseline optimizer in the paper's §4 experiments.
///
/// Per parameter tensor: compute the bias-corrected Adam direction, add
/// weight decay into the update, then scale by the layer-wise *trust ratio*
/// `‖θ‖ / ‖update‖` (clamped), so every layer moves a distance proportional
/// to its own weight norm — the property that lets BERT train with huge
/// batches (8K–64K in the paper).
#[derive(Debug, Clone)]
pub struct Lamb {
    inner: Adam,
    weight_decay: f64,
    max_trust_ratio: f64,
    /// Scratch for the per-parameter update, reused across parameters.
    update: pipefisher_tensor::Matrix,
}

impl Lamb {
    /// Creates a LAMB optimizer (betas 0.9/0.999, eps 1e-6 as in NVLAMB).
    pub fn new(weight_decay: f64) -> Self {
        Lamb {
            inner: Adam::new(0.9, 0.999, 1e-6, 0.0),
            weight_decay,
            max_trust_ratio: 10.0,
            update: pipefisher_tensor::Matrix::default(),
        }
    }

    /// Overrides the trust-ratio clamp (default 10, matching NVLAMB).
    pub fn with_max_trust_ratio(mut self, max: f64) -> Self {
        self.max_trust_ratio = max;
        self
    }

    /// The trust ratio LAMB would apply for the given norms.
    fn trust_ratio(&self, weight_norm: f64, update_norm: f64) -> f64 {
        if weight_norm > 0.0 && update_norm > 0.0 {
            (weight_norm / update_norm).min(self.max_trust_ratio)
        } else {
            1.0
        }
    }
}

impl Default for Lamb {
    fn default() -> Self {
        Lamb::new(0.01)
    }
}

impl crate::StateSnapshot for Lamb {
    fn export_state(&self) -> Vec<u8> {
        // All of LAMB's mutable state lives in the inner Adam (`update` is
        // scratch, fully overwritten by `direction_into` before any read).
        crate::StateSnapshot::export_state(&self.inner)
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), pipefisher_ckpt::CkptError> {
        crate::StateSnapshot::import_state(&mut self.inner, bytes)
    }
}

impl Optimizer for Lamb {
    fn begin_step(&mut self) {
        self.inner.begin_step();
    }

    fn step_param(&mut self, p: &mut Parameter, lr: f64) {
        assert!(
            self.inner.step_count() > 0,
            "Lamb: begin_step must be called before step_param"
        );
        let mut update = std::mem::take(&mut self.update);
        self.inner.direction_into(p, &mut update);
        if self.weight_decay > 0.0 {
            update.axpy(self.weight_decay, &p.value);
        }
        let ratio = self.trust_ratio(p.value.frobenius_norm(), update.frobenius_norm());
        p.value.axpy(-lr * ratio, &update);
        self.update = update;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::Matrix;

    #[test]
    fn trust_ratio_scales_update() {
        let mut opt = Lamb::new(0.0);
        // Large weights, tiny grad → trust ratio amplifies (up to clamp).
        let mut p = Parameter::new("w", Matrix::full(1, 4, 100.0));
        p.grad = Matrix::full(1, 4, 1e-3);
        opt.begin_step();
        let before = p.value[(0, 0)];
        opt.step_param(&mut p, 0.01);
        let moved = (before - p.value[(0, 0)]).abs();
        // Adam direction ≈ 1 per coordinate; plain Adam would move 0.01.
        // Trust ratio is clamped at 10 → move ≈ 0.1.
        assert!(moved > 0.05, "moved {moved}");
        assert!(moved < 0.2, "moved {moved}");
    }

    #[test]
    fn zero_weight_uses_unit_ratio() {
        let mut opt = Lamb::new(0.0);
        let mut p = Parameter::new("w", Matrix::zeros(1, 2));
        p.grad = Matrix::full(1, 2, 1.0);
        opt.begin_step();
        opt.step_param(&mut p, 0.1);
        // ratio = 1 → behaves like Adam: ≈ −0.1 per coordinate.
        assert!((p.value[(0, 0)] + 0.1).abs() < 1e-4);
    }

    #[test]
    fn weight_decay_enters_update_norm() {
        // NVLAMB puts decay inside the update before the trust ratio.
        let mut opt = Lamb::new(0.5);
        let mut p = Parameter::new("w", Matrix::full(1, 1, 2.0));
        p.grad = Matrix::full(1, 1, 0.0);
        // With zero grad, Adam direction is 0 and update = wd·θ = 1.0;
        // ratio = ‖θ‖/‖update‖ = 2.0 → θ ← 2 − lr·2·1 = 2 − 0.2.
        opt.begin_step();
        opt.step_param(&mut p, 0.1);
        assert!((p.value[(0, 0)] - 1.8).abs() < 1e-9);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Lamb::new(0.0);
        let mut p = Parameter::new("w", Matrix::full(1, 1, 3.0));
        for _ in 0..300 {
            p.grad = p.value.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.02);
        }
        assert!(p.value[(0, 0)].abs() < 0.05, "final {}", p.value[(0, 0)]);
    }
}
