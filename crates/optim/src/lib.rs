//! Optimizers for the PipeFisher reproduction.
//!
//! Implements the paper's two optimizer families:
//!
//! * **First-order baselines** — [`Sgd`], [`Adam`], and [`Lamb`] (the
//!   NVLAMB flavour used as the paper's baseline for BERT pretraining).
//! * **K-FAC** ([`Kfac`]) — the second-order method whose *curvature*,
//!   *inversion*, and *precondition* work PipeFisher schedules into pipeline
//!   bubbles. The implementation follows §2.3 of the paper: per-layer
//!   Kronecker factors `A_l` (from input activations) and `B_l` (from
//!   output-gradient errors), damped Cholesky inversion, and the
//!   preconditioned gradient `B_l⁻¹ G_l A_l⁻¹`.
//!
//! Learning-rate schedules (linear warmup + polynomial decay, Appendix B.2 /
//! Figure 7) live in [`schedule`].
//!
//! # Example
//!
//! ```
//! use pipefisher_optim::{Optimizer, Sgd};
//! use pipefisher_nn::Parameter;
//! use pipefisher_tensor::Matrix;
//!
//! let mut opt = Sgd::new(0.0, 0.0);
//! let mut p = Parameter::new("w", Matrix::full(1, 1, 1.0));
//! p.grad = Matrix::full(1, 1, 0.5);
//! opt.begin_step();
//! opt.step_param(&mut p, 0.1);
//! assert!((p.value[(0, 0)] - 0.95).abs() < 1e-12);
//! ```

mod adam;
mod kfac;
mod lamb;
pub mod schedule;
mod sgd;
mod shampoo;
mod snapshot;

pub use adam::Adam;
pub use kfac::{
    fold_curvature_a, fold_curvature_b, refresh_inverses, Kfac, KfacConfig, KfacModel, KfacScratch,
    LayerKfacState,
};
pub use lamb::Lamb;
pub use schedule::LrSchedule;
pub use sgd::Sgd;
pub use shampoo::{Shampoo, ShampooConfig};
pub use snapshot::StateSnapshot;

use pipefisher_nn::Parameter;

/// A first-order optimizer applied parameter-by-parameter.
///
/// Call [`Optimizer::begin_step`] once per optimization step (it advances
/// bias-correction counters), then [`Optimizer::step_param`] for every
/// parameter. State is keyed by [`Parameter::name`], so names must be unique.
pub trait Optimizer {
    /// Advances the step counter; call once before visiting parameters.
    fn begin_step(&mut self);

    /// Updates one parameter in place from its accumulated gradient.
    fn step_param(&mut self, p: &mut Parameter, lr: f64);

    /// Convenience: runs one full step over a parameter visitation.
    fn step<F>(&mut self, lr: f64, visit: F)
    where
        Self: Sized,
        F: FnOnce(&mut dyn FnMut(&mut Parameter)),
    {
        self.begin_step();
        visit(&mut |p: &mut Parameter| self.step_param(p, lr));
    }
}
