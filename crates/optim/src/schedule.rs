//! Learning-rate schedules (Appendix B.2 / Figure 7 of the paper).

/// A learning-rate schedule evaluated per optimization step.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f64),
    /// NVIDIA BERT's schedule: linear warmup to `base_lr` over
    /// `warmup_steps`, then polynomial decay
    /// `base_lr · (1 − t/total_steps)^power` where `t` counts *post-warmup*
    /// progress against the full horizon, matching Appendix B.2
    /// (`power = 0.5` in the paper).
    PolyWithWarmup {
        /// Peak learning rate reached at the end of warmup.
        base_lr: f64,
        /// Linear warmup length in steps.
        warmup_steps: usize,
        /// Total training steps (decay horizon).
        total_steps: usize,
        /// Decay exponent (0.5 in the paper).
        power: f64,
    },
}

impl LrSchedule {
    /// The paper's NVLAMB schedule for BERT-Base Phase 1:
    /// base 6e-3, warmup 2,000, total 7,038, power 0.5.
    pub fn nvlamb_bert_base() -> Self {
        LrSchedule::PolyWithWarmup {
            base_lr: 6e-3,
            warmup_steps: 2_000,
            total_steps: 7_038,
            power: 0.5,
        }
    }

    /// The paper's K-FAC schedule: identical but warmup shortened to 600
    /// steps, "resulting in larger learning rates than NVLAMB until the
    /// 2,000th step" (§4).
    pub fn kfac_bert_base() -> Self {
        LrSchedule::PolyWithWarmup {
            base_lr: 6e-3,
            warmup_steps: 600,
            total_steps: 7_038,
            power: 0.5,
        }
    }

    /// Learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f64 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::PolyWithWarmup {
                base_lr,
                warmup_steps,
                total_steps,
                power,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    base_lr * (step + 1) as f64 / warmup_steps as f64
                } else if step >= total_steps {
                    0.0
                } else {
                    base_lr * (1.0 - step as f64 / total_steps as f64).powf(power)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_linear() {
        let s = LrSchedule::PolyWithWarmup {
            base_lr: 1.0,
            warmup_steps: 10,
            total_steps: 100,
            power: 0.5,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(4) - 0.5).abs() < 1e-12);
        assert!((s.lr_at(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_is_monotonic_after_warmup() {
        let s = LrSchedule::nvlamb_bert_base();
        let mut prev = s.lr_at(2_000);
        for step in (2_001..7_038).step_by(100) {
            let lr = s.lr_at(step);
            assert!(lr < prev, "step {step}");
            prev = lr;
        }
    }

    #[test]
    fn kfac_schedule_is_hotter_early() {
        // The paper's key schedule property: K-FAC's LR exceeds NVLAMB's
        // until step 2,000, after which they coincide.
        let nvlamb = LrSchedule::nvlamb_bert_base();
        let kfac = LrSchedule::kfac_bert_base();
        for step in [0, 100, 599, 1_000, 1_500] {
            assert!(kfac.lr_at(step) > nvlamb.lr_at(step), "step {step}");
        }
        for step in [2_000, 3_000, 7_000] {
            assert!(
                (kfac.lr_at(step) - nvlamb.lr_at(step)).abs() < 1e-15,
                "step {step}"
            );
        }
    }

    #[test]
    fn ends_at_zero() {
        let s = LrSchedule::nvlamb_bert_base();
        assert_eq!(s.lr_at(7_038), 0.0);
        assert_eq!(s.lr_at(10_000), 0.0);
    }

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.3);
        assert_eq!(s.lr_at(0), 0.3);
        assert_eq!(s.lr_at(1_000_000), 0.3);
    }
}
