//! Stochastic gradient descent with momentum and decoupled weight decay.

use crate::Optimizer;
use pipefisher_nn::Parameter;
use pipefisher_tensor::Matrix;
use std::collections::HashMap;

/// SGD with classical momentum: `v ← μ·v + g`, `θ ← θ − lr·(v + wd·θ)`.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f64,
    weight_decay: f64,
    velocity: HashMap<String, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(momentum: f64, weight_decay: f64) -> Self {
        Sgd {
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(0.9, 0.0)
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn step_param(&mut self, p: &mut Parameter, lr: f64) {
        let update = if self.momentum > 0.0 {
            let v = self
                .velocity
                .entry(p.name.clone())
                .or_insert_with(|| Matrix::zeros(p.value.rows(), p.value.cols()));
            v.scale_inplace(self.momentum);
            v.axpy(1.0, &p.grad);
            v.clone()
        } else {
            p.grad.clone()
        };
        let mut step = update;
        if self.weight_decay > 0.0 {
            step.axpy(self.weight_decay, &p.value);
        }
        p.value.axpy(-lr, &step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(v: f64, g: f64) -> Parameter {
        let mut p = Parameter::new("w", Matrix::full(1, 1, v));
        p.grad = Matrix::full(1, 1, g);
        p
    }

    #[test]
    fn plain_sgd_update() {
        let mut opt = Sgd::new(0.0, 0.0);
        let mut p = param(1.0, 2.0);
        opt.step_param(&mut p, 0.1);
        assert!((p.value[(0, 0)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.5, 0.0);
        let mut p = param(0.0, 1.0);
        opt.step_param(&mut p, 1.0); // v=1, θ=-1
        opt.step_param(&mut p, 1.0); // v=1.5, θ=-2.5
        assert!((p.value[(0, 0)] + 2.5).abs() < 1e-12);
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut opt = Sgd::new(0.0, 0.1);
        let mut p = param(10.0, 0.0);
        opt.step_param(&mut p, 1.0);
        assert!((p.value[(0, 0)] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_converges() {
        // minimize 0.5·x² (grad = x)
        let mut opt = Sgd::new(0.9, 0.0);
        let mut p = param(5.0, 0.0);
        for _ in 0..200 {
            p.grad = p.value.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.05);
        }
        assert!(p.value[(0, 0)].abs() < 1e-3);
    }
}
