//! Stochastic gradient descent with momentum and decoupled weight decay.

use crate::Optimizer;
use pipefisher_nn::Parameter;
use pipefisher_tensor::Matrix;
use std::collections::HashMap;

/// SGD with classical momentum: `v ← μ·v + g`, `θ ← θ − lr·(v + wd·θ)`.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f64,
    weight_decay: f64,
    velocity: HashMap<String, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(momentum: f64, weight_decay: f64) -> Self {
        Sgd {
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(0.9, 0.0)
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn step_param(&mut self, p: &mut Parameter, lr: f64) {
        let (wd, mu) = (self.weight_decay, self.momentum);
        if mu > 0.0 {
            if !self.velocity.contains_key(&p.name) {
                // First visit only: steady-state steps never clone the name.
                self.velocity.insert(
                    p.name.clone(),
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                );
            }
            let v = self
                .velocity
                .get_mut(&p.name)
                .expect("velocity just inserted");
            // v ← μ·v + g, fused into one pass (bitwise identical to the
            // scale_inplace + axpy pair).
            for (vi, &gi) in v.as_mut_slice().iter_mut().zip(p.grad.as_slice().iter()) {
                *vi = *vi * mu + gi;
            }
            apply_step(&mut p.value, v, wd, lr);
        } else {
            apply_step(&mut p.value, &p.grad, wd, lr);
        }
    }
}

impl crate::StateSnapshot for Sgd {
    fn export_state(&self) -> Vec<u8> {
        let mut w = pipefisher_ckpt::SectionWriter::new();
        let entries = crate::snapshot::sorted_entries(&self.velocity);
        w.u32(entries.len() as u32);
        for (name, v) in entries {
            w.str(name);
            w.matrix(v);
        }
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), pipefisher_ckpt::CkptError> {
        let mut r = pipefisher_ckpt::SectionReader::new("optim.sgd", bytes);
        let count = r.u32()?;
        let mut velocity = HashMap::new();
        for _ in 0..count {
            let name = r.str()?;
            let v = r.matrix()?;
            crate::snapshot::insert_unique(&mut velocity, "SGD velocity", name, v)?;
        }
        r.finish()?;
        self.velocity = velocity;
        Ok(())
    }
}

/// `θ ← θ − lr·(base + wd·θ)` elementwise, without materializing the step.
/// Matches the original clone + axpy sequence bitwise: when `wd == 0` the
/// decay term is skipped entirely (adding `0.0` would flip `-0.0` signs).
fn apply_step(value: &mut Matrix, base: &Matrix, wd: f64, lr: f64) {
    let t = value.as_mut_slice();
    let b = base.as_slice();
    if wd > 0.0 {
        for (ti, &bi) in t.iter_mut().zip(b.iter()) {
            let step = bi + wd * *ti;
            *ti += -lr * step;
        }
    } else {
        for (ti, &bi) in t.iter_mut().zip(b.iter()) {
            *ti += -lr * bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(v: f64, g: f64) -> Parameter {
        let mut p = Parameter::new("w", Matrix::full(1, 1, v));
        p.grad = Matrix::full(1, 1, g);
        p
    }

    #[test]
    fn plain_sgd_update() {
        let mut opt = Sgd::new(0.0, 0.0);
        let mut p = param(1.0, 2.0);
        opt.step_param(&mut p, 0.1);
        assert!((p.value[(0, 0)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.5, 0.0);
        let mut p = param(0.0, 1.0);
        opt.step_param(&mut p, 1.0); // v=1, θ=-1
        opt.step_param(&mut p, 1.0); // v=1.5, θ=-2.5
        assert!((p.value[(0, 0)] + 2.5).abs() < 1e-12);
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut opt = Sgd::new(0.0, 0.1);
        let mut p = param(10.0, 0.0);
        opt.step_param(&mut p, 1.0);
        assert!((p.value[(0, 0)] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_converges() {
        // minimize 0.5·x² (grad = x)
        let mut opt = Sgd::new(0.9, 0.0);
        let mut p = param(5.0, 0.0);
        for _ in 0..200 {
            p.grad = p.value.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.05);
        }
        assert!(p.value[(0, 0)].abs() < 1e-3);
    }
}
