//! Shampoo: full-matrix-per-axis preconditioning (Gupta et al., 2018).
//!
//! The paper's §5 names pipelining Shampoo's work as the natural extension
//! of PipeFisher: Shampoo maintains Kronecker-factored *AdaGrad* statistics
//! of the same shapes as K-FAC's factors —
//!
//! * `L ← β·L + G·Gᵀ` and `R ← β·R + Gᵀ·G` per weight matrix
//!   (*statistics* work, after each backward),
//! * inverse fourth roots `L^{-1/4}`, `R^{-1/4}` via eigendecomposition
//!   (*root* work — the analogue of K-FAC's inversion, but costlier),
//! * preconditioning `G̃ = L^{-1/4} · G · R^{-1/4}` every step.
//!
//! Like K-FAC here, the roots may be *stale*: refreshed every
//! `root_interval` steps, which is exactly the degree of freedom a
//! PipeFisher-style bubble schedule controls.

use crate::Optimizer;
use pipefisher_nn::Parameter;
use pipefisher_tensor::{matrix_power_psd, Matrix};
use std::collections::HashMap;

/// Hyperparameters for [`Shampoo`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShampooConfig {
    /// Statistics decay β (1.0 = plain AdaGrad accumulation).
    pub beta: f64,
    /// Eigenvalue floor for the inverse roots.
    pub eps: f64,
    /// Steps between statistics updates.
    pub stats_interval: usize,
    /// Steps between root (eigendecomposition) refreshes.
    pub root_interval: usize,
    /// Grafting: scale the preconditioned update to the SGD update's norm,
    /// which stabilizes Shampoo when the roots are stale.
    pub graft_to_sgd_norm: bool,
}

impl Default for ShampooConfig {
    fn default() -> Self {
        ShampooConfig {
            beta: 0.95,
            eps: 1e-6,
            stats_interval: 1,
            root_interval: 1,
            graft_to_sgd_norm: true,
        }
    }
}

/// Per-parameter Shampoo state.
#[derive(Debug, Clone, Default)]
struct ShampooState {
    l: Option<Matrix>,
    r: Option<Matrix>,
    l_root: Option<Matrix>,
    r_root: Option<Matrix>,
}

/// The Shampoo optimizer.
///
/// Row-vector parameters (biases, LayerNorm gains) fall back to the
/// diagonal (AdaGrad-style `R`-only) path automatically because their `L`
/// statistic is 1×1.
#[derive(Debug, Clone)]
pub struct Shampoo {
    config: ShampooConfig,
    states: HashMap<String, ShampooState>,
    t: u64,
}

impl Shampoo {
    /// Creates a Shampoo optimizer.
    pub fn new(config: ShampooConfig) -> Self {
        Shampoo {
            config,
            states: HashMap::new(),
            t: 0,
        }
    }

    /// Current step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Accumulated statistics `(L, R)` for a parameter, if any.
    pub fn statistics(&self, name: &str) -> Option<(&Matrix, &Matrix)> {
        let st = self.states.get(name)?;
        Some((st.l.as_ref()?, st.r.as_ref()?))
    }

    /// Inverse fourth roots `(L^{-1/4}, R^{-1/4})` for a parameter, if
    /// computed.
    pub fn root_factors(&self, name: &str) -> Option<(&Matrix, &Matrix)> {
        let st = self.states.get(name)?;
        Some((st.l_root.as_ref()?, st.r_root.as_ref()?))
    }
}

impl Default for Shampoo {
    fn default() -> Self {
        Shampoo::new(ShampooConfig::default())
    }
}

impl crate::StateSnapshot for Shampoo {
    fn export_state(&self) -> Vec<u8> {
        let mut w = pipefisher_ckpt::SectionWriter::new();
        w.u64(self.t);
        let entries = crate::snapshot::sorted_entries(&self.states);
        w.u32(entries.len() as u32);
        for (name, st) in entries {
            w.str(name);
            w.opt_matrix(st.l.as_ref());
            w.opt_matrix(st.r.as_ref());
            w.opt_matrix(st.l_root.as_ref());
            w.opt_matrix(st.r_root.as_ref());
        }
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), pipefisher_ckpt::CkptError> {
        let mut r = pipefisher_ckpt::SectionReader::new("optim.shampoo", bytes);
        let t = r.u64()?;
        let count = r.u32()?;
        let mut states = HashMap::new();
        for _ in 0..count {
            let name = r.str()?;
            let st = ShampooState {
                l: r.opt_matrix()?,
                r: r.opt_matrix()?,
                l_root: r.opt_matrix()?,
                r_root: r.opt_matrix()?,
            };
            crate::snapshot::insert_unique(&mut states, "Shampoo", name, st)?;
        }
        r.finish()?;
        self.t = t;
        self.states = states;
        Ok(())
    }
}

impl Optimizer for Shampoo {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step_param(&mut self, p: &mut Parameter, lr: f64) {
        assert!(
            self.t > 0,
            "Shampoo: begin_step must be called before step_param"
        );
        let state = self.states.entry(p.name.clone()).or_default();
        let g = &p.grad;
        let refresh_stats = (self.t - 1).is_multiple_of(self.config.stats_interval as u64);
        let refresh_roots = (self.t - 1).is_multiple_of(self.config.root_interval as u64);

        if refresh_stats {
            // L += G·Gᵀ (rows × rows), R += Gᵀ·G (cols × cols).
            let ggt = g.matmul_nt(g);
            let gtg = g.matmul_tn(g);
            let fold = |old: &mut Option<Matrix>, fresh: Matrix, beta: f64| {
                *old = Some(match old.take() {
                    Some(mut prev) => {
                        prev.scale_inplace(beta);
                        prev.axpy(1.0, &fresh);
                        prev
                    }
                    None => fresh,
                });
            };
            fold(&mut state.l, ggt, self.config.beta);
            fold(&mut state.r, gtg, self.config.beta);
        }
        if refresh_roots {
            if let (Some(l), Some(r)) = (&state.l, &state.r) {
                state.l_root = matrix_power_psd(l, -0.25, self.config.eps).ok();
                state.r_root = matrix_power_psd(r, -0.25, self.config.eps).ok();
            }
        }

        let update = match (&state.l_root, &state.r_root) {
            (Some(lr_), Some(rr)) => {
                let mut u = lr_.matmul(g).matmul(rr);
                if self.config.graft_to_sgd_norm {
                    let un = u.frobenius_norm();
                    let gn = g.frobenius_norm();
                    if un > 0.0 && gn > 0.0 {
                        u.scale_inplace(gn / un);
                    }
                }
                u
            }
            _ => g.clone(), // first step before any roots exist
        };
        p.value.axpy(-lr, &update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quad_grad(p: &Parameter, scales: &Matrix) -> Matrix {
        // grad of 0.5·Σ s_ij·x_ij²  =  s ⊙ x
        p.value.hadamard(scales)
    }

    #[test]
    fn converges_on_scaled_quadratic() {
        // Badly scaled quadratic: Shampoo's per-axis whitening should reach
        // the optimum where plain SGD at the same LR crawls.
        let scales = Matrix::from_rows(&[&[1.0, 100.0], &[0.01, 1.0]]);
        let run = |shampoo: bool| -> f64 {
            let mut p = Parameter::new("w", Matrix::full(2, 2, 1.0));
            let mut opt = Shampoo::new(ShampooConfig {
                graft_to_sgd_norm: false,
                ..Default::default()
            });
            let mut sgd = crate::Sgd::new(0.0, 0.0);
            for _ in 0..60 {
                p.grad = quad_grad(&p, &scales);
                if shampoo {
                    opt.begin_step();
                    opt.step_param(&mut p, 0.1);
                } else {
                    sgd.begin_step();
                    sgd.step_param(&mut p, 0.1);
                }
            }
            // Loss = 0.5 Σ s x².
            0.5 * p.value.hadamard(&p.value).hadamard(&scales).sum()
        };
        let shampoo_loss = run(true);
        let sgd_loss = run(false);
        assert!(
            shampoo_loss < sgd_loss * 0.2,
            "shampoo {shampoo_loss} vs sgd {sgd_loss}"
        );
    }

    #[test]
    fn grafting_preserves_gradient_norm() {
        let mut p = Parameter::new("w", init::normal(3, 4, 1.0, &mut StdRng::seed_from_u64(1)));
        p.grad = init::normal(3, 4, 1.0, &mut StdRng::seed_from_u64(2));
        let before = p.value.clone();
        let gnorm = p.grad.frobenius_norm();
        let mut opt = Shampoo::default();
        opt.begin_step();
        opt.step_param(&mut p, 1.0);
        let moved = (&p.value - &before).frobenius_norm();
        assert!(
            (moved - gnorm).abs() < 1e-9,
            "moved {moved} vs gnorm {gnorm}"
        );
    }

    #[test]
    fn stale_roots_are_reused() {
        let mut p = Parameter::new("w", Matrix::full(2, 2, 1.0));
        let mut opt = Shampoo::new(ShampooConfig {
            root_interval: 5,
            ..Default::default()
        });
        for step in 0..6u64 {
            p.grad = Matrix::full(2, 2, 1.0);
            opt.begin_step();
            opt.step_param(&mut p, 0.01);
            let st = &opt.states["w"];
            if step == 0 {
                assert!(st.l_root.is_some(), "roots computed on first step");
            }
            let _ = st;
        }
        // Stats kept accumulating between refreshes.
        assert!(opt.states["w"].l.as_ref().unwrap().max_abs() > 1.0);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn step_without_begin_panics() {
        let mut opt = Shampoo::default();
        let mut p = Parameter::new("w", Matrix::zeros(1, 1));
        opt.step_param(&mut p, 0.1);
    }
}
