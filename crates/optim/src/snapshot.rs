//! Checkpoint capture of optimizer state (DESIGN.md §3.15).
//!
//! Each optimizer serializes its *mutable* state — step counters, moments,
//! curvature EMAs, cached inverses, per-layer staleness steps — but not its
//! hyperparameters, which the caller reconstructs from configuration.
//! Per-parameter maps are written sorted by name so the encoding is
//! deterministic; scratch buffers that are fully overwritten before use
//! (Adam's direction buffer, K-FAC's working set) are deliberately excluded,
//! which is safe precisely because they never carry state across steps.
//!
//! Refresh cadence is a pure function of the step counter (`(t-1) %
//! interval == 0`), so restoring `t` restores the K-FAC/Shampoo cadence
//! phase exactly — a resumed run refreshes curvature and inverses on the
//! same absolute steps the uninterrupted run does.

use std::collections::HashMap;

use pipefisher_ckpt::CkptError;

/// Serialization of an optimizer's mutable state for checkpointing.
///
/// The contract backing bitwise resume: for any optimizer `o`,
/// `import_state(export_state(o))` into a freshly constructed optimizer of
/// the same configuration yields one that produces bit-identical updates to
/// `o` on every subsequent step.
pub trait StateSnapshot {
    /// Serializes the mutable state.
    fn export_state(&self) -> Vec<u8>;

    /// Replaces the mutable state with one captured by
    /// [`StateSnapshot::export_state`]. On error, state is unchanged.
    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CkptError>;
}

/// A `HashMap`'s entries sorted by key, for deterministic encoding.
pub(crate) fn sorted_entries<V>(map: &HashMap<String, V>) -> Vec<(&String, &V)> {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries
}

/// Inserts `(name, value)` into `map`, rejecting duplicates as
/// [`CkptError::Malformed`].
pub(crate) fn insert_unique<V>(
    map: &mut HashMap<String, V>,
    context: &str,
    name: String,
    value: V,
) -> Result<(), CkptError> {
    if map.insert(name.clone(), value).is_some() {
        return Err(CkptError::Malformed {
            detail: format!("duplicate entry '{name}' in {context} state"),
        });
    }
    Ok(())
}
