//! Optimizer state checkpointing: save → load mid-run must be invisible.
//!
//! For each of the five optimizers, an interrupted run (k steps → export
//! state → import into a fresh instance → N−k more steps) must produce
//! bit-identical parameters to an uninterrupted N-step run. k is chosen so
//! the interruption lands *mid-cadence* for the interval-driven optimizers
//! (Shampoo statistics/roots, K-FAC curvature/inversion), proving the
//! cadence phase is part of the captured state.

use pipefisher_nn::{
    cross_entropy_backward, export_params_with, import_params_with, ForwardCtx, Layer, Linear,
};
use pipefisher_optim::{
    Adam, Kfac, KfacConfig, Lamb, Optimizer, Sgd, Shampoo, ShampooConfig, StateSnapshot,
};
use pipefisher_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const D_IN: usize = 5;
const CLASSES: usize = 3;
const LR: f64 = 0.05;
const TOTAL: u64 = 9;
/// Mid-cadence for every interval-3 optimizer: 4 % 3 != 0.
const KILL_AT: u64 = 4;

fn fresh_problem() -> (Linear, Matrix, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(17);
    let lin = Linear::new("fc", D_IN, CLASSES, &mut rng);
    let x = init::normal(12, D_IN, 1.0, &mut rng);
    let targets: Vec<i64> = (0..12).map(|i| (i % CLASSES) as i64).collect();
    (lin, x, targets)
}

fn first_order_steps<O: Optimizer>(
    lin: &mut Linear,
    opt: &mut O,
    x: &Matrix,
    targets: &[i64],
    steps: u64,
) {
    for _ in 0..steps {
        lin.zero_grad();
        let logits = lin.forward(x, &ForwardCtx::train_with_capture());
        let d = cross_entropy_backward(&logits, targets);
        let _ = lin.backward(&d);
        opt.begin_step();
        lin.visit_params(&mut |p| opt.step_param(p, LR));
    }
}

fn kfac_steps(lin: &mut Linear, opt: &mut Kfac<Sgd>, x: &Matrix, targets: &[i64], steps: u64) {
    for _ in 0..steps {
        lin.zero_grad();
        let logits = lin.forward(x, &ForwardCtx::train_with_capture());
        let d = cross_entropy_backward(&logits, targets);
        let _ = lin.backward(&d);
        opt.step(lin, LR);
    }
}

fn param_bits(lin: &mut Linear) -> Vec<u64> {
    let mut bits = Vec::new();
    lin.visit_params(&mut |p| bits.extend(p.value.as_slice().iter().map(|v| v.to_bits())));
    bits
}

/// Generic interrupted-vs-uninterrupted harness; `drive` advances one
/// optimizer family's training loop.
fn assert_resume_invisible<O: StateSnapshot>(
    make: impl Fn() -> O,
    drive: impl Fn(&mut Linear, &mut O, &Matrix, &[i64], u64),
) {
    // Uninterrupted oracle.
    let (mut lin_full, x, targets) = fresh_problem();
    let mut opt_full = make();
    drive(&mut lin_full, &mut opt_full, &x, &targets, TOTAL);
    let want = param_bits(&mut lin_full);

    // Interrupted run: k steps, checkpoint, drop everything.
    let (mut lin_a, x, targets) = fresh_problem();
    let mut opt_a = make();
    drive(&mut lin_a, &mut opt_a, &x, &targets, KILL_AT);
    let params = export_params_with(|f| lin_a.visit_params(f));
    let state = opt_a.export_state();
    drop((lin_a, opt_a));

    // Resume into fresh instances.
    let (mut lin_b, x, targets) = fresh_problem();
    import_params_with(&params, |f| lin_b.visit_params(f)).unwrap();
    let mut opt_b = make();
    opt_b.import_state(&state).unwrap();
    // Re-export of freshly imported state is byte-identical.
    assert_eq!(
        opt_b.export_state(),
        state,
        "state round trip not bytes-equal"
    );
    drive(&mut lin_b, &mut opt_b, &x, &targets, TOTAL - KILL_AT);

    assert_eq!(
        param_bits(&mut lin_b),
        want,
        "resumed params differ bitwise"
    );
    // Optimizer state converged to the same bytes as the uninterrupted run.
    assert_eq!(opt_b.export_state(), opt_full.export_state());
}

#[test]
fn sgd_resume_is_bitwise_invisible() {
    assert_resume_invisible(|| Sgd::new(0.9, 0.01), first_order_steps);
}

#[test]
fn adam_resume_is_bitwise_invisible() {
    assert_resume_invisible(|| Adam::new(0.9, 0.999, 1e-8, 0.01), first_order_steps);
}

#[test]
fn lamb_resume_is_bitwise_invisible() {
    assert_resume_invisible(|| Lamb::new(0.01), first_order_steps);
}

#[test]
fn shampoo_resume_is_bitwise_invisible_mid_cadence() {
    assert_resume_invisible(
        || {
            Shampoo::new(ShampooConfig {
                stats_interval: 3,
                root_interval: 3,
                ..ShampooConfig::default()
            })
        },
        first_order_steps,
    );
}

#[test]
fn kfac_resume_is_bitwise_invisible_mid_cadence() {
    assert_resume_invisible(
        || {
            Kfac::new(
                KfacConfig {
                    damping: 1e-2,
                    curvature_interval: 3,
                    inversion_interval: 3,
                    ..KfacConfig::default()
                },
                Sgd::new(0.9, 0.0),
            )
        },
        kfac_steps,
    );
}

#[test]
fn kfac_cadence_counters_survive_round_trip() {
    let (mut lin, x, targets) = fresh_problem();
    let mut opt = Kfac::new(
        KfacConfig {
            curvature_interval: 3,
            inversion_interval: 3,
            ..KfacConfig::default()
        },
        Sgd::new(0.0, 0.0),
    );
    kfac_steps(&mut lin, &mut opt, &x, &targets, KILL_AT);
    let st = opt.state("fc").expect("layer state exists");
    let (curv, inv) = (st.last_curvature_step, st.last_inversion_step);
    assert!(curv > 0, "refresh should have happened by step {KILL_AT}");

    let bytes = opt.export_state();
    let mut back = Kfac::new(opt.config().clone(), Sgd::new(0.0, 0.0));
    back.import_state(&bytes).unwrap();
    assert_eq!(back.step_count(), KILL_AT);
    let st = back.state("fc").expect("restored layer state");
    assert_eq!(st.last_curvature_step, curv);
    assert_eq!(st.last_inversion_step, inv);
    assert_eq!(
        back.next_step_refreshes_curvature(),
        opt.next_step_refreshes_curvature()
    );
    assert_eq!(
        back.next_step_refreshes_inversion(),
        opt.next_step_refreshes_inversion()
    );
}

#[test]
fn corrupt_optimizer_state_is_rejected_structurally() {
    let (mut lin, x, targets) = fresh_problem();
    let mut opt = Adam::new(0.9, 0.999, 1e-8, 0.0);
    first_order_steps(&mut lin, &mut opt, &x, &targets, 2);
    let bytes = opt.export_state();
    let mut fresh = Adam::new(0.9, 0.999, 1e-8, 0.0);
    // Truncation at every prefix length must error, never panic.
    for cut in 0..bytes.len() {
        assert!(fresh.import_state(&bytes[..cut]).is_err(), "cut {cut}");
    }
    // Trailing garbage is rejected too.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(fresh.import_state(&extended).is_err());
}
