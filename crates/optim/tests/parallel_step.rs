//! `Kfac::step` parallelizes its per-layer work (curvature EMA, inversion,
//! preconditioning) across the worker pool, but every layer's arithmetic is
//! independent and the KL-clip statistic is reduced in layer-visitation
//! order — so a multi-threaded step must be **bitwise** identical to the
//! single-threaded one.

use pipefisher_nn::{BertConfig, BertForPreTraining, ForwardCtx, PreTrainingBatch, IGNORE_INDEX};
use pipefisher_optim::{Kfac, KfacConfig, Lamb};
use pipefisher_tensor::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: usize = 30;
const SEQ: usize = 8;
const BATCH: usize = 4;

fn make_batch(rng: &mut StdRng) -> PreTrainingBatch {
    let n = BATCH * SEQ;
    PreTrainingBatch {
        token_ids: (0..n).map(|_| rng.gen_range(0..VOCAB)).collect(),
        segment_ids: (0..n).map(|i| usize::from(i % SEQ >= SEQ / 2)).collect(),
        mlm_targets: (0..n)
            .map(|_| {
                if rng.gen_range(0..4usize) == 0 {
                    rng.gen_range(0..VOCAB) as i64
                } else {
                    IGNORE_INDEX
                }
            })
            .collect(),
        nsp_targets: (0..BATCH)
            .map(|_| rng.gen_range(0..2usize) as i64)
            .collect(),
        seq: SEQ,
    }
}

fn snapshot(model: &mut BertForPreTraining) -> Vec<(String, Vec<u64>)> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| {
        out.push((
            p.name.clone(),
            p.value.as_slice().iter().map(|v| v.to_bits()).collect(),
        ))
    });
    out
}

#[test]
fn kfac_step_is_bitwise_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = BertForPreTraining::new(BertConfig::tiny(VOCAB, SEQ + 2), 0.0, &mut rng);
    let batch = make_batch(&mut rng);

    let cfg = KfacConfig {
        damping: 1e-2,
        curvature_interval: 1,
        inversion_interval: 1,
        ..Default::default()
    };
    let mut opt_serial = Kfac::new(cfg.clone(), Lamb::new(0.01));
    let mut opt_parallel = Kfac::new(cfg, Lamb::new(0.01));

    // Populate grads + K-FAC statistics once, then fork the model so both
    // optimizers start from identical state (stats included — they are part
    // of the layer and survive `clone`).
    model.zero_grad();
    let _ = model.train_step(&batch, &ForwardCtx::train_with_capture());
    let mut twin = model.clone();

    // Two steps: the first builds factors and inverses from scratch, the
    // second exercises the EMA/refresh paths on existing state. Stats are
    // recaptured per model between steps; as long as every step so far was
    // bitwise identical, both models see identical statistics.
    for _ in 0..2 {
        par::set_max_threads(1);
        opt_serial.step(&mut model, 1e-3);
        par::set_max_threads(2);
        opt_parallel.step(&mut twin, 1e-3);
        par::set_max_threads(0);

        let serial = snapshot(&mut model);
        let parallel = snapshot(&mut twin);
        assert_eq!(serial.len(), parallel.len());
        for ((name_s, bits_s), (name_p, bits_p)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(name_s, name_p);
            assert!(
                bits_s == bits_p,
                "parameter {name_s} differs between 1 and 2 threads"
            );
        }

        model.zero_grad();
        let _ = model.train_step(&batch, &ForwardCtx::train_with_capture());
        twin.zero_grad();
        let _ = twin.train_step(&batch, &ForwardCtx::train_with_capture());
    }
}
