//! Property-based tests for optimizer invariants.

use pipefisher_nn::{cross_entropy_backward, ForwardCtx, Layer, Linear, Parameter};
use pipefisher_optim::{Adam, Kfac, KfacConfig, Lamb, Optimizer, Sgd};
use pipefisher_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grad_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sgd_update_is_linear_in_gradient(g in grad_strategy(3, 4), c in 0.1..3.0f64) {
        // Without momentum/decay, Δθ(c·g) == c·Δθ(g).
        let step = |grad: &Matrix| -> Matrix {
            let mut opt = Sgd::new(0.0, 0.0);
            let mut p = Parameter::new("w", Matrix::zeros(3, 4));
            p.grad = grad.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.1);
            p.value
        };
        let d1 = step(&g);
        let d2 = step(&g.scale(c));
        prop_assert!((&d2 - &d1.scale(c)).max_abs() < 1e-12);
    }

    #[test]
    fn adam_first_step_is_gradient_scale_invariant(g in grad_strategy(2, 3), c in 0.5..10.0f64) {
        // Adam's bias-corrected first step is ±lr·sign-ish: m̂/√v̂ is
        // invariant to positive gradient rescaling.
        let step = |grad: &Matrix| -> Matrix {
            let mut opt = Adam::default();
            let mut p = Parameter::new("w", Matrix::zeros(2, 3));
            p.grad = grad.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.1);
            p.value
        };
        // Avoid exact zeros where sign is undefined.
        let g = g.map(|x| if x.abs() < 1e-3 { 1e-3 } else { x });
        let d1 = step(&g);
        let d2 = step(&g.scale(c));
        prop_assert!((&d1 - &d2).max_abs() < 1e-6);
    }

    #[test]
    fn lamb_update_norm_tracks_weight_norm(
        g in grad_strategy(3, 3),
        wscale in 0.5..5.0f64,
    ) {
        // With the trust ratio unclamped, ‖Δθ‖ == lr·‖θ‖ for nonzero
        // gradients (wd = 0): the defining LAMB property.
        let g = g.map(|x| if x.abs() < 1e-3 { 1e-3 } else { x });
        let mut opt = Lamb::new(0.0).with_max_trust_ratio(1e9);
        let w0 = Matrix::full(3, 3, wscale);
        let mut p = Parameter::new("w", w0.clone());
        p.grad = g;
        opt.begin_step();
        opt.step_param(&mut p, 0.1);
        let moved = (&p.value - &w0).frobenius_norm();
        let expect = 0.1 * w0.frobenius_norm();
        prop_assert!((moved - expect).abs() < 1e-9, "{moved} vs {expect}");
    }

    #[test]
    fn kfac_preconditioning_is_linear_in_gradient(
        scale in 0.25..4.0f64,
        seed in 0u64..500,
    ) {
        // B⁻¹(c·G)A⁻¹ = c·(B⁻¹GA⁻¹): with fixed factors, the preconditioned
        // update is linear in the gradient. Run two single steps from the
        // same state with gradients G and c·G and compare updates.
        let run = |c: f64| -> Matrix {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lin = Linear::new("fc", 3, 2, &mut rng);
            let w0 = lin.weight().value.clone();
            let mut kfac = Kfac::new(
                KfacConfig { kl_clip: None, ..Default::default() },
                Sgd::new(0.0, 0.0),
            );
            let x = pipefisher_tensor::init::normal(6, 3, 1.0, &mut rng);
            lin.zero_grad();
            let logits = lin.forward(&x, &ForwardCtx::train_with_capture());
            let d = cross_entropy_backward(&logits, &[0, 1, 0, 1, 0, 1]);
            let _ = lin.backward(&d);
            // Rescale the gradient after capture (factors stay fixed).
            lin.weight_mut().grad.scale_inplace(c);
            lin.bias_mut().grad.scale_inplace(c);
            kfac.step(&mut lin, 1.0);
            &lin.weight().value - &w0
        };
        let base = run(1.0);
        let scaled = run(scale);
        prop_assert!((&scaled - &base.scale(scale)).max_abs() < 1e-9);
    }

    #[test]
    fn optimizers_never_produce_nonfinite(
        g in grad_strategy(2, 2),
        lr in 1e-4..1.0f64,
    ) {
        for mode in 0..3 {
            let mut p = Parameter::new("w", Matrix::full(2, 2, 0.5));
            p.grad = g.clone();
            match mode {
                0 => {
                    let mut o = Sgd::new(0.9, 0.01);
                    o.begin_step();
                    o.step_param(&mut p, lr);
                }
                1 => {
                    let mut o = Adam::default();
                    o.begin_step();
                    o.step_param(&mut p, lr);
                }
                _ => {
                    let mut o = Lamb::new(0.01);
                    o.begin_step();
                    o.step_param(&mut p, lr);
                }
            }
            prop_assert!(p.value.all_finite(), "mode {mode}");
        }
    }
}
