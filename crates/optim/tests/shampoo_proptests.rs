//! Property-based tests for Shampoo's structural invariants: the
//! accumulated statistics and their inverse roots stay symmetric
//! positive-(semi)definite, stepping is bitwise identical across compute
//! thread counts, and degenerate (zero-sized) parameter shapes neither
//! panic nor poison the state.

use pipefisher_optim::{Optimizer, Shampoo, ShampooConfig};
use pipefisher_tensor::{par, Matrix};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that touch the process-wide thread-count override.
fn par_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn grad_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

/// Quadratic form `vᵀ·M·v` for an `n`-vector given as an `n × 1` matrix.
fn quad_form(m: &Matrix, v: &Matrix) -> f64 {
    v.matmul_tn(&m.matmul(v)).as_slice()[0]
}

/// Deterministic probe vectors spanning a few directions in `R^n`.
fn probes(n: usize) -> Vec<Matrix> {
    let mut out = Vec::new();
    for k in 0..4usize {
        let data: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + k * 13 + 1) % 11) as f64 / 11.0 - 0.4)
            .collect();
        out.push(Matrix::from_vec(n, 1, data));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any gradient sequence, `L` and `R` are symmetric PSD (sums of
    /// Gram matrices) and the inverse fourth roots are symmetric *strictly*
    /// PD (eigenvalues floored at `eps` before the negative power).
    #[test]
    fn statistics_and_roots_stay_spd(
        g1 in grad_strategy(4, 3),
        g2 in grad_strategy(4, 3),
    ) {
        let mut opt = Shampoo::new(ShampooConfig::default());
        let mut p = pipefisher_nn::Parameter::new("w", Matrix::zeros(4, 3));
        for g in [&g1, &g2] {
            p.grad = g.clone();
            opt.begin_step();
            opt.step_param(&mut p, 0.01);
        }
        let (l, r) = opt.statistics("w").expect("statistics exist after steps");
        let (lr, rr) = opt.root_factors("w").expect("roots exist after steps");
        for (m, n, label) in [(l, 4, "L"), (r, 3, "R")] {
            prop_assert!(m.is_symmetric(1e-12), "{label} not symmetric");
            for v in probes(n) {
                prop_assert!(quad_form(m, &v) >= -1e-12, "{label} not PSD");
            }
        }
        for (m, n, label) in [(lr, 4, "L^-1/4"), (rr, 3, "R^-1/4")] {
            prop_assert!(m.is_symmetric(1e-9), "{label} not symmetric");
            for v in probes(n) {
                let vtv = quad_form(&Matrix::eye(n), &v);
                prop_assert!(
                    quad_form(m, &v) > 1e-12 * vtv,
                    "{label} not strictly PD"
                );
            }
        }
    }

    /// The Shampoo step — statistics folds, eigendecomposition roots, and
    /// the two-sided preconditioning matmuls — must be bitwise identical
    /// at 1 and 4 compute threads, like every other kernel in the repo.
    #[test]
    fn step_is_bitwise_identical_across_thread_counts(
        g in grad_strategy(24, 16),
        lr in 1e-3..0.5f64,
    ) {
        let _gate = par_lock();
        let run = |threads: usize| -> Vec<u64> {
            par::set_max_threads(threads);
            let mut opt = Shampoo::new(ShampooConfig::default());
            let mut p = pipefisher_nn::Parameter::new("w", Matrix::full(24, 16, 0.5));
            for scale in [1.0, 0.5, 2.0] {
                p.grad = g.scale(scale);
                opt.begin_step();
                opt.step_param(&mut p, lr);
            }
            par::set_max_threads(0);
            p.value.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(run(1), run(4));
    }
}

/// Zero-sized parameters (0×0, 0×n, n×0) must step without panicking,
/// leave finite (empty) state, and not disturb later real parameters.
#[test]
fn degenerate_zero_dim_shapes_are_harmless() {
    let mut opt = Shampoo::new(ShampooConfig::default());
    let shapes = [(0usize, 0usize), (0, 3), (3, 0)];
    for step in 0..2 {
        opt.begin_step();
        for (i, &(r, c)) in shapes.iter().enumerate() {
            let mut p = pipefisher_nn::Parameter::new(format!("z{i}"), Matrix::zeros(r, c));
            p.grad = Matrix::zeros(r, c);
            opt.step_param(&mut p, 0.1);
            assert_eq!(p.value.shape(), (r, c), "shape changed on step {step}");
            assert!(p.value.all_finite());
        }
        // A real parameter stepped alongside the degenerate ones behaves
        // exactly as it would alone.
        let mut p = pipefisher_nn::Parameter::new("w", Matrix::full(2, 2, 1.0));
        p.grad = Matrix::full(2, 2, 0.5);
        opt.step_param(&mut p, 0.1);
        assert!(p.value.all_finite());
        assert!(p.value.as_slice().iter().all(|&v| v < 1.0));
    }
}

/// A 1×n row vector (bias/LayerNorm shape) exercises the 1×1-`L` diagonal
/// fallback path without special casing.
#[test]
fn row_vector_parameters_step_finitely() {
    let mut opt = Shampoo::new(ShampooConfig::default());
    let mut p = pipefisher_nn::Parameter::new("b", Matrix::full(1, 5, 1.0));
    for _ in 0..3 {
        p.grad = Matrix::full(1, 5, 0.25);
        opt.begin_step();
        opt.step_param(&mut p, 0.1);
    }
    assert!(p.value.all_finite());
    let (l, r) = opt.statistics("b").expect("statistics exist");
    assert_eq!(l.shape(), (1, 1));
    assert_eq!(r.shape(), (5, 5));
}
