//! Transformer architecture configurations (Table 3 of the paper).

use serde::{Deserialize, Serialize};

/// Dimensions of one transformer block plus the sequence length it is
/// evaluated at — exactly the columns of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Architecture name, e.g. `"BERT-Base"`.
    pub name: String,
    /// Hidden size `d_model`.
    pub d_model: usize,
    /// Feed-forward intermediate size `d_ff`.
    pub d_ff: usize,
    /// Number of attention heads `h`.
    pub n_heads: usize,
    /// Sequence length `S`.
    pub seq_len: usize,
    /// Number of encoder/decoder blocks in the full model.
    pub n_layers: usize,
}

impl TransformerConfig {
    /// BERT-Base: 768 / 3072 / 12 heads, S = 128, L = 12.
    pub fn bert_base() -> Self {
        TransformerConfig {
            name: "BERT-Base".into(),
            d_model: 768,
            d_ff: 3072,
            n_heads: 12,
            seq_len: 128,
            n_layers: 12,
        }
    }

    /// BERT-Large: 1024 / 4096 / 16 heads, S = 128, L = 24.
    pub fn bert_large() -> Self {
        TransformerConfig {
            name: "BERT-Large".into(),
            d_model: 1024,
            d_ff: 4096,
            n_heads: 16,
            seq_len: 128,
            n_layers: 24,
        }
    }

    /// T5-Base: 768 / 3072 / 12 heads, S = 512, L = 12.
    pub fn t5_base() -> Self {
        TransformerConfig {
            name: "T5-Base".into(),
            d_model: 768,
            d_ff: 3072,
            n_heads: 12,
            seq_len: 512,
            n_layers: 12,
        }
    }

    /// T5-Large: 1024 / 4096 / 16 heads, S = 512, L = 24.
    pub fn t5_large() -> Self {
        TransformerConfig {
            name: "T5-Large".into(),
            d_model: 1024,
            d_ff: 4096,
            n_heads: 16,
            seq_len: 512,
            n_layers: 24,
        }
    }

    /// OPT-125M ("Base"): 768 / 3072 / 12 heads, S = 2048, L = 12.
    pub fn opt_125m() -> Self {
        TransformerConfig {
            name: "OPT-125M".into(),
            d_model: 768,
            d_ff: 3072,
            n_heads: 12,
            seq_len: 2048,
            n_layers: 12,
        }
    }

    /// OPT-350M ("Large"): 1024 / 4096 / 16 heads, S = 2048, L = 24.
    pub fn opt_350m() -> Self {
        TransformerConfig {
            name: "OPT-350M".into(),
            d_model: 1024,
            d_ff: 4096,
            n_heads: 16,
            seq_len: 2048,
            n_layers: 24,
        }
    }

    /// All six Table-3 architectures, in figure order (Figs. 10–15).
    pub fn all() -> Vec<TransformerConfig> {
        vec![
            Self::bert_base(),
            Self::bert_large(),
            Self::t5_base(),
            Self::t5_large(),
            Self::opt_125m(),
            Self::opt_350m(),
        ]
    }

    /// Head dimension `d_model / h`.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn d_head(&self) -> usize {
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model not divisible by heads"
        );
        self.d_model / self.n_heads
    }

    /// Trainable parameters in one block (attention + FFN + 2 LayerNorms).
    pub fn params_per_block(&self) -> usize {
        let attn = 4 * (self.d_model * self.d_model + self.d_model);
        let ffn = 2 * self.d_model * self.d_ff + self.d_ff + self.d_model;
        let ln = 4 * self.d_model;
        attn + ffn + ln
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_dims() {
        let b = TransformerConfig::bert_base();
        assert_eq!(
            (b.d_model, b.d_ff, b.n_heads, b.seq_len),
            (768, 3072, 12, 128)
        );
        let l = TransformerConfig::bert_large();
        assert_eq!(
            (l.d_model, l.d_ff, l.n_heads, l.seq_len),
            (1024, 4096, 16, 128)
        );
        let t = TransformerConfig::t5_base();
        assert_eq!(t.seq_len, 512);
        let o = TransformerConfig::opt_350m();
        assert_eq!(o.seq_len, 2048);
    }

    #[test]
    fn bert_base_param_count_is_plausible() {
        // BERT-Base encoder blocks hold ≈ 85M of the 110M params: 12 blocks
        // × ≈7.1M.
        let c = TransformerConfig::bert_base();
        let per_block = c.params_per_block();
        assert!((7.0e6..7.2e6).contains(&(per_block as f64)), "{per_block}");
    }

    #[test]
    fn head_dim() {
        assert_eq!(TransformerConfig::bert_base().d_head(), 64);
        assert_eq!(TransformerConfig::bert_large().d_head(), 64);
    }
}
