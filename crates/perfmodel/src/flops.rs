//! FLOP and byte counters for one transformer block.
//!
//! All counts use the convention FLOPs = 2 × multiply-accumulates. Counts
//! are *per block*; multiply by blocks-per-stage and tokens as appropriate.
//! The six K-FAC-eligible linears of a block are q, k, v, o
//! (`d_model → d_model`), fc1 (`d_model → d_ff`), and fc2
//! (`d_ff → d_model`), matching `pipefisher-nn`'s `TransformerBlock`.

use crate::TransformerConfig;

/// Forward FLOPs for one token through one block:
/// four `d×d` projections, attention scores + apply (`4·S·d`), and the FFN.
pub fn forward_flops_per_token(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    let s = c.seq_len as f64;
    8.0 * d * d + 4.0 * s * d + 4.0 * d * ff
}

/// Backward FLOPs per token (standard 2× the forward GEMM work).
pub fn backward_flops_per_token(c: &TransformerConfig) -> f64 {
    2.0 * forward_flops_per_token(c)
}

/// Curvature FLOPs per token: building `A_l` and `B_l` for all six linears.
///
/// Each factor is a *symmetric* rank-`n` update (`U·Uᵀ`, BLAS `syrk`),
/// which computes only the upper triangle — half a general GEMM's MACs:
/// `n·d²/2` MACs = `n·d²` FLOPs per factor of size `d`. Per token:
/// q/k/v/o contribute `A`+`B` of size `d` each (8·d²/2 MAC-pairs), fc1
/// contributes `d² + d_ff²`, fc2 contributes `d_ff² + d²` →
/// `10d² + 2d_ff²` FLOPs total.
pub fn curvature_flops_per_token(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    10.0 * d * d + 2.0 * ff * ff
}

/// Inversion FLOPs for one block (token-independent): Cholesky (`n³/3`) +
/// triangular inversion and multiply (`≈2n³/3`) ≈ `n³` per factor.
pub fn inversion_flops(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    10.0 * d * d * d + 2.0 * ff * ff * ff
}

/// Precondition FLOPs for one block (token-independent): two GEMMs
/// `B⁻¹·Ḡ·A⁻¹` per linear.
pub fn precondition_flops(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    // q/k/v/o: 2·(d³ + d³) each → 16·d³; fc1 & fc2: 2·(d_ff²·d + d_ff·d²) each.
    16.0 * d * d * d + 4.0 * (ff * ff * d + ff * d * d)
}

/// Curvature FLOPs per token with the Appendix A.2 `K`-block-diagonal
/// factor approximation: only the diagonal blocks of each Gram matrix are
/// computed, dividing the per-factor work by `K`.
pub fn curvature_flops_per_token_blockdiag(c: &TransformerConfig, k: usize) -> f64 {
    curvature_flops_per_token(c) / k.max(1) as f64
}

/// Inversion FLOPs for one block with `K`-block-diagonal factors: each
/// `n`-dim factor becomes `K` factors of `n/K`, so `K·(n/K)³ = n³/K²`.
pub fn inversion_flops_blockdiag(c: &TransformerConfig, k: usize) -> f64 {
    inversion_flops(c) / (k.max(1) * k.max(1)) as f64
}

/// Shampoo statistics FLOPs for one block, one update (token-independent —
/// the statistics are built from the *gradient matrices*, paper §5):
/// `L += G·Gᵀ` and `R += Gᵀ·G` per linear.
pub fn shampoo_stats_flops(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    // q/k/v/o: 2·(d³ + d³) each; fc1 & fc2: 2·(d²·d_ff + d_ff²·d) each.
    16.0 * d * d * d + 4.0 * (d * d * ff + ff * ff * d)
}

/// Shampoo root FLOPs for one block: symmetric eigendecomposition of both
/// statistics per linear, at ≈ 25·n³ (the reason §5 says Shampoo's per-
/// matrix work must be *divided into multiple pieces* to fit bubbles —
/// compare [`inversion_flops`]' ≈ n³ Cholesky).
pub fn shampoo_root_flops(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    25.0 * (10.0 * d * d * d + 2.0 * ff * ff * ff)
}

/// Parameter bytes for one block (fp32 weights only).
pub fn param_bytes(c: &TransformerConfig) -> f64 {
    c.params_per_block() as f64 * 4.0
}

/// Stored-activation bytes per token for one block (no recomputation):
/// residual streams, q/k/v/o outputs, attention probabilities
/// (`2·h·S` per token for scores + probs), FFN intermediate + GELU.
pub fn activation_bytes_per_token(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    let hs = (c.n_heads * c.seq_len) as f64;
    (12.0 * d + 2.0 * ff + 2.0 * hs) * 4.0
}

/// Stored-activation bytes per token with activation recomputation `R`:
/// only the stage-input tensor is kept.
pub fn activation_bytes_per_token_recompute(c: &TransformerConfig) -> f64 {
    c.d_model as f64 * 4.0
}

/// Error-signal bytes per token kept for K-FAC's `B_l` factors
/// (`M_err^save`): the pre-activation output gradients of all six linears.
pub fn error_save_bytes_per_token(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    (5.0 * d + ff) * 4.0
}

/// Bytes of the Kronecker factors of one block (`M_curv`; the inverses
/// occupy the same, `M_inv = M_curv`).
pub fn curvature_bytes(c: &TransformerConfig) -> f64 {
    let d = c.d_model as f64;
    let ff = c.d_ff as f64;
    (10.0 * d * d + 2.0 * ff * ff) * 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_forward_flops() {
        // 8·768² + 4·128·768 + 4·768·3072 = 14.55 MFLOPs/token.
        let c = TransformerConfig::bert_base();
        let f = forward_flops_per_token(&c);
        assert!((f / 1e6 - 14.55).abs() < 0.05, "{f}");
    }

    #[test]
    fn curvature_comparable_to_forward() {
        // For BERT dims, curvature work per token lands within ~4× of the
        // forward work — the regime where bubbles of a couple of steps can
        // absorb it (paper Fig. 3: refresh within 2 steps).
        for c in TransformerConfig::all() {
            let ratio = curvature_flops_per_token(&c) / forward_flops_per_token(&c);
            assert!((0.5..4.0).contains(&ratio), "{}: {ratio}", c.name);
        }
    }

    #[test]
    fn inversion_independent_of_tokens() {
        // Inversion FLOPs are per block, with no token/seq dependency other
        // than through the architecture dims.
        let base = TransformerConfig::bert_base();
        let mut longer = base.clone();
        longer.seq_len = 4 * base.seq_len;
        assert_eq!(inversion_flops(&base), inversion_flops(&longer));
    }

    #[test]
    fn longer_sequences_dilute_inversion() {
        // The paper: "Transformers with longer sequence lengths have larger
        // bubbles and smaller ratios" — because forward/curvature grow with
        // S while inversion does not.
        let b = TransformerConfig::bert_base(); // S=128
        let t = TransformerConfig::t5_base(); // S=512, same dims
        let rel_b = inversion_flops(&b) / (forward_flops_per_token(&b) * 128.0);
        let rel_t = inversion_flops(&t) / (forward_flops_per_token(&t) * 512.0);
        assert!(rel_t < rel_b);
    }

    #[test]
    fn recompute_saves_most_activation_memory() {
        let c = TransformerConfig::bert_base();
        assert!(activation_bytes_per_token_recompute(&c) < 0.1 * activation_bytes_per_token(&c));
    }

    #[test]
    fn precondition_smaller_than_inversion() {
        // T_prec < T_inv for every Table-3 architecture (both are cubic, but
        // precondition runs at GEMM efficiency — the FLOP counts alone are
        // the same order; the paper's "precondition is small" claim comes
        // from it running as efficient GEMMs).
        for c in TransformerConfig::all() {
            let p = precondition_flops(&c);
            let i = inversion_flops(&c);
            assert!(p < 2.0 * i, "{}: prec {p} vs inv {i}", c.name);
        }
    }
}
