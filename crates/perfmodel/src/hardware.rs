//! Hardware roofline profiles for the paper's three GPUs.

use serde::{Deserialize, Serialize};

/// A GPU's roofline parameters plus empirical efficiency factors.
///
/// `gemm_efficiency` is the fraction of peak fp32 FLOP/s reached by the
/// large batched GEMMs of transformer forward/backward/curvature/
/// precondition work; `factorization_efficiency` is the (much lower)
/// fraction reached by Cholesky factorization + triangular inversion, whose
/// limited parallelism leaves most SMs idle. The values are calibrated so
/// the derived schedules reproduce the paper's measured utilizations and
/// refresh intervals (see `tests/paper_shapes.rs` at the workspace root).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Marketing name, e.g. `"P100"`.
    pub name: String,
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: f64,
    /// Fraction of peak reached by large GEMMs.
    pub gemm_efficiency: f64,
    /// Fraction of peak reached by Cholesky/inversion kernels.
    pub factorization_efficiency: f64,
    /// Inter-device link bandwidth in bytes/s (for collectives).
    pub link_bandwidth: f64,
    /// Inter-device link latency in seconds.
    pub link_latency: f64,
}

impl HardwareProfile {
    /// NVIDIA P100 (the paper's main platform): 9.3 TFLOP/s fp32,
    /// 732 GB/s HBM2, 16 GB.
    pub fn p100() -> Self {
        HardwareProfile {
            name: "P100".to_string(),
            peak_flops: 9.3e12,
            mem_bandwidth: 732e9,
            mem_capacity: 16e9,
            gemm_efficiency: 0.50,
            factorization_efficiency: 0.08,
            link_bandwidth: 12e9, // PCIe-ish aggregate in the paper's cluster
            link_latency: 5e-6,
        }
    }

    /// NVIDIA V100: 15.7 TFLOP/s fp32, 900 GB/s HBM2, 16 GB.
    pub fn v100() -> Self {
        HardwareProfile {
            name: "V100".to_string(),
            peak_flops: 15.7e12,
            mem_bandwidth: 900e9,
            mem_capacity: 16e9,
            gemm_efficiency: 0.55,
            factorization_efficiency: 0.07,
            link_bandwidth: 25e9,
            link_latency: 4e-6,
        }
    }

    /// NVIDIA RTX 3090: 35.6 TFLOP/s fp32, 936 GB/s GDDR6X, 24 GB.
    pub fn rtx3090() -> Self {
        HardwareProfile {
            name: "RTX3090".to_string(),
            peak_flops: 35.6e12,
            mem_bandwidth: 936e9,
            mem_capacity: 24e9,
            gemm_efficiency: 0.45,
            factorization_efficiency: 0.04,
            link_bandwidth: 12e9,
            link_latency: 5e-6,
        }
    }

    /// All three profiles, in the order the appendix figures sweep them.
    pub fn all() -> Vec<HardwareProfile> {
        vec![Self::p100(), Self::v100(), Self::rtx3090()]
    }

    /// Effective GEMM throughput in FLOP/s.
    pub fn gemm_flops(&self) -> f64 {
        self.peak_flops * self.gemm_efficiency
    }

    /// Effective factorization throughput in FLOP/s.
    pub fn factorization_flops(&self) -> f64 {
        self.peak_flops * self.factorization_efficiency
    }

    /// Time for a GEMM-class op with `flops` floating-point operations.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        flops / self.gemm_flops()
    }

    /// Time for a factorization-class op with `flops` operations.
    pub fn factorization_time(&self, flops: f64) -> f64 {
        flops / self.factorization_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_throughput() {
        let p = HardwareProfile::p100();
        let v = HardwareProfile::v100();
        let r = HardwareProfile::rtx3090();
        assert!(p.gemm_flops() < v.gemm_flops());
        assert!(v.gemm_flops() < r.gemm_flops());
    }

    #[test]
    fn factorization_is_much_slower_than_gemm() {
        for hw in HardwareProfile::all() {
            assert!(
                hw.factorization_flops() < 0.3 * hw.gemm_flops(),
                "{}",
                hw.name
            );
        }
    }

    #[test]
    fn times_scale_linearly() {
        let hw = HardwareProfile::p100();
        assert!((hw.gemm_time(2e12) - 2.0 * hw.gemm_time(1e12)).abs() < 1e-12);
    }

    #[test]
    fn p100_gemm_time_sanity() {
        // 4.65 TFLOP effective → 1 TFLOP of GEMM ≈ 0.215 s.
        let hw = HardwareProfile::p100();
        let t = hw.gemm_time(1e12);
        assert!((t - 0.215).abs() < 0.01, "{t}");
    }
}
