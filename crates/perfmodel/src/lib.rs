//! The paper's §3.3 performance model, rebuilt analytically.
//!
//! The original measures CUDA kernel times on P100/V100/RTX3090 GPUs with
//! micro-benchmarks; this reproduction replaces the measurements with a
//! roofline-style analytic model:
//!
//! * [`HardwareProfile`] — peak FLOP/s, memory bandwidth, and efficiency
//!   factors per op class for the three GPUs the paper uses,
//! * [`TransformerConfig`] — the six architectures of Table 3 (BERT-Base/
//!   Large, T5-Base/Large, OPT-125M/350M) with their `d_model`, `d_ff`,
//!   heads, and sequence lengths,
//! * [`flops`] — exact FLOP and byte counts for every work type (forward,
//!   backward, recompute, curvature, inversion, precondition) of a
//!   transformer block,
//! * [`stage_costs`] / [`stage_memory`] — per-pipeline-stage durations
//!   ([`pipefisher_sim::KindCost`]) and memory terms (`M_θ`, `M_act`,
//!   `M_err^peak`, `M_err^save`, `M_curv = M_inv`),
//! * [`StepModel`] — the closed-form step model:
//!   `T_pipe = C_f·T_f + C_b·T_b`,
//!   `T_bubble = T_pipe − N_micro·(T_f + T_b)`,
//!   `T_kfac⁺ = N_micro·T_curv + T_inv + T_prec`, and the
//!   (curvature+inversion)/bubble ratio that Figures 5 and 8–15 plot.
//!
//! The substitution preserves the paper's conclusions because every claim in
//! those figures is about *relative* durations (what fits into a bubble),
//! which the FLOP-level model reproduces; see DESIGN.md §2.

mod arch;
pub mod flops;
mod hardware;
mod stepmodel;

pub use arch::TransformerConfig;
pub use hardware::HardwareProfile;
pub use stepmodel::{
    model_step, shampoo_stage_costs, stage_costs, stage_memory, StageMemory, StepModel,
    StepModelInput,
};
