//! The closed-form pipeline-step model of paper §3.3.

use crate::{flops, HardwareProfile, TransformerConfig};
use pipefisher_pipeline::PipelineScheme;
use pipefisher_sim::{ring_allreduce_time, KindCost};
use serde::{Deserialize, Serialize};

/// Memory terms for one pipeline stage (bytes), matching Table 1's symbols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMemory {
    /// `M_θ`: parameter bytes of the stage (weights only; gradients double
    /// it in the worst-case formula).
    pub m_theta: f64,
    /// `M_act`: stored activations for one micro-batch.
    pub m_act: f64,
    /// `M_err^peak`: transient error-signal peak during one backward.
    pub m_err_peak: f64,
    /// `M_err^save`: per-micro-batch error signals kept for `B_l` factors.
    pub m_err_save: f64,
    /// `M_curv`: Kronecker factors (`M_inv = M_curv`).
    pub m_curv: f64,
}

impl StageMemory {
    /// `M_kfac⁺ = M_curv + M_inv + N_micro·M_err^save` (paper §3.3).
    pub fn kfac_extra(&self, n_micro: usize) -> f64 {
        2.0 * self.m_curv + n_micro as f64 * self.m_err_save
    }

    /// `M_pipe = stages_per_device·2·M_θ + N_micro·M_act + M_err^peak`.
    pub fn pipe_total(&self, n_micro: usize, stages_per_device: usize) -> f64 {
        stages_per_device as f64 * 2.0 * self.m_theta
            + n_micro as f64 * self.m_act
            + self.m_err_peak
    }
}

/// Computes per-stage work durations from the analytic FLOP model.
///
/// `blocks_per_stage` transformer blocks per stage, micro-batches of
/// `b_micro` sequences. When `recompute` is set, each backward is preceded
/// by a recomputation forward (the `R` bars in Figures 5/8/9), which we fold
/// into `t_recompute`.
pub fn stage_costs(
    arch: &TransformerConfig,
    hw: &HardwareProfile,
    blocks_per_stage: usize,
    b_micro: usize,
    recompute: bool,
) -> KindCost {
    let tokens = (b_micro * arch.seq_len) as f64;
    let blocks = blocks_per_stage as f64;
    let fwd = hw.gemm_time(flops::forward_flops_per_token(arch) * tokens * blocks);
    let bwd = hw.gemm_time(flops::backward_flops_per_token(arch) * tokens * blocks);
    // Curvature splits evenly between the A factors (after forward) and the
    // B factors (after backward) at the FLOP level.
    let curv = hw.gemm_time(flops::curvature_flops_per_token(arch) * tokens * blocks);
    let inv = hw.factorization_time(flops::inversion_flops(arch) * blocks);
    let prec = hw.gemm_time(flops::precondition_flops(arch) * blocks);
    KindCost {
        t_f: fwd,
        t_b: bwd,
        t_recompute: if recompute { fwd } else { 0.0 },
        t_curv_a: curv / 2.0,
        t_curv_b: curv / 2.0,
        t_inv_a: inv / 2.0,
        t_inv_b: inv / 2.0,
        t_prec: prec,
        t_sync_grad: 0.0, // filled in by model_step when W > 1
        t_sync_curv: 0.0,
    }
}

/// Computes per-stage work durations for **Shampoo** extra work (paper §5):
/// statistics after each backward (gradient-based, so token-independent),
/// eigendecomposition roots as the inversion-class work, and the same
/// precondition GEMMs as K-FAC.
///
/// Returned in the same [`KindCost`] shape so the PipeFisher assignment can
/// schedule Shampoo unchanged: `t_curv_b` carries the statistics work (it
/// becomes available after a backward, like K-FAC's `B_l`), `t_curv_a = 0`.
pub fn shampoo_stage_costs(
    arch: &TransformerConfig,
    hw: &HardwareProfile,
    blocks_per_stage: usize,
    b_micro: usize,
    recompute: bool,
) -> KindCost {
    let mut c = stage_costs(arch, hw, blocks_per_stage, b_micro, recompute);
    let blocks = blocks_per_stage as f64;
    // Statistics are per update; amortize over the micro-batches whose
    // backwards trigger them (one accumulation per micro-batch gradient).
    c.t_curv_a = 0.0;
    c.t_curv_b = hw.gemm_time(flops::shampoo_stats_flops(arch) * blocks);
    let root = hw.factorization_time(flops::shampoo_root_flops(arch) * blocks);
    c.t_inv_a = root / 2.0;
    c.t_inv_b = root / 2.0;
    c
}

/// Computes the stage memory terms.
pub fn stage_memory(
    arch: &TransformerConfig,
    blocks_per_stage: usize,
    b_micro: usize,
    recompute: bool,
) -> StageMemory {
    let tokens = (b_micro * arch.seq_len) as f64;
    let blocks = blocks_per_stage as f64;
    let act_per_token = if recompute {
        flops::activation_bytes_per_token_recompute(arch)
    } else {
        flops::activation_bytes_per_token(arch)
    };
    StageMemory {
        m_theta: flops::param_bytes(arch) * blocks,
        m_act: act_per_token * tokens * blocks,
        // Peak transient errors ≈ one micro-batch of full activations being
        // re-materialized during backward.
        m_err_peak: flops::activation_bytes_per_token(arch) * tokens,
        m_err_save: flops::error_save_bytes_per_token(arch) * tokens * blocks,
        m_curv: flops::curvature_bytes(arch) * blocks,
    }
}

/// Inputs to [`model_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepModelInput {
    /// Pipeline scheme.
    pub scheme: PipelineScheme,
    /// Number of pipeline stages `D`.
    pub d: usize,
    /// Micro-batches per device per step `N_micro`.
    pub n_micro: usize,
    /// Micro-batch size `B_micro` (sequences).
    pub b_micro: usize,
    /// Data-parallel replicas per stage `W`.
    pub w: usize,
    /// Per-stage work durations.
    pub costs: KindCost,
    /// Per-stage memory terms.
    pub memory: StageMemory,
    /// Hardware (for collective costs).
    pub hw: HardwareProfile,
}

/// The closed-form step model outputs (paper §3.3 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepModel {
    /// `T_pipe = C_f·T_f + C_b·T_b` — baseline step time.
    pub t_pipe: f64,
    /// `T_bubble = T_pipe − N_micro·(T_f + T_b)` — idle per device per step.
    pub t_bubble: f64,
    /// `N_micro·T_curv` — curvature work per device per refresh.
    pub t_curv_total: f64,
    /// Inversion work per device per refresh (after splitting across `W`).
    pub t_inv_total: f64,
    /// `T_prec` — the only per-step overhead of PipeFisher.
    pub t_prec: f64,
    /// Gradient-allreduce time per step (zero when `W = 1`).
    pub t_sync_grad: f64,
    /// Curvature-allreduce time per refresh (zero when `W = 1`).
    pub t_sync_curv: f64,
    /// PipeFisher step time: `T_pipe + T_prec + T_sync_grad`.
    pub t_step_pipefisher: f64,
    /// Baseline step time: `T_pipe + T_sync_grad`.
    pub t_step_baseline: f64,
    /// `(N_micro·T_curv + T_inv + T_sync_curv) / T_bubble` — the
    /// (curvature+inversion)-bubble ratio of Figures 5/8–15; ≈ how many
    /// pipeline steps one refresh takes.
    pub ratio: f64,
    /// Throughput in sequences/s (whole cluster) for the PipeFisher step.
    pub throughput: f64,
    /// Throughput in sequences/s for the baseline step.
    pub throughput_baseline: f64,
    /// Worst-case device memory (bytes) without K-FAC.
    pub m_pipe: f64,
    /// Additional K-FAC memory (bytes).
    pub m_kfac_extra: f64,
}

/// Evaluates the §3.3 closed-form model.
///
/// Conventions (documented deviations are listed in DESIGN.md):
///
/// * Chimera devices host **two** stages, so their inversion work and
///   parameter memory double relative to GPipe/1F1B; curvature work is
///   unchanged (same `N_micro` total micro-batch passes per device).
/// * With activation recomputation, effective backward time becomes
///   `T_b + T_recompute`, which both lengthens `T_pipe` and enlarges
///   `T_bubble` (the paper's "R increases bubble" observation).
/// * With `W > 1` (data + inversion parallelism, §3.2), inversion work per
///   device is divided by `W`, a `sync-curvature` allreduce of the factors
///   is added per refresh, and a `sync-grad` allreduce per step.
///
/// # Panics
///
/// Panics if `d`, `n_micro`, or `w` is zero.
pub fn model_step(input: &StepModelInput) -> StepModel {
    assert!(
        input.d > 0 && input.n_micro > 0 && input.w > 0,
        "model_step: zero input"
    );
    let c = &input.costs;
    let n = input.n_micro as f64;
    let t_b_eff = c.t_b + c.t_recompute;
    // Critical-path forward/backward counts, generalized beyond N = D:
    // extra micro-batches extend the steady phase by (N − D)·(T_f + T_b)
    // without changing the startup/tear-down bubble.
    let extra = input.n_micro.saturating_sub(input.d) as f64;
    let (cf, cb) = match input.scheme {
        PipelineScheme::GPipe | PipelineScheme::OneFOneB => {
            let c = (input.n_micro + input.d - 1) as f64;
            (c, c)
        }
        PipelineScheme::Chimera => (input.d as f64 + extra, (2 * input.d - 2) as f64 + extra),
    };
    let t_pipe = cf * c.t_f + cb * t_b_eff;
    let t_bubble = (t_pipe - n * (c.t_f + t_b_eff)).max(0.0);

    let stages_per_device = if input.scheme == PipelineScheme::Chimera {
        2
    } else {
        1
    };
    let t_curv_total = n * c.t_curv();
    let t_inv_total = stages_per_device as f64 * c.t_inv() / input.w as f64;

    let grad_bytes = input.memory.m_theta * stages_per_device as f64;
    let t_sync_grad = ring_allreduce_time(
        grad_bytes,
        input.w,
        input.hw.link_bandwidth,
        input.hw.link_latency,
    );
    let curv_bytes = 2.0 * input.memory.m_curv * stages_per_device as f64;
    let t_sync_curv = ring_allreduce_time(
        curv_bytes,
        input.w,
        input.hw.link_bandwidth,
        input.hw.link_latency,
    );

    let t_step_baseline = t_pipe + t_sync_grad;
    let t_step_pipefisher = t_pipe + c.t_prec * stages_per_device as f64 + t_sync_grad;
    let ratio = if t_bubble > 0.0 {
        (t_curv_total + t_inv_total + t_sync_curv) / t_bubble
    } else {
        f64::INFINITY
    };

    let seqs = (input.n_micro * input.b_micro * input.w) as f64;
    StepModel {
        t_pipe,
        t_bubble,
        t_curv_total,
        t_inv_total,
        t_prec: c.t_prec * stages_per_device as f64,
        t_sync_grad,
        t_sync_curv,
        t_step_pipefisher,
        t_step_baseline,
        ratio,
        throughput: seqs / t_step_pipefisher,
        throughput_baseline: seqs / t_step_baseline,
        m_pipe: input.memory.pipe_total(input.n_micro, stages_per_device),
        m_kfac_extra: input.memory.kfac_extra(input.n_micro),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_base_input(scheme: PipelineScheme, d: usize, b_micro: usize) -> StepModelInput {
        let arch = TransformerConfig::bert_base();
        let hw = HardwareProfile::p100();
        StepModelInput {
            scheme,
            d,
            n_micro: d,
            b_micro,
            w: 1,
            costs: stage_costs(&arch, &hw, 1, b_micro, false),
            memory: stage_memory(&arch, 1, b_micro, false),
            hw,
        }
    }

    #[test]
    fn backward_is_twice_forward() {
        let c = stage_costs(
            &TransformerConfig::bert_base(),
            &HardwareProfile::p100(),
            3,
            32,
            false,
        );
        assert!((c.t_b / c.t_f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn chimera_has_smaller_bubble_than_gpipe() {
        let g = model_step(&bert_base_input(PipelineScheme::GPipe, 4, 32));
        let c = model_step(&bert_base_input(PipelineScheme::Chimera, 4, 32));
        assert!(c.t_bubble < g.t_bubble);
        assert!(c.throughput_baseline > g.throughput_baseline);
        // …but less bubble means curvature refresh takes more steps:
        assert!(c.ratio > g.ratio);
    }

    #[test]
    fn ratio_falls_with_micro_batch_size() {
        // Paper: "As B_micro increases, the ratio becomes smaller because
        // the cost of the inversion work is relatively small."
        let small = model_step(&bert_base_input(PipelineScheme::Chimera, 8, 2));
        let large = model_step(&bert_base_input(PipelineScheme::Chimera, 8, 32));
        assert!(
            large.ratio < small.ratio,
            "{} vs {}",
            large.ratio,
            small.ratio
        );
    }

    #[test]
    fn ratio_falls_with_depth() {
        // Paper: "as pipeline depth D increases, the ratio goes down
        // because the bubble increases."
        let shallow = model_step(&bert_base_input(PipelineScheme::Chimera, 4, 8));
        let deep = model_step(&bert_base_input(PipelineScheme::Chimera, 32, 8));
        assert!(deep.ratio < shallow.ratio);
    }

    #[test]
    fn ratio_rises_with_more_micro_batches() {
        // Paper: "as N_micro increases, the ratio increases because the
        // bubbles become smaller (relatively)."
        let arch = TransformerConfig::bert_base();
        let hw = HardwareProfile::p100();
        let mk = |n_micro: usize| {
            model_step(&StepModelInput {
                scheme: PipelineScheme::Chimera,
                d: 8,
                n_micro,
                b_micro: 8,
                w: 1,
                costs: stage_costs(&arch, &hw, 1, 8, false),
                memory: stage_memory(&arch, 1, 8, false),
                hw: hw.clone(),
            })
        };
        assert!(mk(32).ratio > mk(8).ratio);
    }

    #[test]
    fn longer_sequences_shrink_ratio() {
        // Paper: Transformers with longer S have larger bubbles and smaller
        // ratios (inversion is token-independent).
        let hw = HardwareProfile::p100();
        let mk = |arch: &TransformerConfig| {
            model_step(&StepModelInput {
                scheme: PipelineScheme::Chimera,
                d: 8,
                n_micro: 8,
                b_micro: 8,
                w: 1,
                costs: stage_costs(arch, &hw, 1, 8, false),
                memory: stage_memory(arch, 1, 8, false),
                hw: hw.clone(),
            })
        };
        let bert = mk(&TransformerConfig::bert_base()); // S=128
        let t5 = mk(&TransformerConfig::t5_base()); // S=512
        assert!(t5.ratio < bert.ratio);
    }

    #[test]
    fn recompute_increases_bubble_and_lowers_throughput() {
        let arch = TransformerConfig::bert_base();
        let hw = HardwareProfile::p100();
        let mk = |recompute: bool| {
            model_step(&StepModelInput {
                scheme: PipelineScheme::Chimera,
                d: 8,
                n_micro: 8,
                b_micro: 16,
                w: 1,
                costs: stage_costs(&arch, &hw, 1, 16, recompute),
                memory: stage_memory(&arch, 1, 16, recompute),
                hw: hw.clone(),
            })
        };
        let plain = mk(false);
        let r = mk(true);
        assert!(r.t_bubble > plain.t_bubble);
        assert!(r.throughput < plain.throughput);
        assert!(r.m_pipe < plain.m_pipe);
        assert!(r.ratio < plain.ratio); // refresh faster with bigger bubbles
    }

    #[test]
    fn precondition_overhead_is_small() {
        // Paper Table 2: PipeFisher time/step is ~6.5% above baseline for
        // BERT-Large/Chimera/D=8/B=32.
        let arch = TransformerConfig::bert_large();
        let hw = HardwareProfile::p100();
        let m = model_step(&StepModelInput {
            scheme: PipelineScheme::Chimera,
            d: 8,
            n_micro: 8,
            b_micro: 32,
            w: 1,
            costs: stage_costs(&arch, &hw, 3, 32, false),
            memory: stage_memory(&arch, 3, 32, false),
            hw,
        });
        let overhead = m.t_step_pipefisher / m.t_step_baseline - 1.0;
        assert!((0.01..0.15).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn inversion_parallelism_divides_inversion_work() {
        let mut input = bert_base_input(PipelineScheme::GPipe, 4, 32);
        let w1 = model_step(&input);
        input.w = 2;
        let w2 = model_step(&input);
        assert!((w2.t_inv_total - w1.t_inv_total / 2.0).abs() < 1e-12);
        assert!(w2.t_sync_curv > 0.0);
        assert!(w2.t_sync_grad > 0.0);
        assert_eq!(w1.t_sync_grad, 0.0);
    }

    #[test]
    fn bert_base_refresh_in_couple_of_steps() {
        // Paper Fig. 3 setting: BERT-Base, D=4, 3 blocks/stage, B_micro=32,
        // N_micro=4, GPipe/1F1B on P100s → refresh within ~2 steps.
        let arch = TransformerConfig::bert_base();
        let hw = HardwareProfile::p100();
        let m = model_step(&StepModelInput {
            scheme: PipelineScheme::GPipe,
            d: 4,
            n_micro: 4,
            b_micro: 32,
            w: 1,
            costs: stage_costs(&arch, &hw, 3, 32, false),
            memory: stage_memory(&arch, 3, 32, false),
            hw,
        });
        assert!((1.0..3.0).contains(&m.ratio), "ratio {}", m.ratio);
    }

    #[test]
    fn memory_fits_p100_at_paper_settings() {
        // BERT-Large, 3 blocks/stage, B_micro=32 (the paper's max power of 2
        // on a 16 GB P100), Chimera → total memory under 16 GB.
        let arch = TransformerConfig::bert_large();
        let hw = HardwareProfile::p100();
        let m = model_step(&StepModelInput {
            scheme: PipelineScheme::Chimera,
            d: 8,
            n_micro: 8,
            b_micro: 32,
            w: 1,
            costs: stage_costs(&arch, &hw, 3, 32, false),
            memory: stage_memory(&arch, 3, 32, false),
            hw: hw.clone(),
        });
        assert!(
            m.m_pipe + m.m_kfac_extra < hw.mem_capacity,
            "memory {:.1} GB",
            (m.m_pipe + m.m_kfac_extra) / 1e9
        );
    }
}
