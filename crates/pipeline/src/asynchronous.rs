//! Asynchronous (no-flush) pipelines — Appendix C.1 of the paper.
//!
//! A synchronous pipeline flushes at every optimization step, creating the
//! bubbles PipeFisher fills. *Asynchronous* schemes (PipeDream,
//! PipeDream-2BW) never flush: micro-batches stream continuously, bubbles
//! vanish, but each stage computes gradients with weights that are up to
//! `D` steps old. The paper frames this as the *other* bubble-filling
//! strategy — fill with stale *gradient* work instead of curvature work —
//! and trades freshness the opposite way.

use crate::{build_1f1b, TaskGraph, WorkKind};

/// Builds a no-flush (asynchronous) 1F1B schedule covering `horizon_steps`
/// optimization steps of `n_micro` micro-batches each, as one continuous
/// micro-batch stream.
///
/// With no flush between steps the steady-state bubble fraction tends to
/// zero as the horizon grows: only the initial fill and final drain idle
/// the devices.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn build_async_1f1b(n_stages: usize, n_micro: usize, horizon_steps: usize) -> TaskGraph {
    assert!(
        n_stages > 0 && n_micro > 0 && horizon_steps > 0,
        "build_async_1f1b: empty pipeline"
    );
    // A continuous stream IS 1F1B over the total micro-batch count: the
    // flush is precisely the per-step drain that the stream omits.
    let mut g = build_1f1b(n_stages, n_micro * horizon_steps);
    g.set_scheme_name("async-1f1b");
    g
}

/// The weight-version staleness at `stage` in an asynchronous 1F1B
/// pipeline, in optimizer steps: stage `s` of `D` applies gradients
/// computed with weights `D − s` versions old (PipeDream's weight
/// stashing), so the *first* stage sees the largest delay.
///
/// # Panics
///
/// Panics if `stage >= n_stages`.
pub fn async_staleness(n_stages: usize, stage: usize) -> usize {
    assert!(stage < n_stages, "async_staleness: stage out of range");
    n_stages - stage
}

impl TaskGraph {
    /// Overrides the scheme name (used by the asynchronous builder, which
    /// reuses the 1F1B construction).
    pub fn set_scheme_name(&mut self, name: &str) {
        self.rename(name);
    }

    /// Total forward work units in the graph (for throughput accounting).
    pub fn count_kind(&self, kind: WorkKind) -> usize {
        self.tasks().iter().filter(|t| t.kind == kind).count()
    }
}

/// Verifies the stream has no cross-step flush: within one device's queue,
/// a later micro-batch's forward may precede an earlier micro-batch's
/// backward (the interleave a flush would forbid).
pub fn is_flush_free(graph: &TaskGraph, n_micro_per_step: usize) -> bool {
    for order in graph.device_order() {
        let mut seen_forward_of_next_step = false;
        let mut pending_backwards_prev_step = false;
        for &id in order {
            let t = graph.task(id);
            let Some(mb) = t.micro_batch else { continue };
            let step = mb / n_micro_per_step;
            match t.kind {
                WorkKind::Forward if step > 0 => seen_forward_of_next_step = true,
                WorkKind::Backward if step == 0 && seen_forward_of_next_step => {
                    pending_backwards_prev_step = true;
                }
                _ => {}
            }
        }
        if pending_backwards_prev_step {
            return true; // overlap found on this device — no flush
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_graph_validates() {
        for d in [2, 4, 8] {
            let g = build_async_1f1b(d, d, 4);
            g.validate().unwrap();
            assert_eq!(g.scheme_name(), "async-1f1b");
            assert_eq!(g.count_kind(WorkKind::Forward), d * d * 4);
        }
    }

    #[test]
    fn no_flush_between_steps() {
        let g = build_async_1f1b(4, 4, 3);
        assert!(
            is_flush_free(&g, 4),
            "async schedule should interleave steps"
        );
        // A synchronous 1F1B of one step trivially has no cross-step overlap.
        let sync = build_1f1b(4, 4);
        assert!(!is_flush_free(&sync, 4));
    }

    #[test]
    fn bubble_fraction_vanishes_with_horizon() {
        let d = 4;
        let cost = |t: &crate::Task| match t.kind {
            WorkKind::Forward => 1.0,
            _ => 2.0,
        };
        let short = build_async_1f1b(d, d, 1);
        let long = build_async_1f1b(d, d, 16);
        let util = |g: &TaskGraph| {
            let times = g.nominal_times(cost).unwrap();
            let span = times.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
            let busy: f64 = times.iter().map(|&(s, e)| e - s).sum();
            busy / (span * d as f64)
        };
        let u_short = util(&short);
        let u_long = util(&long);
        assert!(u_long > u_short);
        assert!(u_long > 0.9, "long-horizon async utilization {u_long}");
    }

    #[test]
    fn staleness_is_largest_at_first_stage() {
        assert_eq!(async_staleness(4, 0), 4);
        assert_eq!(async_staleness(4, 3), 1);
    }
}
