//! Schedule builders for GPipe, 1F1B, and Chimera.

use crate::{StageAssignment, TaskGraph, TaskId, WorkKind};

/// The synchronous pipeline schemes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineScheme {
    /// GPipe (Huang et al., 2019): all forwards, then all backwards.
    GPipe,
    /// 1F1B with pipeline flush (Narayanan et al., 2019).
    OneFOneB,
    /// Chimera with two bidirectional pipelines (Li & Hoefler, 2021).
    Chimera,
}

impl PipelineScheme {
    /// Scheme name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineScheme::GPipe => "gpipe",
            PipelineScheme::OneFOneB => "1f1b",
            PipelineScheme::Chimera => "chimera",
        }
    }

    /// Builds the schedule for `n_stages` stages and `n_micro` micro-batches.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (see the individual builders).
    pub fn build(&self, n_stages: usize, n_micro: usize) -> TaskGraph {
        match self {
            PipelineScheme::GPipe => build_gpipe(n_stages, n_micro),
            PipelineScheme::OneFOneB => build_1f1b(n_stages, n_micro),
            PipelineScheme::Chimera => build_chimera(n_stages, n_micro),
        }
    }

    /// Forward passes on the critical path when `n_micro = D` (paper
    /// Table 1): `2D − 1` for GPipe/1F1B, `D` for Chimera.
    pub fn critical_forwards(&self, d: usize) -> usize {
        match self {
            PipelineScheme::GPipe | PipelineScheme::OneFOneB => 2 * d - 1,
            PipelineScheme::Chimera => d,
        }
    }

    /// Backward passes on the critical path when `n_micro = D` (paper
    /// Table 1): `2D − 1` for GPipe/1F1B, `2D − 2` for Chimera.
    pub fn critical_backwards(&self, d: usize) -> usize {
        match self {
            PipelineScheme::GPipe | PipelineScheme::OneFOneB => 2 * d - 1,
            PipelineScheme::Chimera => 2 * d - 2,
        }
    }

    /// All three schemes, for sweeps.
    pub fn all() -> [PipelineScheme; 3] {
        [
            PipelineScheme::GPipe,
            PipelineScheme::OneFOneB,
            PipelineScheme::Chimera,
        ]
    }
}

/// Builds a GPipe schedule: each device runs all its forwards in micro-batch
/// order, then all backwards in reverse (LIFO) order, with a pipeline flush
/// at the end of the step.
///
/// # Panics
///
/// Panics if `n_stages == 0` or `n_micro == 0`.
pub fn build_gpipe(n_stages: usize, n_micro: usize) -> TaskGraph {
    assert!(n_stages > 0 && n_micro > 0, "build_gpipe: empty pipeline");
    let mut g = TaskGraph::new("gpipe", n_stages, n_stages, n_micro);
    // fwd[s][m], filled stage-major so deps are already pushed.
    let mut fwd = vec![vec![TaskId(0); n_micro]; n_stages];
    for s in 0..n_stages {
        // Indexing keeps the read of `fwd[s - 1]` alongside the write of
        // `fwd[s]`, which iterator adapters cannot express without splits.
        #[allow(clippy::needless_range_loop)]
        for m in 0..n_micro {
            let deps = if s == 0 { vec![] } else { vec![fwd[s - 1][m]] };
            fwd[s][m] = g.push(
                s,
                s,
                Some(m),
                WorkKind::Forward,
                StageAssignment::Single,
                deps,
            );
        }
    }
    let mut bwd = vec![vec![TaskId(0); n_micro]; n_stages];
    for s in (0..n_stages).rev() {
        for m in (0..n_micro).rev() {
            let mut deps = vec![fwd[s][m]];
            if s + 1 < n_stages {
                deps.push(bwd[s + 1][m]);
            }
            bwd[s][m] = g.push(
                s,
                s,
                Some(m),
                WorkKind::Backward,
                StageAssignment::Single,
                deps,
            );
        }
    }
    g
}

/// Builds a 1F1B (PipeDream-flush) schedule: warmup forwards, steady
/// one-forward-one-backward alternation, cooldown backwards.
///
/// # Panics
///
/// Panics if `n_stages == 0` or `n_micro == 0`.
pub fn build_1f1b(n_stages: usize, n_micro: usize) -> TaskGraph {
    assert!(n_stages > 0 && n_micro > 0, "build_1f1b: empty pipeline");
    let mut g = TaskGraph::new("1f1b", n_stages, n_stages, n_micro);
    // Pre-create ids by picking a global construction order that guarantees
    // deps exist: stage-major forwards first as placeholders is not possible
    // with push-once semantics, so we instead push per-device in execution
    // order and wire dependencies afterwards via a second pass... simpler:
    // compute the per-device op order, push tasks device-by-device in that
    // order, and resolve dependencies by (kind, stage, mb) lookup at the end.
    #[derive(Clone, Copy)]
    enum Op {
        F(usize),
        B(usize),
    }
    let mut orders: Vec<Vec<Op>> = Vec::with_capacity(n_stages);
    for s in 0..n_stages {
        let warmup = (n_stages - 1 - s).min(n_micro);
        let steady = n_micro - warmup;
        let mut ops = Vec::with_capacity(2 * n_micro);
        for m in 0..warmup {
            ops.push(Op::F(m));
        }
        for i in 0..steady {
            ops.push(Op::F(warmup + i));
            ops.push(Op::B(i));
        }
        for m in steady..n_micro {
            ops.push(Op::B(m));
        }
        orders.push(ops);
    }
    // Push all tasks (ids assigned in device-order), then wire deps.
    let mut fwd = vec![vec![None; n_micro]; n_stages];
    let mut bwd = vec![vec![None; n_micro]; n_stages];
    for (s, ops) in orders.iter().enumerate() {
        for op in ops {
            match *op {
                Op::F(m) => {
                    let id = g.push(
                        s,
                        s,
                        Some(m),
                        WorkKind::Forward,
                        StageAssignment::Single,
                        vec![],
                    );
                    fwd[s][m] = Some(id);
                }
                Op::B(m) => {
                    let id = g.push(
                        s,
                        s,
                        Some(m),
                        WorkKind::Backward,
                        StageAssignment::Single,
                        vec![],
                    );
                    bwd[s][m] = Some(id);
                }
            }
        }
    }
    wire_pipeline_deps(&mut g, &fwd, &bwd, n_stages, n_micro);
    g
}

/// Fills in the standard pipeline dependencies:
/// `F(s,m) ← F(s−1,m)` and `B(s,m) ← {B(s+1,m), F(s,m)}`.
fn wire_pipeline_deps(
    g: &mut TaskGraph,
    fwd: &[Vec<Option<TaskId>>],
    bwd: &[Vec<Option<TaskId>>],
    n_stages: usize,
    n_micro: usize,
) {
    let mut deps_to_set: Vec<(TaskId, Vec<TaskId>)> = Vec::new();
    for s in 0..n_stages {
        for m in 0..n_micro {
            if let Some(f) = fwd[s][m] {
                if s > 0 {
                    deps_to_set.push((f, vec![fwd[s - 1][m].expect("missing fwd dep")]));
                }
            }
            if let Some(b) = bwd[s][m] {
                let mut deps = vec![fwd[s][m].expect("missing same-stage fwd")];
                if s + 1 < n_stages {
                    deps.push(bwd[s + 1][m].expect("missing bwd dep"));
                }
                deps_to_set.push((b, deps));
            }
        }
    }
    g.set_deps(deps_to_set);
}

/// Builds a Chimera schedule with two bidirectional pipelines.
///
/// Device `d` hosts stage `d` of the *down* pipeline (micro-batches
/// `0..n_micro/2`) and stage `D−1−d` of the *up* pipeline (micro-batches
/// `n_micro/2..n_micro`). Each sub-pipeline contributes a 1F1B-ordered op
/// stream per device; the two streams are merged by an event-driven greedy
/// scheduler with the canonical `T_b = 2·T_f` cost model — when both stream
/// heads are ready the op *deeper in its pipeline* runs first, which
/// reproduces the published Chimera interleaving (critical path
/// `D·T_f + (2D−2)·T_b` for `n_micro = D`).
///
/// # Panics
///
/// Panics if `n_stages` is odd or zero, or `n_micro` is odd or zero.
pub fn build_chimera(n_stages: usize, n_micro: usize) -> TaskGraph {
    assert!(
        n_stages > 0 && n_stages.is_multiple_of(2),
        "build_chimera: n_stages must be even"
    );
    assert!(
        n_micro > 0 && n_micro.is_multiple_of(2),
        "build_chimera: n_micro must be even"
    );
    let d = n_stages;
    let half = n_micro / 2;

    // Per-stage 1F1B op order of a half pipeline (`half` micro-batches).
    #[derive(Clone, Copy, PartialEq)]
    struct StreamOp {
        kind: WorkKind,
        stage: usize,
        micro_batch: usize, // global micro-batch index
        pipeline: StageAssignment,
    }
    let stream_for = |stage: usize, pipeline: StageAssignment| -> Vec<StreamOp> {
        let warmup = (d - 1 - stage).min(half);
        let steady = half - warmup;
        let offset = if pipeline == StageAssignment::Up {
            half
        } else {
            0
        };
        let mut ops = Vec::with_capacity(2 * half);
        for m in 0..warmup {
            ops.push(StreamOp {
                kind: WorkKind::Forward,
                stage,
                micro_batch: offset + m,
                pipeline,
            });
        }
        for i in 0..steady {
            ops.push(StreamOp {
                kind: WorkKind::Forward,
                stage,
                micro_batch: offset + warmup + i,
                pipeline,
            });
            ops.push(StreamOp {
                kind: WorkKind::Backward,
                stage,
                micro_batch: offset + i,
                pipeline,
            });
        }
        for m in steady..half {
            ops.push(StreamOp {
                kind: WorkKind::Backward,
                stage,
                micro_batch: offset + m,
                pipeline,
            });
        }
        ops
    };

    // Event-driven greedy merge of each device's down and up streams.
    let streams: Vec<[Vec<StreamOp>; 2]> = (0..d)
        .map(|dev| {
            [
                stream_for(dev, StageAssignment::Down),
                stream_for(d - 1 - dev, StageAssignment::Up),
            ]
        })
        .collect();
    let mut heads = vec![[0usize, 0usize]; d];
    let mut free_at = vec![0.0f64; d];
    // Completion time per (pipeline, kind, stage, micro-batch), NaN = unscheduled.
    let key = |op: &StreamOp| -> usize {
        let p = (op.pipeline == StageAssignment::Up) as usize;
        let k = (op.kind == WorkKind::Backward) as usize;
        ((p * 2 + k) * d + op.stage) * n_micro + op.micro_batch
    };
    let mut end_time = vec![f64::NAN; 4 * d * n_micro];
    let dur = |op: &StreamOp| {
        if op.kind == WorkKind::Forward {
            1.0
        } else {
            2.0
        }
    };
    let dep_end = |op: &StreamOp, end_time: &[f64]| -> Option<f64> {
        // F(m,s) ← F(m,s−1); B(m,s) ← {B(m,s+1), F(m,s)} within its pipeline.
        let mut latest = 0.0f64;
        let mut dep = |k: WorkKind, s: usize| -> bool {
            let e = end_time[key(&StreamOp {
                kind: k,
                stage: s,
                ..*op
            })];
            if e.is_nan() {
                return false;
            }
            latest = latest.max(e);
            true
        };
        let ok = match op.kind {
            WorkKind::Forward => op.stage == 0 || dep(WorkKind::Forward, op.stage - 1),
            WorkKind::Backward => {
                dep(WorkKind::Forward, op.stage)
                    && (op.stage + 1 == d || dep(WorkKind::Backward, op.stage + 1))
            }
            _ => unreachable!(),
        };
        ok.then_some(latest)
    };

    let total_ops = 2 * d * n_micro;
    let mut realized: Vec<Vec<StreamOp>> = vec![Vec::new(); d];
    let mut scheduled = 0;
    // Time-ordered sweep: repeatedly start every op that can start now;
    // otherwise advance "now" to the next completion/free event.
    let mut now = 0.0f64;
    while scheduled < total_ops {
        let mut progressed = false;
        for dev in 0..d {
            if free_at[dev] > now + 1e-9 {
                continue;
            }
            // Candidate heads that are dependency-ready at `now`.
            let mut best: Option<(usize, f64, usize)> = None; // (stream, start, stage)
            for st in 0..2 {
                if heads[dev][st] >= streams[dev][st].len() {
                    continue;
                }
                let op = streams[dev][st][heads[dev][st]];
                if let Some(de) = dep_end(&op, &end_time) {
                    if de <= now + 1e-9 {
                        let better = match best {
                            None => true,
                            // Deeper op in its own pipeline first.
                            Some((_, _, stage)) => op.stage > stage,
                        };
                        if better {
                            best = Some((st, now, op.stage));
                        }
                    }
                }
            }
            if let Some((st, start, _)) = best {
                let op = streams[dev][st][heads[dev][st]];
                heads[dev][st] += 1;
                end_time[key(&op)] = start + dur(&op);
                free_at[dev] = start + dur(&op);
                realized[dev].push(op);
                scheduled += 1;
                progressed = true;
            }
        }
        if !progressed {
            // Advance to the next event: earliest future free/end time.
            let mut next = f64::INFINITY;
            for dev in 0..d {
                if free_at[dev] > now + 1e-9 {
                    next = next.min(free_at[dev]);
                }
                for st in 0..2 {
                    if heads[dev][st] < streams[dev][st].len() {
                        let op = streams[dev][st][heads[dev][st]];
                        if let Some(de) = dep_end(&op, &end_time) {
                            if de > now + 1e-9 {
                                next = next.min(de.max(free_at[dev]));
                            }
                        }
                    }
                }
            }
            assert!(
                next.is_finite(),
                "build_chimera: merge stalled at t={now} with {scheduled}/{total_ops} ops"
            );
            now = next;
        }
    }

    // Push tasks in realized per-device order, then wire deps per pipeline.
    let mut g = TaskGraph::new("chimera", d, d, n_micro);
    let mut fwd = vec![vec![None; n_micro]; d];
    let mut bwd = vec![vec![None; n_micro]; d];
    for (dev, ops) in realized.iter().enumerate() {
        for op in ops {
            let id = g.push(
                dev,
                op.stage,
                Some(op.micro_batch),
                op.kind,
                op.pipeline,
                vec![],
            );
            match op.kind {
                WorkKind::Forward => fwd[op.stage][op.micro_batch] = Some(id),
                WorkKind::Backward => bwd[op.stage][op.micro_batch] = Some(id),
                _ => unreachable!("streams contain only forward/backward"),
            }
        }
    }
    // Dependencies: within the down pipeline stages advance 0→D−1; within the
    // up pipeline they also advance 0→D−1 in *stage* numbering (device
    // numbering is mirrored), so the same wiring applies per micro-batch
    // group.
    let mut deps_to_set: Vec<(TaskId, Vec<TaskId>)> = Vec::new();
    for s in 0..d {
        for m in 0..n_micro {
            if let Some(f) = fwd[s][m] {
                if s > 0 {
                    deps_to_set.push((f, vec![fwd[s - 1][m].expect("chimera fwd dep")]));
                }
            }
            if let Some(b) = bwd[s][m] {
                let mut deps = vec![fwd[s][m].expect("chimera same-stage fwd")];
                if s + 1 < d {
                    deps.push(bwd[s + 1][m].expect("chimera bwd dep"));
                }
                deps_to_set.push((b, deps));
            }
        }
    }
    g.set_deps(deps_to_set);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn unit_cost(t: &Task) -> f64 {
        match t.kind {
            WorkKind::Forward => 1.0,
            WorkKind::Backward => 2.0,
            _ => 0.0,
        }
    }

    #[test]
    fn gpipe_validates_and_has_expected_makespan() {
        for d in [1, 2, 4, 8] {
            for n in [1, 2, 4, 8] {
                let g = build_gpipe(d, n);
                g.validate().unwrap();
                // GPipe makespan with T_f=1, T_b=2:
                // (D−1)·T_f + N·T_f + (D−1)·T_b + N·T_b = (N+D−1)·3.
                let expect = (n + d - 1) as f64 * 3.0;
                let got = g.makespan(unit_cost).unwrap();
                assert!(
                    (got - expect).abs() < 1e-9,
                    "d={d} n={n}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn one_f_one_b_validates_and_matches_gpipe_makespan() {
        // With flush and N ≥ D, 1F1B has the same critical path as GPipe
        // (the savings are in memory, not step time, per the paper's C_f/C_b).
        for d in [1, 2, 4] {
            for n in [4, 8] {
                let g = build_1f1b(d, n);
                g.validate().unwrap();
                let expect = (n + d - 1) as f64 * 3.0;
                let got = g.makespan(unit_cost).unwrap();
                assert!(
                    (got - expect).abs() < 1e-9,
                    "d={d} n={n}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn chimera_validates_across_sizes() {
        for d in [2, 4, 8, 16] {
            for n in [d, 2 * d, 4 * d] {
                let g = build_chimera(d, n);
                g.validate().unwrap_or_else(|e| panic!("d={d} n={n}: {e}"));
                assert_eq!(g.tasks().len(), 2 * d * n);
            }
        }
    }

    #[test]
    fn chimera_critical_path_matches_paper_table1() {
        // For N_micro = D and T_b = 2·T_f the paper gives
        // T_pipe = C_f·T_f + C_b·T_b with C_f = D, C_b = 2D−2.
        for d in [2, 4, 8, 16] {
            let g = build_chimera(d, d);
            let got = g.makespan(unit_cost).unwrap();
            let expect = d as f64 + (2 * d - 2) as f64 * 2.0;
            assert!(
                (got - expect).abs() < 1e-9,
                "d={d}: makespan {got}, paper model {expect}"
            );
        }
    }

    #[test]
    fn chimera_beats_gpipe_bubble_ratio() {
        for d in [4, 8] {
            let gp = build_gpipe(d, d).makespan(unit_cost).unwrap();
            let ch = build_chimera(d, d).makespan(unit_cost).unwrap();
            assert!(ch < gp, "d={d}: chimera {ch} not faster than gpipe {gp}");
        }
    }

    #[test]
    fn chimera_device_hosts_two_stages() {
        let g = build_chimera(4, 4);
        for dev in 0..4 {
            let stages: std::collections::HashSet<usize> = g
                .tasks()
                .iter()
                .filter(|t| t.device == dev)
                .map(|t| t.stage)
                .collect();
            assert_eq!(stages.len(), 2, "device {dev} stages {stages:?}");
            assert!(stages.contains(&dev));
            assert!(stages.contains(&(3 - dev)));
        }
    }

    #[test]
    fn scheme_enum_roundtrip() {
        for scheme in PipelineScheme::all() {
            let g = scheme.build(4, 4);
            g.validate().unwrap();
            assert_eq!(g.scheme_name(), scheme.name());
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn chimera_odd_stages_panics() {
        let _ = build_chimera(3, 4);
    }
}
