//! The task graph: tasks + dependencies + per-device execution order.

use crate::{StageAssignment, Task, TaskId, WorkKind};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Validation failures for a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A dependency refers to a nonexistent task.
    DanglingDependency { task: TaskId, dep: TaskId },
    /// A task is missing from its device's execution order (or listed twice).
    OrderMismatch { device: usize },
    /// In-order execution of the device queues can never complete.
    Deadlock { scheduled: usize, total: usize },
    /// A micro-batch is missing a forward or backward on some stage.
    IncompleteCoverage { stage: usize, micro_batch: usize },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::DanglingDependency { task, dep } => {
                write!(f, "task {:?} depends on nonexistent {:?}", task, dep)
            }
            ScheduleError::OrderMismatch { device } => {
                write!(
                    f,
                    "device {} order does not list its tasks exactly once",
                    device
                )
            }
            ScheduleError::Deadlock { scheduled, total } => {
                write!(f, "deadlock: only {scheduled}/{total} tasks schedulable")
            }
            ScheduleError::IncompleteCoverage { stage, micro_batch } => {
                write!(
                    f,
                    "stage {stage} missing work for micro-batch {micro_batch}"
                )
            }
        }
    }
}

impl Error for ScheduleError {}

/// A pipeline step's work: tasks with dependencies plus ordered per-device
/// queues. Built by the schedule builders; consumed by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    device_order: Vec<Vec<TaskId>>,
    n_stages: usize,
    n_micro: usize,
    scheme_name: String,
}

impl TaskGraph {
    /// Creates an empty graph for `n_devices` devices.
    pub fn new(
        scheme_name: impl Into<String>,
        n_devices: usize,
        n_stages: usize,
        n_micro: usize,
    ) -> Self {
        TaskGraph {
            tasks: Vec::new(),
            device_order: vec![Vec::new(); n_devices],
            n_stages,
            n_micro,
            scheme_name: scheme_name.into(),
        }
    }

    /// Appends a task to the graph *and* to its device's execution queue,
    /// returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the device index is out of range.
    pub fn push(
        &mut self,
        device: usize,
        stage: usize,
        micro_batch: Option<usize>,
        kind: WorkKind,
        pipeline: StageAssignment,
        deps: Vec<TaskId>,
    ) -> TaskId {
        assert!(
            device < self.device_order.len(),
            "push: device {device} out of range"
        );
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            device,
            stage,
            micro_batch,
            kind,
            pipeline,
            deps,
        });
        self.device_order[device].push(id);
        id
    }

    /// All tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Borrow one task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Per-device execution order.
    pub fn device_order(&self) -> &[Vec<TaskId>] {
        &self.device_order
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.device_order.len()
    }

    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Number of micro-batches per step.
    pub fn n_micro(&self) -> usize {
        self.n_micro
    }

    /// Human-readable scheme name (`"gpipe"`, `"1f1b"`, `"chimera"`).
    pub fn scheme_name(&self) -> &str {
        &self.scheme_name
    }

    /// Renames the scheme (crate-internal; used by derived builders).
    pub(crate) fn rename(&mut self, name: &str) {
        self.scheme_name = name.to_string();
    }

    /// Replaces the dependency lists of the given tasks. Used by builders
    /// that push tasks in execution order first and wire dependencies in a
    /// second pass.
    ///
    /// # Panics
    ///
    /// Panics if any task id is out of range.
    pub fn set_deps(&mut self, deps: Vec<(TaskId, Vec<TaskId>)>) {
        for (id, d) in deps {
            assert!(
                id.0 < self.tasks.len(),
                "set_deps: task {id:?} out of range"
            );
            self.tasks[id.0].deps = d;
        }
    }

    /// Finds the id of a standard task by (kind, stage, micro-batch).
    pub fn find(&self, kind: WorkKind, stage: usize, micro_batch: usize) -> Option<TaskId> {
        self.tasks
            .iter()
            .find(|t| t.kind == kind && t.stage == stage && t.micro_batch == Some(micro_batch))
            .map(|t| t.id)
    }

    /// Validates dependency sanity, order consistency, deadlock-freedom of
    /// in-order execution, and forward/backward coverage of every
    /// (stage, micro-batch) pair.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        let n = self.tasks.len();
        // Dependencies exist.
        for t in &self.tasks {
            for &d in &t.deps {
                if d.0 >= n {
                    return Err(ScheduleError::DanglingDependency { task: t.id, dep: d });
                }
            }
        }
        // Device order covers each device's tasks exactly once.
        for (dev, order) in self.device_order.iter().enumerate() {
            let listed: HashSet<TaskId> = order.iter().copied().collect();
            if listed.len() != order.len() {
                return Err(ScheduleError::OrderMismatch { device: dev });
            }
            let owned: HashSet<TaskId> = self
                .tasks
                .iter()
                .filter(|t| t.device == dev)
                .map(|t| t.id)
                .collect();
            if listed != owned {
                return Err(ScheduleError::OrderMismatch { device: dev });
            }
        }
        // Deadlock check: in-order execution with dependency waits.
        let mut done = vec![false; n];
        let mut cursor = vec![0usize; self.n_devices()];
        let mut scheduled = 0;
        loop {
            let mut progressed = false;
            for (dev, cur) in cursor.iter_mut().enumerate() {
                while *cur < self.device_order[dev].len() {
                    let id = self.device_order[dev][*cur];
                    let ready = self.tasks[id.0].deps.iter().all(|d| done[d.0]);
                    if ready {
                        done[id.0] = true;
                        *cur += 1;
                        scheduled += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
            }
            if scheduled == n {
                break;
            }
            if !progressed {
                return Err(ScheduleError::Deadlock {
                    scheduled,
                    total: n,
                });
            }
        }
        // Coverage: each (stage, micro-batch) has one forward and one backward.
        for stage in 0..self.n_stages {
            for mb in 0..self.n_micro {
                let fwd = self.find(WorkKind::Forward, stage, mb).is_some();
                let bwd = self.find(WorkKind::Backward, stage, mb).is_some();
                if !fwd || !bwd {
                    return Err(ScheduleError::IncompleteCoverage {
                        stage,
                        micro_batch: mb,
                    });
                }
            }
        }
        Ok(())
    }

    /// Computes nominal start/end times via in-order dependency-respecting
    /// execution with per-kind durations given by `duration`. Returns
    /// `(start, end)` per task, or the deadlock error.
    ///
    /// This is a minimal scheduler used by the Chimera builder (to merge its
    /// two pipelines by nominal time) and by tests; the full-featured
    /// simulator with timelines lives in `pipefisher-sim`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Deadlock`] if in-order execution stalls.
    pub fn nominal_times(
        &self,
        duration: impl Fn(&Task) -> f64,
    ) -> Result<Vec<(f64, f64)>, ScheduleError> {
        let n = self.tasks.len();
        let mut times = vec![(f64::NAN, f64::NAN); n];
        let mut done = vec![false; n];
        let mut cursor = vec![0usize; self.n_devices()];
        let mut free = vec![0.0f64; self.n_devices()];
        let mut scheduled = 0;
        loop {
            let mut progressed = false;
            for dev in 0..self.n_devices() {
                while cursor[dev] < self.device_order[dev].len() {
                    let id = self.device_order[dev][cursor[dev]];
                    let task = &self.tasks[id.0];
                    if !task.deps.iter().all(|d| done[d.0]) {
                        break;
                    }
                    let dep_end = task
                        .deps
                        .iter()
                        .map(|d| times[d.0].1)
                        .fold(0.0f64, f64::max);
                    let start = free[dev].max(dep_end);
                    let end = start + duration(task);
                    times[id.0] = (start, end);
                    free[dev] = end;
                    done[id.0] = true;
                    cursor[dev] += 1;
                    scheduled += 1;
                    progressed = true;
                }
            }
            if scheduled == n {
                return Ok(times);
            }
            if !progressed {
                return Err(ScheduleError::Deadlock {
                    scheduled,
                    total: n,
                });
            }
        }
    }

    /// Makespan under the given per-task durations.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Deadlock`] if in-order execution stalls.
    pub fn makespan(&self, duration: impl Fn(&Task) -> f64) -> Result<f64, ScheduleError> {
        Ok(self
            .nominal_times(duration)?
            .iter()
            .map(|&(_, e)| e)
            .fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_device_chain() -> TaskGraph {
        let mut g = TaskGraph::new("test", 2, 2, 1);
        let f0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        let f1 = g.push(
            1,
            1,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![f0],
        );
        let b1 = g.push(
            1,
            1,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![f1],
        );
        let _b0 = g.push(
            0,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![b1, f0],
        );
        g
    }

    #[test]
    fn valid_chain_passes() {
        assert!(two_device_chain().validate().is_ok());
    }

    #[test]
    fn nominal_times_respect_deps() {
        let g = two_device_chain();
        let times = g
            .nominal_times(|t| match t.kind {
                WorkKind::Forward => 1.0,
                _ => 2.0,
            })
            .unwrap();
        // F0: 0-1, F1: 1-2, B1: 2-4, B0: 4-6.
        assert_eq!(times[0], (0.0, 1.0));
        assert_eq!(times[1], (1.0, 2.0));
        assert_eq!(times[2], (2.0, 4.0));
        assert_eq!(times[3], (4.0, 6.0));
        assert_eq!(
            g.makespan(|t| if t.kind == WorkKind::Forward {
                1.0
            } else {
                2.0
            })
            .unwrap(),
            6.0
        );
    }

    #[test]
    fn deadlock_is_detected() {
        // Two tasks on one device, first depends on second → stalls.
        let mut g = TaskGraph::new("bad", 1, 1, 1);
        let placeholder = TaskId(1);
        g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![placeholder],
        );
        g.push(
            0,
            0,
            Some(0),
            WorkKind::Backward,
            StageAssignment::Single,
            vec![],
        );
        match g.validate() {
            Err(ScheduleError::Deadlock { .. }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn dangling_dep_is_detected() {
        let mut g = TaskGraph::new("bad", 1, 1, 1);
        g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![TaskId(99)],
        );
        match g.validate() {
            Err(ScheduleError::DanglingDependency { .. }) => {}
            other => panic!("expected dangling dep, got {other:?}"),
        }
    }

    #[test]
    fn missing_backward_is_detected() {
        let mut g = TaskGraph::new("bad", 1, 1, 1);
        g.push(
            0,
            0,
            Some(0),
            WorkKind::Forward,
            StageAssignment::Single,
            vec![],
        );
        match g.validate() {
            Err(ScheduleError::IncompleteCoverage { .. }) => {}
            other => panic!("expected coverage error, got {other:?}"),
        }
    }
}
