//! Interleaved 1F1B with virtual pipeline stages (Narayanan et al., 2021b).
//!
//! Each device hosts `v` *virtual* stages (device `d` owns stages
//! `d, d+D, d+2D, …`), shrinking the startup/tear-down bubble by ≈ `1/v` at
//! the cost of more P2P communication. This scheme is **not** in the
//! PipeFisher paper — it is included to exercise the paper's claim that the
//! automatic work assignment applies to *any* pipeline schedule (see
//! `pipefisher-core`'s `assign_graph`).

use crate::{StageAssignment, TaskGraph, TaskId, WorkKind};

/// Builds an interleaved 1F1B schedule: `n_stages_total = v · n_devices`
/// virtual stages round-robined over the devices, merged per device by an
/// event-driven greedy scheduler (ready head with the deepest stage first,
/// the same construction as the Chimera builder).
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn build_interleaved_1f1b(n_devices: usize, n_micro: usize, v: usize) -> TaskGraph {
    assert!(
        n_devices > 0 && n_micro > 0 && v > 0,
        "build_interleaved_1f1b: empty pipeline"
    );
    let total = v * n_devices;

    #[derive(Clone, Copy, PartialEq)]
    struct StreamOp {
        kind: WorkKind,
        stage: usize,
        micro_batch: usize,
    }
    // 1F1B stream per virtual stage over the full `total`-deep pipeline.
    let stream_for = |stage: usize| -> Vec<StreamOp> {
        let warmup = (total - 1 - stage).min(n_micro);
        let steady = n_micro - warmup;
        let mut ops = Vec::with_capacity(2 * n_micro);
        for m in 0..warmup {
            ops.push(StreamOp {
                kind: WorkKind::Forward,
                stage,
                micro_batch: m,
            });
        }
        for i in 0..steady {
            ops.push(StreamOp {
                kind: WorkKind::Forward,
                stage,
                micro_batch: warmup + i,
            });
            ops.push(StreamOp {
                kind: WorkKind::Backward,
                stage,
                micro_batch: i,
            });
        }
        for m in steady..n_micro {
            ops.push(StreamOp {
                kind: WorkKind::Backward,
                stage,
                micro_batch: m,
            });
        }
        ops
    };

    let streams: Vec<Vec<Vec<StreamOp>>> = (0..n_devices)
        .map(|dev| (0..v).map(|k| stream_for(dev + k * n_devices)).collect())
        .collect();
    let mut heads = vec![vec![0usize; v]; n_devices];
    let mut free_at = vec![0.0f64; n_devices];
    let key = |op: &StreamOp| -> usize {
        let k = (op.kind == WorkKind::Backward) as usize;
        (k * total + op.stage) * n_micro + op.micro_batch
    };
    let mut end_time = vec![f64::NAN; 2 * total * n_micro];
    let dur = |op: &StreamOp| {
        if op.kind == WorkKind::Forward {
            1.0
        } else {
            2.0
        }
    };
    let dep_end = |op: &StreamOp, end_time: &[f64]| -> Option<f64> {
        let mut latest = 0.0f64;
        let mut dep = |k: WorkKind, s: usize| -> bool {
            let e = end_time[key(&StreamOp {
                kind: k,
                stage: s,
                micro_batch: op.micro_batch,
            })];
            if e.is_nan() {
                return false;
            }
            latest = latest.max(e);
            true
        };
        let ok = match op.kind {
            WorkKind::Forward => op.stage == 0 || dep(WorkKind::Forward, op.stage - 1),
            WorkKind::Backward => {
                dep(WorkKind::Forward, op.stage)
                    && (op.stage + 1 == total || dep(WorkKind::Backward, op.stage + 1))
            }
            _ => unreachable!(),
        };
        ok.then_some(latest)
    };

    let total_ops = 2 * total * n_micro;
    let mut realized: Vec<Vec<StreamOp>> = vec![Vec::new(); n_devices];
    let mut scheduled = 0;
    let mut now = 0.0f64;
    while scheduled < total_ops {
        let mut progressed = false;
        for dev in 0..n_devices {
            if free_at[dev] > now + 1e-9 {
                continue;
            }
            let mut best: Option<(usize, usize)> = None; // (stream, stage)
            for st in 0..v {
                if heads[dev][st] >= streams[dev][st].len() {
                    continue;
                }
                let op = streams[dev][st][heads[dev][st]];
                if let Some(de) = dep_end(&op, &end_time) {
                    if de <= now + 1e-9 {
                        let better = match best {
                            None => true,
                            Some((_, stage)) => op.stage > stage,
                        };
                        if better {
                            best = Some((st, op.stage));
                        }
                    }
                }
            }
            if let Some((st, _)) = best {
                let op = streams[dev][st][heads[dev][st]];
                heads[dev][st] += 1;
                end_time[key(&op)] = now + dur(&op);
                free_at[dev] = now + dur(&op);
                realized[dev].push(op);
                scheduled += 1;
                progressed = true;
            }
        }
        if !progressed {
            let mut next = f64::INFINITY;
            for dev in 0..n_devices {
                if free_at[dev] > now + 1e-9 {
                    next = next.min(free_at[dev]);
                }
                for st in 0..v {
                    if heads[dev][st] < streams[dev][st].len() {
                        let op = streams[dev][st][heads[dev][st]];
                        if let Some(de) = dep_end(&op, &end_time) {
                            if de > now + 1e-9 {
                                next = next.min(de.max(free_at[dev]));
                            }
                        }
                    }
                }
            }
            assert!(
                next.is_finite(),
                "build_interleaved_1f1b: merge stalled at t={now} ({scheduled}/{total_ops})"
            );
            now = next;
        }
    }

    let mut g = TaskGraph::new(format!("1f1b-interleaved-v{v}"), n_devices, total, n_micro);
    let mut fwd = vec![vec![None; n_micro]; total];
    let mut bwd = vec![vec![None; n_micro]; total];
    for (dev, ops) in realized.iter().enumerate() {
        for op in ops {
            let id = g.push(
                dev,
                op.stage,
                Some(op.micro_batch),
                op.kind,
                StageAssignment::Single,
                vec![],
            );
            match op.kind {
                WorkKind::Forward => fwd[op.stage][op.micro_batch] = Some(id),
                WorkKind::Backward => bwd[op.stage][op.micro_batch] = Some(id),
                _ => unreachable!(),
            }
        }
    }
    let mut deps_to_set: Vec<(TaskId, Vec<TaskId>)> = Vec::new();
    for s in 0..total {
        for m in 0..n_micro {
            if let Some(f) = fwd[s][m] {
                if s > 0 {
                    deps_to_set.push((f, vec![fwd[s - 1][m].expect("fwd dep")]));
                }
            }
            if let Some(b) = bwd[s][m] {
                let mut deps = vec![fwd[s][m].expect("same-stage fwd")];
                if s + 1 < total {
                    deps.push(bwd[s + 1][m].expect("bwd dep"));
                }
                deps_to_set.push((b, deps));
            }
        }
    }
    g.set_deps(deps_to_set);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_1f1b;

    fn cost(t: &crate::Task) -> f64 {
        match t.kind {
            WorkKind::Forward => 1.0,
            WorkKind::Backward => 2.0,
            _ => 0.0,
        }
    }

    #[test]
    fn validates_across_sizes() {
        for d in [2usize, 4, 8] {
            for v in [1usize, 2, 4] {
                for n in [d, 2 * d] {
                    let g = build_interleaved_1f1b(d, n, v);
                    g.validate()
                        .unwrap_or_else(|e| panic!("d={d} v={v} n={n}: {e}"));
                    assert_eq!(g.tasks().len(), 2 * v * d * n);
                    assert_eq!(g.n_stages(), v * d);
                }
            }
        }
    }

    #[test]
    fn v1_matches_plain_1f1b_makespan() {
        for d in [2usize, 4, 8] {
            let plain = build_1f1b(d, d).makespan(cost).unwrap();
            let inter = build_interleaved_1f1b(d, d, 1).makespan(cost).unwrap();
            assert!((plain - inter).abs() < 1e-9, "d={d}: {inter} vs {plain}");
        }
    }

    #[test]
    fn more_virtual_stages_reduce_bubble_fraction() {
        // With v virtual chunks the per-chunk pipeline fill shrinks; each
        // device's busy time is constant (v chunks of 1/v the work would
        // need scaled costs — here chunk cost is constant so busy grows,
        // making the utilization comparison direct: same per-op costs, more
        // ops per device, same fill latency → higher utilization).
        let d = 4;
        let util = |v: usize| {
            let g = build_interleaved_1f1b(d, d, v);
            let times = g.nominal_times(cost).unwrap();
            let span = times.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
            let busy: f64 = times.iter().map(|&(s, e)| e - s).sum();
            busy / (span * d as f64)
        };
        let u1 = util(1);
        let u2 = util(2);
        let u4 = util(4);
        assert!(u2 > u1, "{u2} vs {u1}");
        assert!(u4 > u2, "{u4} vs {u2}");
    }

    #[test]
    fn devices_host_v_stages_round_robin() {
        let g = build_interleaved_1f1b(4, 4, 2);
        for dev in 0..4 {
            let stages: std::collections::BTreeSet<usize> = g
                .tasks()
                .iter()
                .filter(|t| t.device == dev)
                .map(|t| t.stage)
                .collect();
            assert_eq!(stages.len(), 2);
            assert!(stages.contains(&dev));
            assert!(stages.contains(&(dev + 4)));
        }
    }
}
