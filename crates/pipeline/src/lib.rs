//! Pipeline-parallel schedules: GPipe, 1F1B, and Chimera.
//!
//! A schedule is a [`TaskGraph`]: the set of forward/backward work units of
//! one synchronous pipeline step (one mini-batch, `N_micro` micro-batches
//! over `D` stages), with
//!
//! * explicit **dependencies** (a stage's forward needs the previous stage's
//!   forward for the same micro-batch; a backward needs the next stage's
//!   backward and the same-stage forward), and
//! * a per-device **execution order** (devices run their queue in order,
//!   starting each task once its dependencies finish — exactly how the
//!   discrete-event simulator in `pipefisher-sim` plays it).
//!
//! Three builders are provided, matching the paper's Figure 1/3/4 setups:
//!
//! * [`build_gpipe`] — all forwards, then all backwards (reverse order).
//! * [`build_1f1b`] — PipeDream-flush: warmup forwards, steady
//!   one-forward-one-backward, cooldown backwards.
//! * [`build_chimera`] — two bidirectional pipelines (Li & Hoefler 2021);
//!   each device owns one *down*-pipeline stage and one *up*-pipeline stage,
//!   halving the bubble count (`C_f = D`, `C_b = 2D − 2` on the critical
//!   path for `N_micro = D`, Table 1 of the paper).
//!
//! # Example
//!
//! ```
//! use pipefisher_pipeline::{build_gpipe, WorkKind};
//!
//! let g = build_gpipe(4, 4);
//! assert_eq!(g.n_devices(), 4);
//! // 4 stages × 4 micro-batches, forward + backward each:
//! assert_eq!(g.tasks().len(), 32);
//! assert!(g.validate().is_ok());
//! ```

mod asynchronous;
mod builders;
mod graph;
mod interleaved;
mod recompute;
mod work;

pub use asynchronous::{async_staleness, build_async_1f1b, is_flush_free};
pub use builders::{build_1f1b, build_chimera, build_gpipe, PipelineScheme};
pub use graph::{ScheduleError, TaskGraph};
pub use interleaved::build_interleaved_1f1b;
pub use recompute::with_recompute;
pub use work::{Factor, StageAssignment, Task, TaskId, WorkKind};
