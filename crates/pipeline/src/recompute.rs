//! Activation recomputation (Griewank & Walther 2000) as schedule tasks.
//!
//! With memory-saving recomputation (`R` in the paper's figures), a stage
//! stores only its input during the forward pass and re-runs the forward
//! right before the backward. On the schedule this inserts one `Recompute`
//! task per (stage, micro-batch) immediately before its backward, which
//! lengthens the step but also *enlarges the bubbles* available to
//! PipeFisher (paper §3.3: "As T_bubble is increased by activation
//! recomputation, curvature information is updated at a higher frequency").

use crate::{TaskGraph, TaskId, WorkKind};

/// Rebuilds `graph` with a `Recompute` task inserted directly before every
/// `Backward` on the same device, carrying the same (stage, micro-batch).
///
/// The recompute task depends on the original same-(stage, micro-batch)
/// forward (whose *input* is what was kept in memory), and the backward
/// additionally depends on the recompute.
///
/// # Panics
///
/// Panics if the graph lacks a forward for some backward (invalid input).
pub fn with_recompute(graph: &TaskGraph) -> TaskGraph {
    let mut out = TaskGraph::new(
        format!("{}+R", graph.scheme_name()),
        graph.n_devices(),
        graph.n_stages(),
        graph.n_micro(),
    );
    // Old-id → new-id map, filled as we copy in device order… but tasks
    // must be pushed per device in order while dependencies may point to
    // tasks on other devices not yet copied. So: first pass pushes tasks
    // (empty deps) in per-device order, second pass wires deps.
    let mut new_id_of = vec![None::<TaskId>; graph.tasks().len()];
    let mut recompute_of = vec![None::<TaskId>; graph.tasks().len()]; // keyed by backward old-id
    for (dev, order) in graph.device_order().iter().enumerate() {
        for &old in order {
            let t = graph.task(old);
            if t.kind == WorkKind::Backward {
                let r = out.push(
                    dev,
                    t.stage,
                    t.micro_batch,
                    WorkKind::Recompute,
                    t.pipeline,
                    vec![],
                );
                recompute_of[old.0] = Some(r);
            }
            let id = out.push(dev, t.stage, t.micro_batch, t.kind, t.pipeline, vec![]);
            new_id_of[old.0] = Some(id);
        }
    }
    let mut deps_to_set = Vec::new();
    for t in graph.tasks() {
        let new_id = new_id_of[t.id.0].expect("copied");
        let mut deps: Vec<TaskId> = t
            .deps
            .iter()
            .map(|d| new_id_of[d.0].expect("dep copied"))
            .collect();
        if t.kind == WorkKind::Backward {
            let r = recompute_of[t.id.0].expect("recompute inserted");
            // Recompute inherits the forward dependency (the stored stage
            // input); the backward then waits on the recompute too.
            let fwd = graph
                .find(
                    WorkKind::Forward,
                    t.stage,
                    t.micro_batch.expect("backward has mb"),
                )
                .expect("with_recompute: backward without forward");
            deps_to_set.push((r, vec![new_id_of[fwd.0].expect("fwd copied")]));
            deps.push(r);
        }
        deps_to_set.push((new_id, deps));
    }
    out.set_deps(deps_to_set);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_chimera, build_gpipe, PipelineScheme};

    fn cost(t: &crate::Task) -> f64 {
        match t.kind {
            WorkKind::Forward | WorkKind::Recompute => 1.0,
            WorkKind::Backward => 2.0,
            _ => 0.0,
        }
    }

    #[test]
    fn recompute_graph_validates() {
        for scheme in PipelineScheme::all() {
            let g = with_recompute(&scheme.build(4, 4));
            g.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(g.scheme_name().ends_with("+R"));
            // One recompute per backward.
            let n_b = g
                .tasks()
                .iter()
                .filter(|t| t.kind == WorkKind::Backward)
                .count();
            let n_r = g
                .tasks()
                .iter()
                .filter(|t| t.kind == WorkKind::Recompute)
                .count();
            assert_eq!(n_b, n_r);
        }
    }

    #[test]
    fn recompute_precedes_its_backward() {
        let g = with_recompute(&build_gpipe(4, 4));
        let times = g.nominal_times(cost).unwrap();
        for t in g.tasks() {
            if t.kind == WorkKind::Backward {
                let r = g
                    .tasks()
                    .iter()
                    .find(|x| {
                        x.kind == WorkKind::Recompute
                            && x.stage == t.stage
                            && x.micro_batch == t.micro_batch
                    })
                    .unwrap();
                assert!(times[r.id.0].1 <= times[t.id.0].0 + 1e-9);
            }
        }
    }

    #[test]
    fn recompute_lengthens_step_but_overlaps_idle_time() {
        let plain = build_gpipe(4, 4);
        let r = with_recompute(&plain);
        let m_plain = plain.makespan(cost).unwrap();
        let m_r = r.makespan(cost).unwrap();
        assert!(m_r > m_plain, "{m_r} vs {m_plain}");
        // The paper's analytic model charges T_b_eff = T_b + T_recompute on
        // the whole critical path — an upper bound. The simulated schedule
        // does better because a device can run recomputes while *waiting*
        // for the downstream backward (early recomputation), so:
        let upper = (4.0 + 4.0 - 1.0) * 4.0; // (N+D−1)·(T_f+T_b+T_r)
        assert!(m_r <= upper + 1e-9, "{m_r} vs bound {upper}");
    }

    #[test]
    fn chimera_recompute_within_paper_model_bound() {
        let g = with_recompute(&build_chimera(4, 4));
        let m = g.makespan(cost).unwrap();
        let plain = build_chimera(4, 4).makespan(cost).unwrap();
        let upper = 4.0 * 1.0 + 6.0 * 3.0; // C_f·T_f + C_b·(T_b + T_r)
        assert!(m > plain, "{m} vs plain {plain}");
        assert!(m <= upper + 1e-9, "{m} vs bound {upper}");
    }
}
