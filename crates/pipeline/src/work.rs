//! Work units of a pipeline step.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which Kronecker factor a K-FAC work unit concerns (paper §2.3.1):
/// `A` is built from input activations, `B` from output-gradient errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Factor {
    /// Input-activation factor `A_l` (available after a forward pass).
    A,
    /// Error factor `B_l` (available after a backward pass).
    B,
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Factor::A => write!(f, "A"),
            Factor::B => write!(f, "B"),
        }
    }
}

/// The kind of work a task performs.
///
/// `Forward`/`Backward`/`Recompute` are the *standard* work of any pipeline
/// scheme; the rest is the *extra* work PipeFisher assigns to bubbles
/// (plus the collectives used by data parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkKind {
    /// Forward pass of one micro-batch through one stage.
    Forward,
    /// Backward pass of one micro-batch through one stage.
    Backward,
    /// Activation recomputation before a backward (when memory-saving `R`
    /// is on, Griewank & Walther 2000).
    Recompute,
    /// K-FAC curvature work: build one Kronecker factor for one micro-batch.
    Curvature(Factor),
    /// K-FAC inversion work: damped Cholesky inverse of one factor.
    Inversion(Factor),
    /// K-FAC precondition work for all layers in a stage (every step).
    Precondition,
    /// Gradient allreduce across data-parallel replicas of a stage.
    SyncGrad,
    /// Kronecker-factor allreduce across data-parallel replicas of a stage.
    SyncCurvature,
}

impl WorkKind {
    /// Whether this is standard pipeline work (present without K-FAC).
    pub fn is_standard(&self) -> bool {
        matches!(
            self,
            WorkKind::Forward | WorkKind::Backward | WorkKind::Recompute
        )
    }

    /// Whether this is K-FAC extra work.
    pub fn is_kfac(&self) -> bool {
        matches!(
            self,
            WorkKind::Curvature(_)
                | WorkKind::Inversion(_)
                | WorkKind::Precondition
                | WorkKind::SyncCurvature
        )
    }

    /// Short label used in rendered timelines.
    pub fn label(&self) -> &'static str {
        match self {
            WorkKind::Forward => "F",
            WorkKind::Backward => "B",
            WorkKind::Recompute => "R",
            WorkKind::Curvature(Factor::A) => "Ca",
            WorkKind::Curvature(Factor::B) => "Cb",
            WorkKind::Inversion(Factor::A) => "Ia",
            WorkKind::Inversion(Factor::B) => "Ib",
            WorkKind::Precondition => "P",
            WorkKind::SyncGrad => "Sg",
            WorkKind::SyncCurvature => "Sc",
        }
    }
}

impl fmt::Display for WorkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Index of a task within its [`crate::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// Which pipeline a stage belongs to in bidirectional schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageAssignment {
    /// The only pipeline of a unidirectional scheme (GPipe, 1F1B).
    Single,
    /// Chimera's down pipeline (stage `s` on device `s`).
    Down,
    /// Chimera's up pipeline (stage `s` on device `D−1−s`).
    Up,
}

/// One schedulable unit of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier (index into the owning graph).
    pub id: TaskId,
    /// Executing device.
    pub device: usize,
    /// Pipeline stage the work belongs to.
    pub stage: usize,
    /// Micro-batch index, when the work is per-micro-batch.
    pub micro_batch: Option<usize>,
    /// What the task does.
    pub kind: WorkKind,
    /// Which pipeline the stage belongs to (for Chimera).
    pub pipeline: StageAssignment,
    /// Tasks that must complete before this one starts (besides the
    /// device-order constraint).
    pub deps: Vec<TaskId>,
}

impl Task {
    /// Compact human-readable description, e.g. `F[mb2,s1]`.
    pub fn describe(&self) -> String {
        match self.micro_batch {
            Some(mb) => format!("{}[mb{},s{}]", self.kind.label(), mb, self.stage),
            None => format!("{}[s{}]", self.kind.label(), self.stage),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vs_kfac_partition() {
        assert!(WorkKind::Forward.is_standard());
        assert!(WorkKind::Recompute.is_standard());
        assert!(!WorkKind::Forward.is_kfac());
        assert!(WorkKind::Curvature(Factor::A).is_kfac());
        assert!(WorkKind::Precondition.is_kfac());
        // SyncGrad is neither standard pipeline work nor K-FAC work: it is
        // pure data-parallel overhead shared by both baselines.
        assert!(!WorkKind::SyncGrad.is_standard());
        assert!(!WorkKind::SyncGrad.is_kfac());
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            WorkKind::Forward,
            WorkKind::Backward,
            WorkKind::Recompute,
            WorkKind::Curvature(Factor::A),
            WorkKind::Curvature(Factor::B),
            WorkKind::Inversion(Factor::A),
            WorkKind::Inversion(Factor::B),
            WorkKind::Precondition,
            WorkKind::SyncGrad,
            WorkKind::SyncCurvature,
        ];
        let labels: HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn describe_formats() {
        let t = Task {
            id: TaskId(0),
            device: 1,
            stage: 2,
            micro_batch: Some(3),
            kind: WorkKind::Backward,
            pipeline: StageAssignment::Single,
            deps: vec![],
        };
        assert_eq!(t.describe(), "B[mb3,s2]");
    }
}
