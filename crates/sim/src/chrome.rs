//! Chrome/Perfetto export of simulated [`Timeline`]s.
//!
//! Converts a timeline — the simulator's Nsight-profile equivalent — into
//! `trace_event` slices that `ui.perfetto.dev` or `chrome://tracing` render
//! as one track per device, color-coded by work kind, with the idle gaps
//! PipeFisher targets drawn as explicit `bubble` slices. Because wall-clock
//! spans from the real trainer export to the same format (under a different
//! `pid`), a simulated step and a measured step can be loaded side by side.

use crate::timeline::Timeline;
use pipefisher_pipeline::WorkKind;
use pipefisher_trace::{chrome_trace_json, TraceEvent};
use serde_json::{json, Value};

/// The `pid` simulated-timeline tracks are grouped under (wall-clock spans
/// from the live process use pid 0).
pub const SIM_PID: u64 = 1;

/// Trace-viewer color (`cname`) for each work kind.
fn kind_cname(kind: WorkKind) -> &'static str {
    match kind {
        WorkKind::Forward => "thread_state_running",
        WorkKind::Backward => "rail_response",
        WorkKind::Recompute => "thread_state_runnable",
        WorkKind::Curvature(_) => "yellow",
        WorkKind::Inversion(_) => "terrible",
        WorkKind::Precondition => "rail_animation",
        WorkKind::SyncGrad => "grey",
        WorkKind::SyncCurvature => "light_memory_dump",
    }
}

/// Event category for each work kind (Perfetto's filter facet).
fn kind_category(kind: WorkKind) -> &'static str {
    match kind {
        WorkKind::Forward => "fwd",
        WorkKind::Backward => "bwd",
        WorkKind::Recompute => "recompute",
        WorkKind::Curvature(_) => "curvature",
        WorkKind::Inversion(_) => "inversion",
        WorkKind::Precondition => "precondition",
        WorkKind::SyncGrad | WorkKind::SyncCurvature => "sync",
    }
}

impl Timeline {
    /// This timeline as Chrome `trace_event` records: per-device metadata,
    /// one complete slice per interval (in [`Timeline::sorted_intervals`]
    /// order, so output does not depend on push order), and one `bubble`
    /// slice per idle gap within `[0, makespan]`.
    ///
    /// Simulated time is unitless; `us_per_unit` scales it to the format's
    /// microseconds (e.g. `1e6` when one unit is a second).
    ///
    /// # Panics
    ///
    /// Panics if `us_per_unit` is not strictly positive.
    pub fn chrome_trace_events(&self, us_per_unit: f64) -> Vec<TraceEvent> {
        assert!(
            us_per_unit > 0.0,
            "chrome_trace_events: nonpositive time scale"
        );
        let mut events = vec![TraceEvent::process_name(SIM_PID, "simulated pipeline")];
        for d in 0..self.n_devices() {
            events.push(TraceEvent::thread_name(
                SIM_PID,
                d as u64,
                format!("device {d}"),
            ));
        }
        for i in self.sorted_intervals() {
            let name = match i.micro_batch {
                Some(mb) => format!("{} mb{mb}", i.kind.label()),
                None => i.kind.label().to_string(),
            };
            let mut event = TraceEvent::slice(
                name,
                kind_category(i.kind),
                i.start * us_per_unit,
                i.len() * us_per_unit,
                SIM_PID,
                i.device as u64,
            )
            .with_cname(kind_cname(i.kind))
            .with_arg("stage", json!(i.stage));
            if let Some(mb) = i.micro_batch {
                event = event.with_arg("micro_batch", json!(mb));
            }
            events.push(event);
        }
        let horizon = self.makespan();
        for d in 0..self.n_devices() {
            for (s, e) in self.bubbles(d, horizon) {
                events.push(
                    TraceEvent::slice(
                        "bubble",
                        "bubble",
                        s * us_per_unit,
                        (e - s) * us_per_unit,
                        SIM_PID,
                        d as u64,
                    )
                    .with_cname("white"),
                );
            }
        }
        events
    }

    /// [`Timeline::chrome_trace_events`] wrapped in the Chrome "JSON Object
    /// Format" envelope, ready to write to a `.json` file.
    pub fn chrome_trace_json(&self, us_per_unit: f64) -> Value {
        chrome_trace_json(&self.chrome_trace_events(us_per_unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Interval;
    use pipefisher_trace::Phase;

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.push(Interval {
            device: 0,
            start: 0.0,
            end: 1.0,
            kind: WorkKind::Forward,
            stage: 0,
            micro_batch: Some(0),
        });
        t.push(Interval {
            device: 0,
            start: 2.0,
            end: 4.0,
            kind: WorkKind::Backward,
            stage: 0,
            micro_batch: Some(0),
        });
        t.push(Interval {
            device: 1,
            start: 1.0,
            end: 2.0,
            kind: WorkKind::Inversion(pipefisher_pipeline::Factor::A),
            stage: 1,
            micro_batch: None,
        });
        t
    }

    #[test]
    fn every_interval_becomes_a_slice() {
        let t = sample();
        let events = t.chrome_trace_events(1000.0);
        let work: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::Complete && e.cat != "bubble")
            .collect();
        assert_eq!(work.len(), t.intervals().len());
        // dev0 F at [0,1): ts 0µs dur 1000µs on tid 0.
        let f = work.iter().find(|e| e.name == "F mb0").unwrap();
        assert_eq!(f.ts_us, 0.0);
        assert_eq!(f.dur_us, 1000.0);
        assert_eq!((f.pid, f.tid), (SIM_PID, 0));
        // The inversion is color-coded and categorized as K-FAC work.
        let inv = work.iter().find(|e| e.name == "Ia").unwrap();
        assert_eq!(inv.cat, "inversion");
        assert_eq!(inv.cname, Some("terrible"));
    }

    #[test]
    fn bubbles_are_explicit_slices() {
        let t = sample();
        let events = t.chrome_trace_events(1000.0);
        let bubbles: Vec<_> = events.iter().filter(|e| e.cat == "bubble").collect();
        // dev0: [1,2); dev1: [0,1) and [2,4).
        assert_eq!(bubbles.len(), 3);
        let total_bubble_us: f64 = bubbles.iter().map(|e| e.dur_us).sum();
        assert!((total_bubble_us - t.total_bubble(t.makespan()) * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn export_is_push_order_independent_and_roundtrips() {
        let a = sample();
        let mut b = Timeline::new(2);
        for i in a.intervals().iter().rev() {
            b.push(i.clone());
        }
        let ja = serde_json::to_string_pretty(&a.chrome_trace_json(1000.0)).unwrap();
        let jb = serde_json::to_string_pretty(&b.chrome_trace_json(1000.0)).unwrap();
        assert_eq!(ja, jb);
        let back = serde_json::from_str(&ja).unwrap();
        assert_eq!(
            back.get("traceEvents").unwrap().as_array().unwrap().len(),
            1 + 2 + 3 + 3 // process_name + thread_names + work + bubbles
        );
    }
}
