//! Collective-communication cost models.

/// Time for a ring allreduce of `bytes` across `n` participants:
/// `2·(n−1)·latency + 2·(n−1)/n · bytes / bandwidth` (reduce-scatter +
/// allgather). With `n <= 1` the collective is free.
///
/// Used for the `sync-grad` and `sync-curvature` steps of data-parallel
/// training (paper §3.2); PipeFisher amortizes `sync-curvature` by splitting
/// inversion work across replicas.
///
/// # Panics
///
/// Panics if `bandwidth <= 0`.
pub fn ring_allreduce_time(bytes: f64, n: usize, bandwidth: f64, latency: f64) -> f64 {
    assert!(
        bandwidth > 0.0,
        "ring_allreduce_time: bandwidth must be positive"
    );
    if n <= 1 {
        return 0.0;
    }
    let hops = (n - 1) as f64;
    2.0 * hops * latency + 2.0 * hops / n as f64 * bytes / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_participant_is_free() {
        assert_eq!(ring_allreduce_time(1e9, 1, 1e9, 1e-5), 0.0);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        // 1 GB over 10 GB/s between 2 ranks: 2·(1/2)·1e9/1e10 = 0.1 s.
        let t = ring_allreduce_time(1e9, 2, 1e10, 0.0);
        assert!((t - 0.1).abs() < 1e-9);
    }

    #[test]
    fn latency_term_scales_with_ring_size() {
        let t4 = ring_allreduce_time(0.0, 4, 1e9, 1e-5);
        let t8 = ring_allreduce_time(0.0, 8, 1e9, 1e-5);
        assert!((t4 - 6e-5).abs() < 1e-12);
        assert!((t8 - 14e-5).abs() < 1e-12);
    }

    #[test]
    fn asymptotically_bandwidth_bound() {
        // As n → ∞ the data term tends to 2·bytes/bandwidth.
        let t = ring_allreduce_time(1e9, 1024, 1e10, 0.0);
        assert!((t - 2.0 * 1e9 / 1e10 * 1023.0 / 1024.0).abs() < 1e-9);
    }
}
