//! Cost models assigning a duration to each task.

use pipefisher_pipeline::{Factor, Task, WorkKind};

/// Maps a task to its execution time (in arbitrary but consistent units;
/// the perfmodel crate uses seconds).
pub trait CostModel {
    /// Duration of `task` on its device.
    fn duration(&self, task: &Task) -> f64;
}

impl<F: Fn(&Task) -> f64> CostModel for F {
    fn duration(&self, task: &Task) -> f64 {
        self(task)
    }
}

/// Uniform forward/backward durations; all other work free.
///
/// Useful for schedule-shape tests where only the standard work matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformCost {
    /// Forward duration per micro-batch per stage.
    pub t_f: f64,
    /// Backward duration per micro-batch per stage.
    pub t_b: f64,
}

impl UniformCost {
    /// Creates a uniform cost model.
    pub fn new(t_f: f64, t_b: f64) -> Self {
        UniformCost { t_f, t_b }
    }
}

impl CostModel for UniformCost {
    fn duration(&self, task: &Task) -> f64 {
        match task.kind {
            WorkKind::Forward => self.t_f,
            WorkKind::Backward => self.t_b,
            WorkKind::Recompute => self.t_f,
            _ => 0.0,
        }
    }
}

/// Per-kind durations for every work type (per stage, per micro-batch where
/// applicable). This is the shape the §3.3 performance model produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindCost {
    /// Forward pass, one micro-batch through one stage.
    pub t_f: f64,
    /// Backward pass, one micro-batch through one stage.
    pub t_b: f64,
    /// Activation recomputation (≈ forward).
    pub t_recompute: f64,
    /// Curvature work for factor `A` of one stage, one micro-batch.
    pub t_curv_a: f64,
    /// Curvature work for factor `B` of one stage, one micro-batch.
    pub t_curv_b: f64,
    /// Inversion of all `A` factors of one stage.
    pub t_inv_a: f64,
    /// Inversion of all `B` factors of one stage.
    pub t_inv_b: f64,
    /// Preconditioning all layers of one stage.
    pub t_prec: f64,
    /// Gradient allreduce across the stage's data-parallel replicas.
    pub t_sync_grad: f64,
    /// Kronecker-factor allreduce across the stage's replicas.
    pub t_sync_curv: f64,
}

impl KindCost {
    /// A cost table with only forward/backward set (others zero).
    pub fn standard(t_f: f64, t_b: f64) -> Self {
        KindCost {
            t_f,
            t_b,
            t_recompute: t_f,
            t_curv_a: 0.0,
            t_curv_b: 0.0,
            t_inv_a: 0.0,
            t_inv_b: 0.0,
            t_prec: 0.0,
            t_sync_grad: 0.0,
            t_sync_curv: 0.0,
        }
    }

    /// Total curvature time for one micro-batch (both factors).
    pub fn t_curv(&self) -> f64 {
        self.t_curv_a + self.t_curv_b
    }

    /// Total inversion time for one stage (both factors).
    pub fn t_inv(&self) -> f64 {
        self.t_inv_a + self.t_inv_b
    }
}

impl CostModel for KindCost {
    fn duration(&self, task: &Task) -> f64 {
        match task.kind {
            WorkKind::Forward => self.t_f,
            WorkKind::Backward => self.t_b,
            WorkKind::Recompute => self.t_recompute,
            WorkKind::Curvature(Factor::A) => self.t_curv_a,
            WorkKind::Curvature(Factor::B) => self.t_curv_b,
            WorkKind::Inversion(Factor::A) => self.t_inv_a,
            WorkKind::Inversion(Factor::B) => self.t_inv_b,
            WorkKind::Precondition => self.t_prec,
            WorkKind::SyncGrad => self.t_sync_grad,
            WorkKind::SyncCurvature => self.t_sync_curv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefisher_pipeline::{StageAssignment, TaskId};

    fn task(kind: WorkKind) -> Task {
        Task {
            id: TaskId(0),
            device: 0,
            stage: 0,
            micro_batch: Some(0),
            kind,
            pipeline: StageAssignment::Single,
            deps: vec![],
        }
    }

    #[test]
    fn uniform_cost_maps_kinds() {
        let c = UniformCost::new(1.0, 2.0);
        assert_eq!(c.duration(&task(WorkKind::Forward)), 1.0);
        assert_eq!(c.duration(&task(WorkKind::Backward)), 2.0);
        assert_eq!(c.duration(&task(WorkKind::Precondition)), 0.0);
    }

    #[test]
    fn kind_cost_covers_all_kinds() {
        let c = KindCost {
            t_f: 1.0,
            t_b: 2.0,
            t_recompute: 0.9,
            t_curv_a: 0.3,
            t_curv_b: 0.4,
            t_inv_a: 0.5,
            t_inv_b: 0.6,
            t_prec: 0.7,
            t_sync_grad: 0.1,
            t_sync_curv: 0.2,
        };
        assert_eq!(c.duration(&task(WorkKind::Curvature(Factor::B))), 0.4);
        assert_eq!(c.duration(&task(WorkKind::Inversion(Factor::A))), 0.5);
        assert_eq!(c.duration(&task(WorkKind::SyncCurvature)), 0.2);
        assert!((c.t_curv() - 0.7).abs() < 1e-12);
        assert!((c.t_inv() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn closures_are_cost_models() {
        let c = |t: &Task| {
            if t.kind == WorkKind::Forward {
                3.0
            } else {
                0.0
            }
        };
        assert_eq!(CostModel::duration(&c, &task(WorkKind::Forward)), 3.0);
    }
}
