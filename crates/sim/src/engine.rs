//! The simulation engine: play a task graph against a cost model.

use crate::{CostModel, Interval, Timeline};
use pipefisher_pipeline::{ScheduleError, TaskGraph};

/// Simulates `graph` on its devices: each device executes its queue in
/// order, starting a task at `max(device free, dependency ends)` with the
/// duration given by `cost`. Returns the full execution [`Timeline`].
///
/// # Errors
///
/// Returns [`ScheduleError::Deadlock`] if the in-order execution stalls
/// (a dependency cycle through device queues).
///
/// # Example
///
/// ```
/// use pipefisher_pipeline::build_1f1b;
/// use pipefisher_sim::{simulate, UniformCost};
///
/// let tl = simulate(&build_1f1b(2, 4), &UniformCost::new(1.0, 2.0)).unwrap();
/// assert!(tl.is_overlap_free(1e-9));
/// assert_eq!(tl.makespan(), 15.0); // (N + D − 1)·(T_f + T_b)
/// ```
pub fn simulate(graph: &TaskGraph, cost: &dyn CostModel) -> Result<Timeline, ScheduleError> {
    let times = graph.nominal_times(|t| cost.duration(t))?;
    let mut timeline = Timeline::new(graph.n_devices());
    for task in graph.tasks() {
        let (start, end) = times[task.id.0];
        if end > start {
            timeline.push(Interval {
                device: task.device,
                start,
                end,
                kind: task.kind,
                stage: task.stage,
                micro_batch: task.micro_batch,
            });
        }
    }
    Ok(timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformCost;
    use pipefisher_pipeline::{build_1f1b, build_chimera, build_gpipe, PipelineScheme};

    const COST: UniformCost = UniformCost { t_f: 1.0, t_b: 2.0 };

    #[test]
    fn gpipe_bubble_ratio_matches_formula() {
        // GPipe total bubble fraction = (D−1)/(N+D−1) for any T_f, T_b.
        for (d, n) in [(2, 2), (4, 4), (4, 8), (8, 8)] {
            let tl = simulate(&build_gpipe(d, n), &COST).unwrap();
            let expect = (d - 1) as f64 / (n + d - 1) as f64;
            assert!(
                ((1.0 - tl.utilization()) - expect).abs() < 1e-9,
                "d={d} n={n}: util {}",
                tl.utilization()
            );
        }
    }

    #[test]
    fn chimera_utilization_beats_gpipe_and_1f1b() {
        for d in [4usize, 8] {
            let u_gpipe = simulate(&build_gpipe(d, d), &COST).unwrap().utilization();
            let u_1f1b = simulate(&build_1f1b(d, d), &COST).unwrap().utilization();
            let u_chimera = simulate(&build_chimera(d, d), &COST).unwrap().utilization();
            assert!((u_gpipe - u_1f1b).abs() < 1e-9); // same critical path w/ flush
            assert!(u_chimera > u_gpipe, "d={d}: {u_chimera} vs {u_gpipe}");
        }
    }

    #[test]
    fn chimera_d4_utilization_near_paper_value() {
        // Paper §4: Chimera baseline utilization 75.9% for BERT-Base D=4
        // (measured on P100s). The pure schedule model gives exactly 75%
        // with T_b = 2·T_f — the shape the reproduction targets.
        let tl = simulate(&build_chimera(4, 4), &COST).unwrap();
        assert!(
            (tl.utilization() - 0.75).abs() < 1e-9,
            "{}",
            tl.utilization()
        );
    }

    #[test]
    fn conservation_busy_plus_bubbles() {
        for scheme in PipelineScheme::all() {
            let g = scheme.build(4, 4);
            let tl = simulate(&g, &COST).unwrap();
            let span = tl.makespan();
            for dev in 0..g.n_devices() {
                let busy = tl.device_busy(dev);
                let bub: f64 = tl.bubbles(dev, span).iter().map(|(s, e)| e - s).sum();
                assert!(
                    (busy + bub - span).abs() < 1e-9,
                    "{} dev {dev}",
                    scheme.name()
                );
            }
            assert!(tl.is_overlap_free(1e-9));
        }
    }

    #[test]
    fn determinism() {
        let g = build_chimera(8, 8);
        let t1 = simulate(&g, &COST).unwrap();
        let t2 = simulate(&g, &COST).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn every_task_appears_once() {
        let g = build_1f1b(4, 8);
        let tl = simulate(&g, &COST).unwrap();
        assert_eq!(tl.intervals().len(), g.tasks().len());
    }
}
