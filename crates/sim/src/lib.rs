//! Discrete-event cluster simulator and timeline profiler.
//!
//! This crate is the reproduction's stand-in for the paper's GPU cluster +
//! NVIDIA Nsight profiling: it plays a [`pipefisher_pipeline::TaskGraph`] on
//! virtual devices (each device executes its queue in order, starting a task
//! once its dependencies complete) and produces a [`Timeline`] — per-device
//! busy intervals tagged by work kind — from which we compute the paper's
//! headline metric, **GPU utilization** (the fraction of time some kernel is
//! executing, Appendix B.4), plus bubble intervals and per-kind breakdowns,
//! and render ASCII timelines analogous to Figures 1, 3, and 4.
//!
//! Durations come from a [`CostModel`]; the calibrated analytic models live
//! in `pipefisher-perfmodel`.
//!
//! # Example
//!
//! ```
//! use pipefisher_pipeline::build_gpipe;
//! use pipefisher_sim::{simulate, UniformCost};
//!
//! let graph = build_gpipe(4, 4);
//! let timeline = simulate(&graph, &UniformCost::new(1.0, 2.0)).unwrap();
//! // GPipe with D = N = 4 and T_b = 2·T_f: utilization = N/(N+D−1).
//! assert!((timeline.utilization() - 4.0 / 7.0).abs() < 1e-9);
//! ```

mod chrome;
mod collective;
mod cost;
mod engine;
mod timeline;

pub use chrome::SIM_PID;
pub use collective::ring_allreduce_time;
pub use cost::{CostModel, KindCost, UniformCost};
pub use engine::simulate;
pub use timeline::{Interval, Timeline};
