//! Execution timelines: the simulator's Nsight-profile equivalent.

use pipefisher_pipeline::WorkKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One busy interval on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Executing device.
    pub device: usize,
    /// Start time.
    pub start: f64,
    /// End time (`end >= start`).
    pub end: f64,
    /// Work kind executed.
    pub kind: WorkKind,
    /// Pipeline stage the work belongs to.
    pub stage: usize,
    /// Micro-batch, when per-micro-batch.
    pub micro_batch: Option<usize>,
}

impl Interval {
    /// Interval length.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// Whether the interval is zero-length.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A per-device execution profile over one or more pipeline steps.
///
/// The paper's "GPU utilization" (Appendix B.4: fraction of the window in
/// which some kernel executes) is [`Timeline::utilization`]; its bubbles
/// (idle gaps) drive PipeFisher's work assignment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    intervals: Vec<Interval>,
    n_devices: usize,
}

impl Timeline {
    /// Creates an empty timeline over `n_devices` devices.
    pub fn new(n_devices: usize) -> Self {
        Timeline {
            intervals: Vec::new(),
            n_devices,
        }
    }

    /// Adds an interval.
    ///
    /// # Panics
    ///
    /// Panics if the device is out of range or `end < start`.
    pub fn push(&mut self, interval: Interval) {
        assert!(
            interval.device < self.n_devices,
            "Timeline::push: device out of range"
        );
        assert!(
            interval.end >= interval.start - 1e-12,
            "Timeline::push: negative interval"
        );
        self.intervals.push(interval);
    }

    /// All intervals (unsorted).
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Latest interval end (0 for an empty timeline).
    pub fn makespan(&self) -> f64 {
        self.intervals.iter().map(|i| i.end).fold(0.0, f64::max)
    }

    /// Earliest interval start (0 for an empty timeline).
    pub fn first_start(&self) -> f64 {
        let earliest = self
            .intervals
            .iter()
            .map(|i| i.start)
            .fold(f64::INFINITY, f64::min);
        if earliest.is_finite() {
            earliest
        } else {
            0.0
        }
    }

    /// Total busy time of one device.
    pub fn device_busy(&self, device: usize) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.device == device)
            .map(Interval::len)
            .sum()
    }

    /// Busy fraction over the window `[0, makespan]` across all devices —
    /// the paper's "GPU utilization".
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 || self.n_devices == 0 {
            return 0.0;
        }
        let busy: f64 = self.intervals.iter().map(Interval::len).sum();
        busy / (span * self.n_devices as f64)
    }

    /// Utilization over an explicit window `[t0, t1]` (intervals clipped).
    pub fn utilization_in(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 > t0, "utilization_in: empty window");
        let mut busy = 0.0;
        for i in &self.intervals {
            let s = i.start.max(t0);
            let e = i.end.min(t1);
            if e > s {
                busy += e - s;
            }
        }
        busy / ((t1 - t0) * self.n_devices as f64)
    }

    /// Idle gaps ("bubbles") of one device within `[0, horizon]`, merged and
    /// sorted. Gaps shorter than `1e-9` are dropped.
    pub fn bubbles(&self, device: usize, horizon: f64) -> Vec<(f64, f64)> {
        let mut busy: Vec<(f64, f64)> = self
            .intervals
            .iter()
            .filter(|i| i.device == device && !i.is_empty())
            .map(|i| (i.start, i.end))
            .collect();
        busy.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut gaps = Vec::new();
        let mut cursor = 0.0;
        for (s, e) in busy {
            if s > cursor + 1e-9 {
                gaps.push((cursor, s.min(horizon)));
            }
            cursor = cursor.max(e);
            if cursor >= horizon {
                break;
            }
        }
        if cursor + 1e-9 < horizon {
            gaps.push((cursor, horizon));
        }
        gaps.retain(|(s, e)| e - s > 1e-9);
        gaps
    }

    /// Total bubble time across all devices within `[0, horizon]`.
    pub fn total_bubble(&self, horizon: f64) -> f64 {
        (0..self.n_devices)
            .map(|d| {
                self.bubbles(d, horizon)
                    .iter()
                    .map(|(s, e)| e - s)
                    .sum::<f64>()
            })
            .sum()
    }

    /// Busy time per work-kind label, summed over devices.
    pub fn kind_breakdown(&self) -> BTreeMap<&'static str, f64> {
        let mut map = BTreeMap::new();
        for i in &self.intervals {
            *map.entry(i.kind.label()).or_insert(0.0) += i.len();
        }
        map
    }

    /// Merges another timeline (same device count) into this one.
    ///
    /// # Panics
    ///
    /// Panics if device counts differ.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.n_devices, other.n_devices,
            "Timeline::merge: device counts"
        );
        self.intervals.extend(other.intervals.iter().cloned());
    }

    /// Verifies no two intervals on the same device overlap (within `tol`).
    pub fn is_overlap_free(&self, tol: f64) -> bool {
        for d in 0..self.n_devices {
            let mut ivs: Vec<(f64, f64)> = self
                .intervals
                .iter()
                .filter(|i| i.device == d && !i.is_empty())
                .map(|i| (i.start, i.end))
                .collect();
            ivs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in ivs.windows(2) {
                if w[0].1 > w[1].0 + tol {
                    return false;
                }
            }
        }
        true
    }

    /// Intervals in canonical rendering order — by `(device, start, end,
    /// kind label)` — the single sort all exporters ([`Timeline::to_csv`],
    /// [`Timeline::render_ascii`], [`Timeline::chrome_trace_events`]) share,
    /// so every view of a timeline lists the same intervals in the same
    /// order regardless of push order.
    pub fn sorted_intervals(&self) -> Vec<&Interval> {
        let mut sorted: Vec<&Interval> = self.intervals.iter().collect();
        sorted.sort_by(|a, b| {
            (a.device, a.start, a.end, a.kind.label())
                .partial_cmp(&(b.device, b.start, b.end, b.kind.label()))
                .expect("finite times")
        });
        sorted
    }

    /// Serializes the timeline as CSV
    /// (`device,start,end,kind,stage,micro_batch` with a header row), for
    /// external plotting of the profile figures.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("device,start,end,kind,stage,micro_batch\n");
        for i in self.sorted_intervals() {
            let mb = i.micro_batch.map_or(String::new(), |m| m.to_string());
            out.push_str(&format!(
                "{},{:.9},{:.9},{},{},{}\n",
                i.device,
                i.start,
                i.end,
                i.kind.label(),
                i.stage,
                mb
            ));
        }
        out
    }

    /// Renders the timeline as ASCII art, one row per device, `width`
    /// characters across the full makespan — the reproduction's version of
    /// the paper's Nsight timeline figures. Work kinds are drawn with the
    /// first character of their label (`F`, `B`, `C`, `I`, `P`, `S`, `R`);
    /// idle time is `·`.
    pub fn render_ascii(&self, width: usize) -> String {
        let span = self.makespan();
        if span <= 0.0 || width == 0 {
            return String::new();
        }
        let sorted = self.sorted_intervals();
        let mut out = String::new();
        for d in 0..self.n_devices {
            let mut row = vec!['·'; width];
            for i in sorted.iter().filter(|i| i.device == d) {
                let c = i.kind.label().chars().next().unwrap_or('?');
                let s = ((i.start / span) * width as f64).floor() as usize;
                let e = (((i.end / span) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(e).skip(s.min(width)) {
                    *cell = c;
                }
            }
            out.push_str(&format!("dev{d:>2} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(device: usize, start: f64, end: f64, kind: WorkKind) -> Interval {
        Interval {
            device,
            start,
            end,
            kind,
            stage: 0,
            micro_batch: None,
        }
    }

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.push(iv(0, 0.0, 1.0, WorkKind::Forward));
        t.push(iv(0, 2.0, 4.0, WorkKind::Backward));
        t.push(iv(1, 1.0, 2.0, WorkKind::Forward));
        t
    }

    #[test]
    fn utilization_and_makespan() {
        let t = sample();
        assert_eq!(t.makespan(), 4.0);
        // busy = 1 + 2 + 1 = 4 over 2 devices × 4 time = 8.
        assert!((t.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bubbles_cover_gaps_and_edges() {
        let t = sample();
        let b0 = t.bubbles(0, 4.0);
        assert_eq!(b0, vec![(1.0, 2.0)]);
        let b1 = t.bubbles(1, 4.0);
        assert_eq!(b1, vec![(0.0, 1.0), (2.0, 4.0)]);
        assert!((t.total_bubble(4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn busy_plus_bubble_equals_span() {
        let t = sample();
        let span = t.makespan();
        for d in 0..2 {
            let busy = t.device_busy(d);
            let bub: f64 = t.bubbles(d, span).iter().map(|(s, e)| e - s).sum();
            assert!((busy + bub - span).abs() < 1e-12, "device {d}");
        }
    }

    #[test]
    fn breakdown_sums_by_kind() {
        let t = sample();
        let b = t.kind_breakdown();
        assert_eq!(b["F"], 2.0);
        assert_eq!(b["B"], 2.0);
    }

    #[test]
    fn overlap_detection() {
        let mut t = sample();
        assert!(t.is_overlap_free(1e-9));
        t.push(iv(0, 0.5, 1.5, WorkKind::Forward));
        assert!(!t.is_overlap_free(1e-9));
    }

    #[test]
    fn windowed_utilization_clips() {
        let t = sample();
        // Window [0,2]: busy = dev0 1.0 + dev1 1.0 = 2 over 4 → 0.5.
        assert!((t.utilization_in(0.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_export_roundtrips_fields() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "device,start,end,kind,stage,micro_batch");
        assert_eq!(lines.len(), 4);
        // Sorted by (device, start).
        assert!(lines[1].starts_with("0,0.0"));
        assert!(lines[2].starts_with("0,2.0"));
        assert!(lines[3].starts_with("1,1.0"));
        assert!(lines[1].contains(",F,"));
        assert!(lines[2].contains(",B,"));
    }

    #[test]
    fn ascii_render_shape() {
        let t = sample();
        let art = t.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('F'));
        assert!(lines[0].contains('B'));
        assert!(lines[1].contains('·'));
    }

    #[test]
    fn sorted_intervals_canonical_order() {
        let mut t = Timeline::new(2);
        t.push(iv(1, 1.0, 2.0, WorkKind::Forward));
        t.push(iv(0, 2.0, 4.0, WorkKind::Backward));
        t.push(iv(0, 0.0, 1.0, WorkKind::Forward));
        // Equal (device, start): longer interval and later label sort last.
        t.push(iv(0, 0.0, 1.0, WorkKind::Recompute));
        let order: Vec<(usize, f64, &str)> = t
            .sorted_intervals()
            .iter()
            .map(|i| (i.device, i.start, i.kind.label()))
            .collect();
        assert_eq!(
            order,
            vec![(0, 0.0, "F"), (0, 0.0, "R"), (0, 2.0, "B"), (1, 1.0, "F"),]
        );
    }

    #[test]
    fn csv_and_ascii_are_push_order_independent() {
        // Both exporters run off the shared sorted path, so any push order
        // produces identical output.
        let forward = sample();
        let mut reversed = Timeline::new(2);
        for i in forward.intervals().iter().rev() {
            reversed.push(i.clone());
        }
        assert_eq!(forward.to_csv(), reversed.to_csv());
        assert_eq!(forward.render_ascii(64), reversed.render_ascii(64));
    }

    #[test]
    fn ascii_overlap_draws_later_sorted_interval_on_top() {
        // Two same-device intervals covering the same span: the canonical
        // order (not push order) decides which character wins the cells.
        let mut a = Timeline::new(1);
        a.push(iv(0, 0.0, 2.0, WorkKind::Forward));
        a.push(iv(0, 0.0, 2.0, WorkKind::Backward));
        let mut b = Timeline::new(1);
        b.push(iv(0, 0.0, 2.0, WorkKind::Backward));
        b.push(iv(0, 0.0, 2.0, WorkKind::Forward));
        let art = a.render_ascii(8);
        assert_eq!(art, b.render_ascii(8));
        // 'F' sorts after 'B' at equal (device, start, end), so F is drawn.
        assert!(art.contains('F') && !art.contains('B'));
    }
}
