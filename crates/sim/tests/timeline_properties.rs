//! Property tests for [`Timeline`] invariants.
//!
//! Timelines are built from *valid* pushes — per-device sequences of
//! `(gap, len)` pairs appended left to right, which is exactly the shape a
//! correct simulation produces (each device executes its queue in order) —
//! and the profile quantities the PipeFisher assignment relies on are
//! checked against each other.

use pipefisher_pipeline::{Factor, WorkKind};
use pipefisher_sim::{Interval, Timeline};
use proptest::prelude::*;

/// One device's schedule: a list of (leading idle gap, busy length) pairs.
type DeviceRuns = Vec<(f64, f64)>;

fn kind_for(slot: usize) -> WorkKind {
    match slot % 6 {
        0 => WorkKind::Forward,
        1 => WorkKind::Backward,
        2 => WorkKind::Recompute,
        3 => WorkKind::Curvature(Factor::A),
        4 => WorkKind::Inversion(Factor::B),
        _ => WorkKind::Precondition,
    }
}

/// Builds a timeline over `n_devices` from per-device run lists, appending
/// each run after the previous one — overlap-free by construction.
fn build(n_devices: usize, runs: &[DeviceRuns]) -> Timeline {
    let mut t = Timeline::new(n_devices);
    for (device, device_runs) in runs.iter().enumerate() {
        let mut cursor = 0.0;
        for (slot, (gap, len)) in device_runs.iter().enumerate() {
            let start = cursor + gap;
            let end = start + len;
            t.push(Interval {
                device,
                start,
                end,
                kind: kind_for(slot),
                stage: device,
                micro_batch: Some(slot),
            });
            cursor = end;
        }
    }
    t
}

fn runs_strategy(n_devices: usize) -> impl Strategy<Value = Vec<DeviceRuns>> {
    proptest::collection::vec(
        proptest::collection::vec((0.0f64..3.0, 0.01f64..2.0), 6),
        n_devices,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_pushes_stay_overlap_free(runs in runs_strategy(4)) {
        let t = build(4, &runs);
        prop_assert!(t.is_overlap_free(1e-9));
    }

    #[test]
    fn makespan_bounds_every_device_busy_time(runs in runs_strategy(4)) {
        let t = build(4, &runs);
        let span = t.makespan();
        for d in 0..t.n_devices() {
            prop_assert!(t.device_busy(d) <= span + 1e-9, "device {d}");
        }
        prop_assert!(span >= t.first_start());
    }

    #[test]
    fn bubble_plus_busy_fills_the_horizon(runs in runs_strategy(3)) {
        let t = build(3, &runs);
        let horizon = t.makespan();
        let busy: f64 = (0..t.n_devices()).map(|d| t.device_busy(d)).sum();
        let total = t.total_bubble(horizon) + busy;
        let expect = t.n_devices() as f64 * horizon;
        prop_assert!(
            (total - expect).abs() < 1e-6 * expect.max(1.0),
            "bubble+busy {total} vs {expect}"
        );
        // Cross-check against the utilization identity on the same window.
        if horizon > 0.0 {
            prop_assert!((busy / (horizon * t.n_devices() as f64) - t.utilization()).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_commutes_on_disjoint_device_sets(
        runs_low in runs_strategy(2),
        runs_high in runs_strategy(2),
    ) {
        // `a` occupies devices 0–1, `b` devices 2–3 of a 4-device timeline.
        let a = build(4, &runs_low);
        let mut high_padded: Vec<DeviceRuns> = vec![Vec::new(), Vec::new()];
        high_padded.extend(runs_high);
        let b = build(4, &high_padded);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        // Merge order must not matter for any exported view or metric.
        prop_assert_eq!(ab.to_csv(), ba.to_csv());
        prop_assert_eq!(ab.render_ascii(80), ba.render_ascii(80));
        prop_assert_eq!(ab.makespan(), ba.makespan());
        prop_assert_eq!(ab.total_bubble(ab.makespan()), ba.total_bubble(ba.makespan()));
        prop_assert!(ab.is_overlap_free(1e-9));
        for d in 0..4 {
            prop_assert_eq!(ab.device_busy(d), ba.device_busy(d));
        }
    }
}
