//! Cholesky factorization, solves, and SPD inversion.
//!
//! K-FAC's *inversion* work is exactly this module: each Kronecker factor
//! `A_l`, `B_l` is a symmetric positive semi-definite Gram matrix, damped to
//! positive definiteness, factored as `L·Lᵀ`, and inverted. The paper calls
//! `torch.linalg.cholesky` + `torch.linalg.cholesky_inverse` per factor; the
//! functions here are the Rust equivalents.
//!
//! # Blocked factorization engine
//!
//! [`cholesky_into`] is a left-looking *blocked* factorization: the matrix
//! is processed in [`NB`]-wide column panels, each panel's trailing update
//! (`P -= L₁₀·L₁₀ᵀ`) runs as one subtracting GEMM on the packed SIMD
//! micro-kernels ([`crate::kernel::gemm_chunk_sub`]), and only the thin
//! in-panel factorization stays scalar. [`solve_with_factor_in_place`]
//! replaces the scalar substitution with register-tiled multi-RHS sweeps
//! (8 right-hand-side columns per vector step kernel), parallelized over
//! aligned column stripes.
//!
//! Both keep the repo's determinism contract: every output element retains
//! one ascending-`k` accumulation chain with separately rounded multiply and
//! add/subtract, so results are **bitwise identical** to the naive loops
//! ([`cholesky_into_naive`], [`cholesky_inverse_naive_into`]), across kernel
//! kinds and thread counts, and `NotPositiveDefinite` pivot indices are
//! preserved across block boundaries. The equivalence is proptest-enforced
//! in `crates/tensor/tests/factor_equivalence.rs`.

use crate::kernel::{self, ASrc, BSrc};
use crate::{par, workspace, Matrix, TensorError};

/// Error alias for Cholesky routines (always a [`TensorError`]).
pub type CholeskyError = TensorError;

/// Panel width of the blocked factorization — a multiple of
/// [`kernel::ROW_ALIGN`] small enough that a panel column stays cache-warm
/// during the in-panel sweep, large enough that trailing updates dominate.
const NB: usize = 64;

/// Computes the lower-triangular Cholesky factor `L` with `L·Lᵀ = a`.
///
/// # Errors
///
/// Returns [`TensorError::NotPositiveDefinite`] with the failing pivot index
/// if `a` is not positive definite (callers typically add damping and retry),
/// and [`TensorError::NonFinite`] if a non-finite value appears.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use pipefisher_tensor::{cholesky, Matrix};
/// # fn main() -> Result<(), pipefisher_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a)?;
/// let rebuilt = l.matmul(&l.transpose());
/// assert!((&rebuilt - &a).max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let mut l = Matrix::zeros(a.rows(), a.rows());
    cholesky_into(a, &mut l)?;
    Ok(l)
}

/// Computes the lower-triangular Cholesky factor into `out`, which is
/// re-dimensioned to `a.rows() × a.rows()` and fully overwritten. Bitwise
/// identical to [`cholesky`] and to the naive reference
/// [`cholesky_into_naive`]. On error, `out`'s contents are unspecified.
///
/// Blocked left-looking scheme: for each [`NB`]-wide panel starting at
/// global column `jb`, the panel is seeded from `a`, the accumulated
/// trailing update `P -= L[jb.., ..jb] · L[jb..jb+bw, ..jb]ᵀ` runs on the
/// packed GEMM engine, and the panel is factored scalar. Per element this
/// is the naive chain `src - Σ_p l·l` split at `p = jb`: the GEMM covers
/// `p < jb` (ascending, separately rounded, partial sums round-tripped
/// through memory — exact for `f64`), the in-panel sweep continues
/// `jb ≤ p < j`. Identical operations in identical order ⇒ identical bits,
/// and the first failing pivot (checked in the same column order) is
/// identical too.
///
/// # Errors
///
/// Same contract as [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_into(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    assert!(a.is_square(), "cholesky: matrix must be square");
    let n = a.rows();
    let src = a.as_slice();
    out.reset_shape(n, n);
    let l = out.as_mut_slice();
    l.fill(0.0);
    for jb in (0..n).step_by(NB) {
        let bw = NB.min(n - jb);
        let prows = n - jb;
        // Row-major prows × bw panel scratch from the arena.
        let mut panel = workspace::take_raw(prows * bw);
        for r in 0..prows {
            panel[r * bw..(r + 1) * bw].copy_from_slice(&src[(jb + r) * n + jb..][..bw]);
        }
        if jb > 0 {
            // Trailing update on the packed engine: for panel element
            // (r, c), subtract Σ_{p<jb} l[jb+r][p] · l[jb+c][p].
            let lread: &[f64] = l;
            par::par_chunks_mut_aligned(
                &mut panel,
                prows,
                bw,
                kernel::ROW_ALIGN,
                prows * jb * bw,
                |start, chunk| {
                    let rows = chunk.len() / bw;
                    kernel::gemm_chunk_sub(
                        chunk,
                        rows,
                        bw,
                        jb,
                        ASrc::RowMajor {
                            data: lread,
                            stride: n,
                            base: jb + start,
                        },
                        // B(p, c) = l[(jb + c) * n + p]: the transposed view
                        // of the panel-row block of L, read in place.
                        BSrc::ColMajor {
                            data: &lread[jb * n..],
                            stride: n,
                        },
                    );
                },
            );
        }
        let res = factor_panel(&mut panel, prows, bw, jb);
        if res.is_ok() {
            // Copy back the lower-triangular part only (the upper stays 0).
            for r in 0..prows {
                let w = bw.min(r + 1);
                l[(jb + r) * n + jb..][..w].copy_from_slice(&panel[r * bw..r * bw + w]);
            }
        }
        workspace::put(panel);
        res?;
    }
    Ok(())
}

/// Factors a seeded-and-updated `prows × bw` panel in place: column `c`
/// finishes the naive chains for global column `jb + c` (the `p ≥ jb`
/// terms), exactly as the naive loop orders them.
fn factor_panel(
    panel: &mut [f64],
    prows: usize,
    bw: usize,
    jb: usize,
) -> Result<(), CholeskyError> {
    for c in 0..bw {
        let mut d = panel[c * bw + c];
        for q in 0..c {
            let v = panel[c * bw + q];
            d -= v * v;
        }
        if !d.is_finite() {
            return Err(TensorError::NonFinite("cholesky"));
        }
        if d <= 0.0 {
            return Err(TensorError::NotPositiveDefinite(jb + c));
        }
        let dj = d.sqrt();
        panel[c * bw + c] = dj;
        for r in (c + 1)..prows {
            let mut s = panel[r * bw + c];
            for q in 0..c {
                s -= panel[r * bw + q] * panel[c * bw + q];
            }
            panel[r * bw + c] = s / dj;
        }
    }
    Ok(())
}

/// The pre-blocking scalar reference implementation of [`cholesky_into`]:
/// one element-at-a-time triple loop. Kept as the bitwise oracle for the
/// factor-equivalence proptests and the `bench_factor` baseline column.
///
/// # Errors
///
/// Same contract as [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_into_naive(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    assert!(a.is_square(), "cholesky: matrix must be square");
    let n = a.rows();
    let src = a.as_slice();
    out.reset_shape(n, n);
    let l = out.as_mut_slice();
    l.fill(0.0);
    for j in 0..n {
        // Diagonal entry.
        let mut d = src[j * n + j];
        for p in 0..j {
            d -= l[j * n + p] * l[j * n + p];
        }
        if !d.is_finite() {
            return Err(TensorError::NonFinite("cholesky"));
        }
        if d <= 0.0 {
            return Err(TensorError::NotPositiveDefinite(j));
        }
        let dj = d.sqrt();
        l[j * n + j] = dj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = src[i * n + j];
            for p in 0..j {
                s -= l[i * n + p] * l[j * n + p];
            }
            l[i * n + j] = s / dj;
        }
    }
    Ok(())
}

/// Solves `a · x = b` for one or more right-hand sides given SPD `a`,
/// using an internal Cholesky factorization.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square or `b.rows() != a.rows()`.
pub fn cholesky_solve(a: &Matrix, b: &Matrix) -> Result<Matrix, CholeskyError> {
    let mut x = Matrix::zeros(b.rows(), b.cols());
    cholesky_solve_into(a, b, &mut x)?;
    Ok(x)
}

/// Computes [`cholesky_solve`] into `out`, which is re-dimensioned to
/// `b.rows() × b.cols()` and fully overwritten. The internal factor lives
/// in workspace-recycled scratch (like [`cholesky_inverse_into`]), so
/// repeated solves are steady-state alloc-free. Bitwise identical to
/// [`cholesky_solve`]. On error, `out`'s contents are unspecified.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square or `b.rows() != a.rows()`.
pub fn cholesky_solve_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    let mut l = Matrix::zeros(a.rows(), a.rows());
    cholesky_into(a, &mut l)?;
    out.clone_from(b);
    solve_with_factor_in_place(&l, out, false);
    Ok(())
}

/// Computes the inverse of an SPD matrix via Cholesky.
///
/// The result is explicitly symmetrized to remove round-off asymmetry, which
/// matters for the preconditioning products `B⁻¹ G A⁻¹` in K-FAC.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use pipefisher_tensor::{cholesky_inverse, Matrix};
/// # fn main() -> Result<(), pipefisher_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let inv = cholesky_inverse(&a)?;
/// assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
/// assert!((inv[(1, 1)] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky_inverse(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let mut inv = Matrix::zeros(a.rows(), a.rows());
    cholesky_inverse_into(a, &mut inv)?;
    Ok(inv)
}

/// Computes the inverse of an SPD matrix into `out`, which is
/// re-dimensioned to `a.rows() × a.rows()` and fully overwritten. Bitwise
/// identical to [`cholesky_inverse`] and to the naive reference
/// [`cholesky_inverse_naive_into`]; the Cholesky factor lives in a recycled
/// scratch matrix so steady-state refreshes allocate nothing. The solve
/// takes the identity-RHS fast path (structurally-zero leading columns of
/// the forward substitution are skipped — exact, because subtracting
/// `l · (+0.0)` with finite `l` is the identity), cutting the forward sweep
/// from `n³/2` to `n³/6` multiply–subtracts. On error, `out`'s contents are
/// unspecified.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_inverse_into(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    cholesky_into(a, &mut l)?;
    // Seed `out` with the identity in place, then solve L·Lᵀ·X = I.
    out.reset_shape(n, n);
    out.as_mut_slice().fill(0.0);
    for i in 0..n {
        out[(i, i)] = 1.0;
    }
    solve_with_factor_in_place(&l, out, true);
    out.symmetrize();
    Ok(())
}

/// The scalar reference implementation of [`cholesky_inverse_into`]:
/// [`cholesky_into_naive`] plus element-at-a-time substitution. Kept as
/// the bitwise oracle for the factor-equivalence proptests and the
/// `bench_factor` baseline column.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_inverse_naive_into(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    cholesky_into_naive(a, &mut l)?;
    out.reset_shape(n, n);
    out.as_mut_slice().fill(0.0);
    for i in 0..n {
        out[(i, i)] = 1.0;
    }
    solve_with_factor_in_place_naive(&l, out);
    out.symmetrize();
    Ok(())
}

/// Raw pointer to the shared RHS buffer; parallel lanes read and write only
/// their own disjoint column stripes, so sharing is race-free.
struct StripePtr(*mut f64);
// SAFETY: lanes touch disjoint columns; see the struct docs.
unsafe impl Send for StripePtr {}
// SAFETY: as above.
unsafe impl Sync for StripePtr {}

/// Solves `L·Lᵀ·x = b` in place: `x` holds `b` on entry and the solution on
/// exit. Blocked multi-RHS substitution: right-hand-side columns are split
/// into [`kernel::ROW_ALIGN`]-aligned stripes (one parallel lane each), and
/// within a stripe each 8-column tile runs full forward + backward sweeps
/// through the dispatched [`kernel::TrsmFn`] step kernel, which vectorizes
/// across RHS columns only. Every element keeps the naive per-column chain
/// (ascending `p`, separate multiply and subtract, one divide), so the
/// result is bitwise identical to [`solve_with_factor_in_place_naive`] at
/// any kernel kind or thread count.
///
/// The backward sweep reads `Lᵀ` from a pre-transposed scratch copy so its
/// inner loop is contiguous — a copy changes values not at all.
///
/// With `identity_rhs` set, `x` must be the seeded `n × n` identity; the
/// forward substitution then starts each tile's rows and terms at the
/// tile's first column, skipping work on the structurally-zero leading
/// block of `Y = L⁻¹`. Skipped rows would compute exactly `+0.0` (their
/// seed value) and skipped terms subtract exactly `l·(+0.0) = ±0.0`
/// (identity on any finite partial sum), so the shortcut is bitwise-exact —
/// *provided `L` is all-finite*, since `0·∞` would manufacture a NaN the
/// dense sweep would have produced too but in different elements. A
/// non-finite factor therefore falls back to the dense sweep.
fn solve_with_factor_in_place(l: &Matrix, x: &mut Matrix, identity_rhs: bool) {
    let n = l.rows();
    assert_eq!(x.rows(), n, "solve_with_factor: rhs rows");
    let m = x.cols();
    if n == 0 || m == 0 {
        return;
    }
    debug_assert!(!identity_rhs || m == n, "identity RHS must be square");
    let identity_rhs = identity_rhs && l.all_finite();
    let lf = l.as_slice();
    // Lᵀ in scratch: lt[i*n + p] = lf[p*n + i], so the backward sweep's
    // ascending-p reads are contiguous.
    let mut lt = workspace::take_raw(n * n);
    for p in 0..n {
        let row = &lf[p * n..(p + 1) * n];
        for (i, &v) in row.iter().enumerate() {
            lt[i * n + p] = v;
        }
    }
    let step = kernel::select_trsm();
    let xp = StripePtr(x.as_mut_slice().as_mut_ptr());
    // Per-column cost: forward (triangular from the column for identity,
    // full otherwise) + dense backward.
    let weight = |c: usize| {
        let fw = if identity_rhs {
            (n - c) * (n - c) / 2
        } else {
            n * n / 2
        };
        fw + n * n / 2
    };
    let work = if identity_rhs {
        n * n * n / 6 + n * n * n / 2
    } else {
        n * n * m
    };
    par::par_row_ranges_aligned(m, kernel::ROW_ALIGN, work, weight, |c0, c1| {
        // Capture the Send+Sync wrapper, not its raw-pointer field.
        let xp = &xp;
        // SAFETY: this lane owns columns [c0, c1) exclusively; solve_stripe
        // reads and writes only those columns of the shared buffer, and the
        // factor slices are read-only.
        unsafe { solve_stripe(lf, &lt, n, xp.0, m, c0, c1, identity_rhs, step) };
    });
    workspace::put(lt);
}

/// Forward + backward substitution over RHS columns `[c0, c1)` of the
/// shared `n × m` buffer `x`. See [`solve_with_factor_in_place`] for the
/// contract.
///
/// # Safety
///
/// The caller must guarantee exclusive access to columns `[c0, c1)` of `x`
/// (other lanes must not touch them), `x` valid for `n·m` elements, and
/// `lf`/`lt` of length `n·n`.
#[allow(clippy::too_many_arguments)]
unsafe fn solve_stripe(
    lf: &[f64],
    lt: &[f64],
    n: usize,
    x: *mut f64,
    m: usize,
    c0: usize,
    c1: usize,
    identity_rhs: bool,
    step: kernel::TrsmFn,
) {
    const W: usize = kernel::TRSM_NR;
    let mut c = c0;
    while c + W <= c1 {
        // Forward substitution: L·y = b for the 8 columns [c, c+W).
        let first = if identity_rhs { c } else { 0 };
        for i in first..n {
            let lii = *lf.get_unchecked(i * n + i);
            let acc = x.add(i * m + c);
            // Terms p in [first, i): rows above `first` hold exact zeros in
            // these columns on the identity path.
            step(
                i - first,
                lf.as_ptr().add(i * n + first),
                x.add(first * m + c),
                m,
                acc,
            );
            for j in 0..W {
                *acc.add(j) /= lii;
            }
        }
        // Backward substitution: Lᵀ·x = y (dense — the inverse is dense).
        for i in (0..n).rev() {
            let lii = *lf.get_unchecked(i * n + i);
            let acc = x.add(i * m + c);
            let k = n - i - 1;
            // Guarded: at i = n-1 the term pointer would sit past the end.
            if k > 0 {
                step(
                    k,
                    lt.as_ptr().add(i * n + i + 1),
                    x.add((i + 1) * m + c),
                    m,
                    acc,
                );
            }
            for j in 0..W {
                *acc.add(j) /= lii;
            }
        }
        c += W;
    }
    // Remainder columns (< 8): identical per-element chains, one at a time.
    for cc in c..c1 {
        let first = if identity_rhs { cc } else { 0 };
        for i in first..n {
            let lii = *lf.get_unchecked(i * n + i);
            let mut s = *x.add(i * m + cc);
            for p in first..i {
                s -= *lf.get_unchecked(i * n + p) * *x.add(p * m + cc);
            }
            *x.add(i * m + cc) = s / lii;
        }
        for i in (0..n).rev() {
            let lii = *lf.get_unchecked(i * n + i);
            let mut s = *x.add(i * m + cc);
            for p in (i + 1)..n {
                s -= *lt.get_unchecked(i * n + p) * *x.add(p * m + cc);
            }
            *x.add(i * m + cc) = s / lii;
        }
    }
}

/// The scalar reference substitution (the pre-blocking implementation):
/// solves `L·Lᵀ·x = b` in place, element at a time.
fn solve_with_factor_in_place_naive(l: &Matrix, x: &mut Matrix) {
    let n = l.rows();
    assert_eq!(x.rows(), n, "solve_with_factor: rhs rows");
    let m = x.cols();
    let lf = l.as_slice();
    let x = x.as_mut_slice();
    // Forward substitution: L·y = b.
    for i in 0..n {
        let lii = lf[i * n + i];
        for c in 0..m {
            let mut s = x[i * m + c];
            for p in 0..i {
                s -= lf[i * n + p] * x[p * m + c];
            }
            x[i * m + c] = s / lii;
        }
    }
    // Back substitution: Lᵀ·x = y.
    for i in (0..n).rev() {
        let lii = lf[i * n + i];
        for c in 0..m {
            let mut s = x[i * m + c];
            for p in (i + 1)..n {
                s -= lf[p * n + i] * x[p * m + c];
            }
            x[i * m + c] = s / lii;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a random SPD matrix `MᵀM + n·I`.
    fn rand_spd(n: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let m = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let mut spd = m.matmul_tn(&m);
        spd.add_diag(n as f64 * 0.1 + 0.5);
        spd
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 5, 16, 40, 100] {
            let a = rand_spd(n, n as u64);
            let l = cholesky(&a).unwrap();
            let rebuilt = l.matmul(&l.transpose());
            assert!((&rebuilt - &a).max_abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        // 100 crosses the NB=64 panel edge, so the copy-back's triangular
        // masking is exercised too.
        for n in [6, 100] {
            let a = rand_spd(n, 3);
            let l = cholesky(&a).unwrap();
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(l[(i, j)], 0.0, "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for n in [1, 3, 10, 24, 90] {
            let a = rand_spd(n, 7 + n as u64);
            let inv = cholesky_inverse(&a).unwrap();
            let prod = a.matmul(&inv);
            assert!((&prod - &Matrix::eye(n)).max_abs() < 1e-8, "n={n}");
            assert!(inv.is_symmetric(1e-10));
        }
    }

    #[test]
    fn solve_matches_inverse() {
        let a = rand_spd(8, 11);
        let b = rand_spd(8, 13);
        let x = cholesky_solve(&a, &b).unwrap();
        let x2 = cholesky_inverse(&a).unwrap().matmul(&b);
        assert!((&x - &x2).max_abs() < 1e-8);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = rand_spd(9, 17);
        let b = rand_spd(9, 19);
        let x = cholesky_solve(&a, &b).unwrap();
        let mut out = Matrix::full(2, 2, f64::NAN);
        cholesky_solve_into(&a, &b, &mut out).unwrap();
        assert_eq!(x.shape(), out.shape());
        for (w, g) in x.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn non_spd_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match cholesky(&a) {
            Err(TensorError::NotPositiveDefinite(_)) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn damping_rescues_singular_matrix() {
        // Rank-1 Gram matrix (singular) becomes SPD after damping — this is
        // precisely what K-FAC's damped inversion relies on.
        let u = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut g = u.gram();
        assert!(cholesky(&g).is_err());
        g.add_diag(1e-3);
        assert!(cholesky(&g).is_ok());
    }

    #[test]
    fn non_finite_factor_falls_back_to_dense_solve() {
        // A factor with an infinity must not take the identity fast path
        // (0·∞ would differ from the dense sweep); the fallback keeps the
        // two paths consistent. We only check it doesn't panic and returns
        // the dense sweep's bits.
        let mut l = Matrix::eye(4);
        l[(2, 0)] = f64::INFINITY;
        let mut fast = Matrix::eye(4);
        solve_with_factor_in_place(&l, &mut fast, true);
        let mut dense = Matrix::eye(4);
        solve_with_factor_in_place_naive(&l, &mut dense);
        for (w, g) in dense.as_slice().iter().zip(fast.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }
}
