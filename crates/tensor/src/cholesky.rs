//! Cholesky factorization, solves, and SPD inversion.
//!
//! K-FAC's *inversion* work is exactly this module: each Kronecker factor
//! `A_l`, `B_l` is a symmetric positive semi-definite Gram matrix, damped to
//! positive definiteness, factored as `L·Lᵀ`, and inverted. The paper calls
//! `torch.linalg.cholesky` + `torch.linalg.cholesky_inverse` per factor; the
//! functions here are the Rust equivalents.

use crate::{Matrix, TensorError};

/// Error alias for Cholesky routines (always a [`TensorError`]).
pub type CholeskyError = TensorError;

/// Computes the lower-triangular Cholesky factor `L` with `L·Lᵀ = a`.
///
/// # Errors
///
/// Returns [`TensorError::NotPositiveDefinite`] with the failing pivot index
/// if `a` is not positive definite (callers typically add damping and retry),
/// and [`TensorError::NonFinite`] if a non-finite value appears.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use pipefisher_tensor::{cholesky, Matrix};
/// # fn main() -> Result<(), pipefisher_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a)?;
/// let rebuilt = l.matmul(&l.transpose());
/// assert!((&rebuilt - &a).max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let mut l = Matrix::zeros(a.rows(), a.rows());
    cholesky_into(a, &mut l)?;
    Ok(l)
}

/// Computes the lower-triangular Cholesky factor into `out`, which is
/// re-dimensioned to `a.rows() × a.rows()` and fully overwritten. Bitwise
/// identical to [`cholesky`]. On error, `out`'s contents are unspecified.
///
/// # Errors
///
/// Same contract as [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_into(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    assert!(a.is_square(), "cholesky: matrix must be square");
    let n = a.rows();
    let src = a.as_slice();
    out.reset_shape(n, n);
    let l = out.as_mut_slice();
    l.fill(0.0);
    for j in 0..n {
        // Diagonal entry.
        let mut d = src[j * n + j];
        for p in 0..j {
            d -= l[j * n + p] * l[j * n + p];
        }
        if !d.is_finite() {
            return Err(TensorError::NonFinite("cholesky"));
        }
        if d <= 0.0 {
            return Err(TensorError::NotPositiveDefinite(j));
        }
        let dj = d.sqrt();
        l[j * n + j] = dj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = src[i * n + j];
            for p in 0..j {
                s -= l[i * n + p] * l[j * n + p];
            }
            l[i * n + j] = s / dj;
        }
    }
    Ok(())
}

/// Solves `a · x = b` for one or more right-hand sides given SPD `a`,
/// using an internal Cholesky factorization.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square or `b.rows() != a.rows()`.
pub fn cholesky_solve(a: &Matrix, b: &Matrix) -> Result<Matrix, CholeskyError> {
    let l = cholesky(a)?;
    Ok(solve_with_factor(&l, b))
}

/// Computes the inverse of an SPD matrix via Cholesky.
///
/// The result is explicitly symmetrized to remove round-off asymmetry, which
/// matters for the preconditioning products `B⁻¹ G A⁻¹` in K-FAC.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use pipefisher_tensor::{cholesky_inverse, Matrix};
/// # fn main() -> Result<(), pipefisher_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let inv = cholesky_inverse(&a)?;
/// assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
/// assert!((inv[(1, 1)] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky_inverse(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let mut inv = Matrix::zeros(a.rows(), a.rows());
    cholesky_inverse_into(a, &mut inv)?;
    Ok(inv)
}

/// Computes the inverse of an SPD matrix into `out`, which is
/// re-dimensioned to `a.rows() × a.rows()` and fully overwritten. Bitwise
/// identical to [`cholesky_inverse`]; the Cholesky factor lives in a
/// recycled scratch matrix so steady-state refreshes allocate nothing.
/// On error, `out`'s contents are unspecified.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_inverse_into(a: &Matrix, out: &mut Matrix) -> Result<(), CholeskyError> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    cholesky_into(a, &mut l)?;
    // Seed `out` with the identity in place, then solve L·Lᵀ·X = I.
    out.reset_shape(n, n);
    out.as_mut_slice().fill(0.0);
    for i in 0..n {
        out[(i, i)] = 1.0;
    }
    solve_with_factor_in_place(&l, out);
    out.symmetrize();
    Ok(())
}

/// Solves `L·Lᵀ·x = b` given the lower Cholesky factor `L`.
fn solve_with_factor(l: &Matrix, b: &Matrix) -> Matrix {
    let mut x = b.clone();
    solve_with_factor_in_place(l, &mut x);
    x
}

/// Solves `L·Lᵀ·x = b` in place: `x` holds `b` on entry and the solution
/// on exit. Loop order matches the original out-of-place solve exactly,
/// so results are bitwise identical.
fn solve_with_factor_in_place(l: &Matrix, x: &mut Matrix) {
    let n = l.rows();
    assert_eq!(x.rows(), n, "solve_with_factor: rhs rows");
    let m = x.cols();
    let lf = l.as_slice();
    let x = x.as_mut_slice();
    // Forward substitution: L·y = b.
    for i in 0..n {
        let lii = lf[i * n + i];
        for c in 0..m {
            let mut s = x[i * m + c];
            for p in 0..i {
                s -= lf[i * n + p] * x[p * m + c];
            }
            x[i * m + c] = s / lii;
        }
    }
    // Back substitution: Lᵀ·x = y.
    for i in (0..n).rev() {
        let lii = lf[i * n + i];
        for c in 0..m {
            let mut s = x[i * m + c];
            for p in (i + 1)..n {
                s -= lf[p * n + i] * x[p * m + c];
            }
            x[i * m + c] = s / lii;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a random SPD matrix `MᵀM + n·I`.
    fn rand_spd(n: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let m = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let mut spd = m.matmul_tn(&m);
        spd.add_diag(n as f64 * 0.1 + 0.5);
        spd
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 5, 16, 40] {
            let a = rand_spd(n, n as u64);
            let l = cholesky(&a).unwrap();
            let rebuilt = l.matmul(&l.transpose());
            assert!((&rebuilt - &a).max_abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = rand_spd(6, 3);
        let l = cholesky(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for n in [1, 3, 10, 24] {
            let a = rand_spd(n, 7 + n as u64);
            let inv = cholesky_inverse(&a).unwrap();
            let prod = a.matmul(&inv);
            assert!((&prod - &Matrix::eye(n)).max_abs() < 1e-8, "n={n}");
            assert!(inv.is_symmetric(1e-10));
        }
    }

    #[test]
    fn solve_matches_inverse() {
        let a = rand_spd(8, 11);
        let b = rand_spd(8, 13);
        let x = cholesky_solve(&a, &b).unwrap();
        let x2 = cholesky_inverse(&a).unwrap().matmul(&b);
        assert!((&x - &x2).max_abs() < 1e-8);
    }

    #[test]
    fn non_spd_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match cholesky(&a) {
            Err(TensorError::NotPositiveDefinite(_)) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn damping_rescues_singular_matrix() {
        // Rank-1 Gram matrix (singular) becomes SPD after damping — this is
        // precisely what K-FAC's damped inversion relies on.
        let u = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut g = u.gram();
        assert!(cholesky(&g).is_err());
        g.add_diag(1e-3);
        assert!(cholesky(&g).is_ok());
    }
}
